#!/usr/bin/env bash
# Scripted otrepaird session: boots the daemon on a loopback port, drives a
# full client lifecycle (ping / load / plans / repair / info / evict), and
# pins the serving determinism contract by comparing the served bytes against
# an offline `otrepair apply` run with the same plan and seed.
#
# Run from the repository root after `cargo build --release --bins`:
#
#     bash ci/serve_session.sh
#
# Override BIN / DAEMON to point at different builds (e.g. debug binaries).
# Exits non-zero on any protocol drift, lifecycle failure, or byte mismatch.
set -euo pipefail

BIN=${BIN:-target/release/otrepair}
DAEMON=${DAEMON:-target/release/otrepaird}
FIXTURES=${FIXTURES:-ci/fixtures}
SEED=13

WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== design a plan and produce the offline reference =="
"$BIN" design --research "$FIXTURES/research.csv" --out "$WORK/plan.json" --nq 24
"$BIN" apply --plan "$WORK/plan.json" --data "$FIXTURES/archive.csv" \
    --out "$WORK/offline.csv" --seed "$SEED"

echo "== boot otrepaird on an ephemeral loopback port =="
"$DAEMON" --bind 127.0.0.1:0 --shards 7 --port-file "$WORK/port" &
PID=$!
for _ in $(seq 100); do
    [ -s "$WORK/port" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "otrepaird exited before publishing its port" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "timed out waiting for port file" >&2; exit 1; }
ADDR=$(cat "$WORK/port")
echo "daemon is listening on $ADDR"

echo "== client session: ping / load / plans / repair / info / evict =="
"$BIN" client ping --addr "$ADDR" | grep -q pong
"$BIN" client load --addr "$ADDR" --plan "$WORK/plan.json" --name ci-plan --version 2
"$BIN" client plans --addr "$ADDR" | grep -q 'ci-plan@2'
"$BIN" client repair --addr "$ADDR" --name ci-plan \
    --data "$FIXTURES/archive.csv" --out "$WORK/served.csv" --seed "$SEED"
"$BIN" client info --addr "$ADDR" | grep -q '1 plans'
"$BIN" client evict --addr "$ADDR" --name ci-plan --version 2
"$BIN" client plans --addr "$ADDR" | grep -q 'no plans registered'

echo "== eviction must surface UnknownPlan to the client =="
if "$BIN" client repair --addr "$ADDR" --name ci-plan \
    --data "$FIXTURES/archive.csv" --out "$WORK/ghost.csv" --seed "$SEED" 2>"$WORK/err"; then
    echo "repair against an evicted plan unexpectedly succeeded" >&2
    exit 1
fi
grep -qi 'UnknownPlan' "$WORK/err"

echo "== serving determinism: served bytes == offline apply bytes =="
cmp "$WORK/offline.csv" "$WORK/served.csv"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "serve session OK: lifecycle clean, served output byte-identical to offline apply"
