#!/usr/bin/env bash
# Scripted otrepaird session: boots the daemon on a loopback port, drives a
# full client lifecycle (ping / load / plans / repair / info / evict), and
# pins the serving determinism contract by comparing the served bytes against
# an offline `otrepair apply` run with the same plan and seed.
#
# Run from the repository root after `cargo build --release --bins`:
#
#     bash ci/serve_session.sh
#
# Override BIN / DAEMON to point at different builds (e.g. debug binaries).
# Exits non-zero on any protocol drift, lifecycle failure, or byte mismatch.
set -euo pipefail

BIN=${BIN:-target/release/otrepair}
DAEMON=${DAEMON:-target/release/otrepaird}
FIXTURES=${FIXTURES:-ci/fixtures}
SEED=13

WORK=$(mktemp -d)
PID=""
PID2=""
PID3=""
cleanup() {
    for p in "$PID" "$PID2" "$PID3"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
        [ -n "$p" ] && wait "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== design a plan and produce the offline reference =="
"$BIN" design --research "$FIXTURES/research.csv" --out "$WORK/plan.json" --nq 24
"$BIN" apply --plan "$WORK/plan.json" --data "$FIXTURES/archive.csv" \
    --out "$WORK/offline.csv" --seed "$SEED"

echo "== boot otrepaird on an ephemeral loopback port =="
"$DAEMON" --bind 127.0.0.1:0 --shards 7 --port-file "$WORK/port" &
PID=$!
for _ in $(seq 100); do
    [ -s "$WORK/port" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "otrepaird exited before publishing its port" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$WORK/port" ] || { echo "timed out waiting for port file" >&2; exit 1; }
ADDR=$(cat "$WORK/port")
echo "daemon is listening on $ADDR"

echo "== client session: ping / load / plans / repair / info / evict =="
"$BIN" client ping --addr "$ADDR" | grep -q pong
"$BIN" client load --addr "$ADDR" --plan "$WORK/plan.json" --name ci-plan --version 2
"$BIN" client plans --addr "$ADDR" | grep -q 'ci-plan@2'
"$BIN" client repair --addr "$ADDR" --name ci-plan \
    --data "$FIXTURES/archive.csv" --out "$WORK/served.csv" --seed "$SEED"
"$BIN" client info --addr "$ADDR" | grep -q '1 plans'
"$BIN" client evict --addr "$ADDR" --name ci-plan --version 2
"$BIN" client plans --addr "$ADDR" | grep -q 'no plans registered'

echo "== eviction must surface UnknownPlan to the client =="
if "$BIN" client repair --addr "$ADDR" --name ci-plan \
    --data "$FIXTURES/archive.csv" --out "$WORK/ghost.csv" --seed "$SEED" 2>"$WORK/err"; then
    echo "repair against an evicted plan unexpectedly succeeded" >&2
    exit 1
fi
grep -qi 'UnknownPlan' "$WORK/err"

echo "== serving determinism: served bytes == offline apply bytes =="
cmp "$WORK/offline.csv" "$WORK/served.csv"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== overload probe: connections past --max-conns are rejected politely =="
"$DAEMON" --bind 127.0.0.1:0 --max-conns 2 --port-file "$WORK/port2" &
PID2=$!
for _ in $(seq 100); do
    [ -s "$WORK/port2" ] && break
    if ! kill -0 "$PID2" 2>/dev/null; then
        echo "overload-probe otrepaird exited before publishing its port" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$WORK/port2" ] || { echo "timed out waiting for port2 file" >&2; exit 1; }
ADDR2=$(cat "$WORK/port2")
HOST2=${ADDR2%:*}
PORT2=${ADDR2##*:}
echo "overload-probe daemon is listening on $ADDR2"

# Pin both governor slots with idle raw connections (max-conns + 1 total
# once the client connects), then assert the client's connection is
# rejected with the polite Overloaded error frame rather than hanging.
exec 3<>"/dev/tcp/$HOST2/$PORT2"
exec 4<>"/dev/tcp/$HOST2/$PORT2"
sleep 0.3 # let the daemon's accept loop account for both holds
if "$BIN" client ping --addr "$ADDR2" --retries 0 2>"$WORK/err2"; then
    echo "ping past --max-conns unexpectedly succeeded" >&2
    exit 1
fi
grep -qi 'Overloaded' "$WORK/err2"

# Release the holds; the retrying client must ride out the slot-release
# lag and the session must still complete end to end.
exec 3<&- 3>&-
exec 4<&- 4>&-
"$BIN" client ping --addr "$ADDR2" --retries 5 | grep -q pong
"$BIN" client load --addr "$ADDR2" --plan "$WORK/plan.json" --name ov-plan
"$BIN" client repair --addr "$ADDR2" --name ov-plan \
    --data "$FIXTURES/archive.csv" --out "$WORK/served-ov.csv" --seed "$SEED"
cmp "$WORK/offline.csv" "$WORK/served-ov.csv"
"$BIN" client info --addr "$ADDR2" | grep -q 'rejected overloaded'

kill "$PID2"
wait "$PID2" 2>/dev/null || true
PID2=""

echo "== drift lifecycle probe: watch / trip / hot-swap / audit =="
mkdir "$WORK/plans"
"$DAEMON" --bind 127.0.0.1:0 --plans "$WORK/plans" --port-file "$WORK/port3" &
PID3=$!
for _ in $(seq 100); do
    [ -s "$WORK/port3" ] && break
    if ! kill -0 "$PID3" 2>/dev/null; then
        echo "drift-probe otrepaird exited before publishing its port" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$WORK/port3" ] || { echo "timed out waiting for port3 file" >&2; exit 1; }
ADDR3=$(cat "$WORK/port3")
echo "drift-probe daemon is listening on $ADDR3"

"$BIN" client load --addr "$ADDR3" --plan "$WORK/plan.json" --name drift-plan --version 1
# A plan loaded over the wire must land in --plans too.
[ -f "$WORK/plans/drift-plan@1.json" ] || {
    echo "wire-loaded plan was not persisted to --plans" >&2
    exit 1
}
"$BIN" client watch --addr "$ADDR3" --name drift-plan \
    --threshold 0.2 --trips 2 --check-every 100 --min-rows 200 | grep -q 'watching drift-plan@1'

# Shift the archive fixture hard enough that the cumulative stratum
# histograms leave the plan's research marginals behind.
"$BIN" drift --data "$FIXTURES/archive.csv" --out "$WORK/drifted.csv" --mean-shift 3,3

# Stream the drifted archive through the watched plan until the monitor
# trips and the daemon hot-swaps (bounded rounds; each round feeds 600
# drifted rows past deterministic row-count checkpoints).
SWAPPED=""
for _ in $(seq 5); do
    "$BIN" client repair --addr "$ADDR3" --name drift-plan \
        --data "$WORK/drifted.csv" --out "$WORK/drift-served.csv" --seed "$SEED"
    if "$BIN" client drift --addr "$ADDR3" --name drift-plan | grep -q ', 1 swap(s)'; then
        SWAPPED=yes
        break
    fi
done
[ -n "$SWAPPED" ] || { echo "drifted stream never tripped the watch" >&2; exit 1; }

# The swap registered and persisted version 2, and the audit trail
# names the lineage.
"$BIN" client plans --addr "$ADDR3" | grep -q 'drift-plan@2'
"$BIN" client audit --addr "$ADDR3" --name drift-plan | grep -q 'drift-plan@2 <- drift-plan@1'
[ -f "$WORK/plans/drift-plan@2.json" ] || {
    echo "hot-swapped version was not persisted to --plans" >&2
    exit 1
}

echo "== swapped-in version serves bytes identical to offline apply of its artifact =="
"$BIN" apply --plan "$WORK/plans/drift-plan@2.json" --data "$FIXTURES/archive.csv" \
    --out "$WORK/offline-v2.csv" --seed "$SEED"
"$BIN" client repair --addr "$ADDR3" --name drift-plan --version 2 \
    --data "$FIXTURES/archive.csv" --out "$WORK/served-v2.csv" --seed "$SEED"
cmp "$WORK/offline-v2.csv" "$WORK/served-v2.csv"

kill "$PID3"
wait "$PID3" 2>/dev/null || true
PID3=""

echo "serve session OK: lifecycle clean, overload handled politely, drift trip hot-swapped and audited, served output byte-identical to offline apply"
