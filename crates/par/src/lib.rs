//! # otr-par — deterministic scoped parallelism for the repair pipeline
//!
//! Every hot loop in the workspace (archival repair, plan design,
//! Monte-Carlo replication) is an embarrassingly parallel map over an
//! index range whose output must be **bit-identical for any thread
//! count**: reproducibility of the paper's tables is non-negotiable, so
//! parallelism may change wall-clock time and nothing else.
//!
//! The executor is therefore deliberately *work-stealing-free*: an index
//! range `0..n` is split into at most `threads` contiguous chunks of
//! near-equal size, one scoped thread per chunk, and chunk results are
//! reassembled **in chunk order** on the calling thread. Determinism
//! falls out of the structure — no locks, no atomics, no arrival-order
//! merges — and the only building block is [`std::thread::scope`], so
//! the workspace's offline `vendor/` policy is untouched.
//!
//! Randomized maps get determinism from [`splitmix_seed`]: derive an
//! independent RNG stream per item from a base seed, so item `i` draws
//! the same randomness whether it runs on thread 0 of 1 or thread 6
//! of 7.
//!
//! Thread count resolution (everywhere in the workspace): an explicit
//! request wins; `0` means "auto" — the `OTR_THREADS` environment
//! variable if set and positive, else [`std::thread::available_parallelism`].
//!
//! In-kernel parallelism (the Sinkhorn scaling updates and the
//! barycentre matvecs in `otr-ot`) additionally respects a **size
//! threshold**: a kernel engages its chunked path only when it touches
//! at least [`kernel_cells`] matrix cells, so the many tiny solves of a
//! 1-D plan design stay free of spawn overhead while the `nQ⁴`-cell
//! joint kernels scale with cores.
//!
//! ```
//! // out[i] = 2 * i, computed on up to 3 scoped threads — the result is
//! // identical for every thread count because chunks are disjoint.
//! let mut out = vec![0usize; 10];
//! otr_par::par_chunks_mut(&mut out, 3, |start, chunk| {
//!     for (off, slot) in chunk.iter_mut().enumerate() {
//!         *slot = 2 * (start + off);
//!     }
//! });
//! assert_eq!(out, (0..10).map(|i| 2 * i).collect::<Vec<_>>());
//! ```

use std::ops::Range;

/// Environment variable overriding the auto thread count.
pub const THREADS_ENV: &str = "OTR_THREADS";

/// Environment variable overriding the in-kernel parallelism threshold
/// (minimum matrix cells before an OT kernel chunks its hot loops).
pub const KERNEL_CELLS_ENV: &str = "OTR_KERNEL_CELLS";

/// Default in-kernel parallelism threshold, in matrix cells. Sized so a
/// 1-D `nQ ≤ 180` solve (≤ 32 400 cells) stays sequential — its scaling
/// loops finish faster than threads spawn — while a joint `nQ ≥ 14`
/// product-support kernel (`nQ⁴ ≥ 38 416` cells) goes parallel.
pub const KERNEL_CELLS_DEFAULT: usize = 32_768;

/// Resolve a requested thread count: `requested > 0` is taken verbatim;
/// `0` means auto (`OTR_THREADS` env if set and positive, else
/// [`std::thread::available_parallelism`], else 4).
pub fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Resolve the in-kernel parallelism threshold: an explicit
/// `Some(cells)` wins (the per-solve config knob); `None` means auto —
/// the `OTR_KERNEL_CELLS` environment variable if set and positive,
/// else [`KERNEL_CELLS_DEFAULT`]. A kernel touching fewer cells than
/// the threshold runs sequentially regardless of the thread setting.
pub fn kernel_cells(requested: Option<usize>) -> usize {
    if let Some(cells) = requested {
        return cells.max(1);
    }
    if let Ok(v) = std::env::var(KERNEL_CELLS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    KERNEL_CELLS_DEFAULT
}

/// Environment variable overriding the columnar repair kernels' row
/// batch size (rows processed per per-batch scratch refill).
pub const BATCH_ROWS_ENV: &str = "OTR_BATCH_ROWS";

/// Default row batch of the columnar repair kernels. Sized so one
/// batch's working set — a handful of `f64` column slices, one 32-byte
/// RNG state per row, and the quantization lanes — stays around the
/// L2 cache (~0.5 MiB at `d = 2`) while the per-batch setup (group
/// partitioning, RNG seeding) amortizes over thousands of rows.
pub const BATCH_ROWS_DEFAULT: usize = 8_192;

/// Resolve the columnar row-batch size: an explicit `Some(rows)` wins
/// (the per-plan config knob, clamped to ≥ 1); `None` means auto — the
/// `OTR_BATCH_ROWS` environment variable if set and positive, else
/// [`BATCH_ROWS_DEFAULT`]. Batch size is pure blocking policy: it may
/// change wall-clock time and nothing else (see `docs/determinism.md`).
pub fn batch_rows(requested: Option<usize>) -> usize {
    if let Some(rows) = requested {
        return rows.max(1);
    }
    if let Ok(v) = std::env::var(BATCH_ROWS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    BATCH_ROWS_DEFAULT
}

/// The `stream`-th output of a SplitMix64 sequence seeded at `base` —
/// the canonical way to derive independent per-item RNG seeds from one
/// base seed. Adjacent streams are decorrelated by the full 64-bit
/// finalizer, unlike naive `base + i` seeding.
pub fn splitmix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Split `0..n` into at most `chunks` contiguous, near-equal, non-empty
/// ranges covering the whole index space in order.
fn chunk_bounds(n: usize, chunks: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(n);
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run `worker` over the chunked index range on scoped threads and
/// return the per-chunk results **in chunk order**. The single-chunk
/// case runs inline on the caller (no spawn overhead for tiny inputs or
/// `threads = 1`). Worker panics propagate to the caller.
fn run_chunked<R: Send>(
    n: usize,
    threads: usize,
    worker: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let bounds = chunk_bounds(n, thread_count(threads));
    if bounds.len() <= 1 {
        return bounds.into_iter().map(worker).collect();
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|range| scope.spawn(move || worker(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Parallel indexed map: `out[i] = f(i)` for `i in 0..n`, computed on up
/// to `threads` scoped threads (`0` = auto). Output order and content
/// are identical for every thread count.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut chunks = run_chunked(n, threads, |range| range.map(&f).collect::<Vec<T>>());
    if chunks.len() == 1 {
        return chunks.pop().unwrap(); // skip the reassembly copy
    }
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Fallible parallel indexed map. On success returns `out[i] = f(i)` in
/// index order; on failure returns the error of the **lowest failing
/// index** (each chunk stops at its first error, and chunks cover the
/// index space in order), matching what a sequential loop would report.
pub fn try_par_map_indexed<T, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut chunks = run_chunked(n, threads, |range| {
        let mut out = Vec::with_capacity(range.len());
        for i in range {
            match f(i) {
                Ok(v) => out.push(v),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    });
    if chunks.len() == 1 {
        return chunks.pop().unwrap(); // skip the reassembly copy
    }
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Parallel chunked fold: split `items` into at most `threads` contiguous
/// chunks and apply `f(chunk_start, chunk)` to each, returning the
/// per-chunk results in chunk order. This is the primitive for maps that
/// want thread-local accumulation (e.g. Monte-Carlo statistics merged
/// exactly once per chunk) rather than per-item output.
pub fn par_chunks<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &[I]) -> R + Sync,
{
    run_chunked(items.len(), threads, |range| f(range.start, &items[range]))
}

/// Parallel in-place map over disjoint contiguous chunks of `out`:
/// split `out` into at most `threads` near-equal chunks and apply
/// `f(chunk_start, chunk)` to each on its own scoped thread. This is
/// the primitive behind the in-kernel (Sinkhorn / barycentre-matvec)
/// parallelism: each output element is written by exactly one thread
/// and computed by a loop whose iteration order is independent of the
/// chunking, so the result is bit-identical for every thread count.
/// The single-chunk case runs inline on the caller.
pub fn par_chunks_mut<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let bounds = chunk_bounds(out.len(), thread_count(threads));
    if bounds.len() <= 1 {
        if let Some(range) = bounds.into_iter().next() {
            f(range.start, &mut out[range]);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut handles = Vec::with_capacity(bounds.len());
        for range in bounds {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            handles.push(scope.spawn(move || f(range.start, chunk)));
        }
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
}

/// Parallel in-place map over a **set of equal-length columns**, split
/// at the same row boundaries: each of the `cols` column vectors is cut
/// into at most `threads` near-equal contiguous row chunks, and
/// `f(row_start, column_chunks)` runs once per chunk on its own scoped
/// thread, receiving the aligned mutable chunk of *every* column.
/// Per-chunk results come back **in chunk order** (so fold-style
/// accumulators merge deterministically on the caller).
///
/// This is the row-chunk primitive of the columnar (SoA) repair path:
/// a worker owns a contiguous row range across all feature columns at
/// once, chunk borders never split a row, and each output element is
/// written by exactly one thread — bit-identical output for every
/// thread count, exactly as with [`par_rows_mut`] on a row-major
/// matrix. The single-chunk case runs inline on the caller.
///
/// # Panics
/// All columns must have the same length.
pub fn par_cols_mut<T, R, F>(cols: &mut [Vec<T>], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [&mut [T]]) -> R + Sync,
{
    let rows = cols.first().map_or(0, Vec::len);
    for (k, col) in cols.iter().enumerate() {
        assert_eq!(col.len(), rows, "par_cols_mut: column {k} length");
    }
    let bounds = chunk_bounds(rows, thread_count(threads));
    if bounds.len() <= 1 {
        return bounds
            .into_iter()
            .map(|range| {
                let mut chunks: Vec<&mut [T]> =
                    cols.iter_mut().map(|c| &mut c[range.clone()]).collect();
                f(range.start, &mut chunks)
            })
            .collect();
    }
    // Pre-split every column at the shared chunk boundaries, so each
    // scoped thread owns one disjoint row range across all columns.
    let mut rests: Vec<&mut [T]> = cols.iter_mut().map(Vec::as_mut_slice).collect();
    let mut jobs: Vec<(usize, Vec<&mut [T]>)> = Vec::with_capacity(bounds.len());
    for range in bounds {
        let mut chunk_cols = Vec::with_capacity(rests.len());
        let mut tails = Vec::with_capacity(rests.len());
        for rest in rests {
            let (head, tail) = rest.split_at_mut(range.len());
            chunk_cols.push(head);
            tails.push(tail);
        }
        rests = tails;
        jobs.push((range.start, chunk_cols));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(start, mut chunk_cols)| scope.spawn(move || f(start, &mut chunk_cols)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Tile edge of the blocked [`par_transpose`] loops: 64 × 64 `f64` tiles
/// keep one tile's worth of source cache lines (~4 KiB) resident in L1
/// while its destination rows stream out contiguously.
const TRANSPOSE_TILE: usize = 64;

/// Transpose a row-major `rows × cols` matrix `src` into the row-major
/// `cols × rows` buffer `dst`, chunking destination rows across at most
/// `threads` scoped threads (`0` = auto) with an L1-sized blocked inner
/// loop. Each destination element is written by exactly one thread and
/// the operation is a pure permutation, so `dst` is bit-identical for
/// every thread count.
///
/// This is the cache primitive behind the OT kernels' **column phase**:
/// a column update over a row-major kernel reads with stride `cols`,
/// thrashing cache once kernels reach ~1M cells; reading rows of the
/// transposed copy instead is contiguous, and the accumulation order
/// over the original rows is unchanged — so the transposed phase is
/// bitwise-equal to the strided one.
///
/// # Panics
/// `src.len()` and `dst.len()` must both equal `rows * cols`.
pub fn par_transpose<T>(src: &[T], rows: usize, cols: usize, dst: &mut [T], threads: usize)
where
    T: Copy + Send + Sync,
{
    assert_eq!(src.len(), rows * cols, "par_transpose: src shape");
    assert_eq!(dst.len(), rows * cols, "par_transpose: dst shape");
    if rows == 0 || cols == 0 {
        return;
    }
    // Chunk whole destination rows (length `rows` each) across threads;
    // inside a chunk, walk source rows in TILE-sized blocks so the
    // strided source reads of one tile stay cache-resident while the
    // destination writes stream contiguously.
    let bounds = chunk_bounds(cols, thread_count(threads));
    let transpose_chunk = |range: Range<usize>, chunk: &mut [T]| {
        let j0 = range.start;
        for i0 in (0..rows).step_by(TRANSPOSE_TILE) {
            let i1 = (i0 + TRANSPOSE_TILE).min(rows);
            for j in range.clone() {
                let out = &mut chunk[(j - j0) * rows..][i0..i1];
                for (off, slot) in out.iter_mut().enumerate() {
                    *slot = src[(i0 + off) * cols + j];
                }
            }
        }
    };
    if bounds.len() <= 1 {
        if let Some(range) = bounds.into_iter().next() {
            transpose_chunk(range, dst);
        }
        return;
    }
    let transpose_chunk = &transpose_chunk;
    std::thread::scope(|scope| {
        let mut rest = dst;
        let mut handles = Vec::with_capacity(bounds.len());
        for range in bounds {
            let (chunk, tail) = rest.split_at_mut(range.len() * rows);
            rest = tail;
            handles.push(scope.spawn(move || transpose_chunk(range, chunk)));
        }
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
}

/// Parallel in-place map over the **rows** of a row-major `rows × cols`
/// matrix stored flat in `matrix`: apply `f(row_index, row)` to every
/// row, chunking whole rows across at most `threads` scoped threads
/// (chunk borders never split a row). Rows are disjoint and each is
/// processed by exactly one thread in a fixed order, so the result is
/// bit-identical for every thread count.
///
/// # Panics
/// `matrix.len()` must be a multiple of `cols` (for `cols > 0`).
pub fn par_rows_mut<T, F>(matrix: &mut [T], cols: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if cols == 0 || matrix.is_empty() {
        return;
    }
    assert_eq!(matrix.len() % cols, 0, "flat matrix length vs cols");
    let rows = matrix.len() / cols;
    let bounds = chunk_bounds(rows, thread_count(threads));
    if bounds.len() <= 1 {
        for (i, row) in matrix.chunks_mut(cols).enumerate() {
            f(i, row);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = matrix;
        let mut handles = Vec::with_capacity(bounds.len());
        for range in bounds {
            let (chunk, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            handles.push(scope.spawn(move || {
                for (off, row) in chunk.chunks_mut(cols).enumerate() {
                    f(range.start + off, row);
                }
            }));
        }
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_range_in_order() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 7, 64] {
                let bounds = chunk_bounds(n, chunks);
                let mut expect = 0;
                for b in &bounds {
                    assert_eq!(b.start, expect);
                    assert!(!b.is_empty());
                    expect = b.end;
                }
                assert_eq!(expect, n);
                if n > 0 {
                    assert!(bounds.len() <= chunks);
                    let lens: Vec<usize> = bounds.iter().map(|b| b.len()).collect();
                    let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(mx - mn <= 1, "unbalanced chunks: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_identical_across_thread_counts() {
        let reference: Vec<u64> = (0..257).map(|i| splitmix_seed(42, i as u64)).collect();
        for threads in [1usize, 2, 3, 7, 16] {
            let got = par_map_indexed(257, threads, |i| splitmix_seed(42, i as u64));
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i * 10), vec![0]);
        assert_eq!(par_map_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_par_map_reports_lowest_failing_index() {
        for threads in [1usize, 2, 7] {
            let r: Result<Vec<usize>, usize> = try_par_map_indexed(100, threads, |i| {
                if i == 13 || i == 77 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r.unwrap_err(), 13, "threads = {threads}");
        }
        let ok: Result<Vec<usize>, ()> = try_par_map_indexed(10, 3, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_sees_every_item_once_in_order() {
        let items: Vec<usize> = (0..101).collect();
        for threads in [1usize, 2, 5, 13] {
            let chunks = par_chunks(&items, threads, |start, chunk| (start, chunk.to_vec()));
            let mut rebuilt = Vec::new();
            let mut expect_start = 0;
            for (start, chunk) in chunks {
                assert_eq!(start, expect_start);
                expect_start = start + chunk.len();
                rebuilt.extend(chunk);
            }
            assert_eq!(rebuilt, items, "threads = {threads}");
        }
    }

    #[test]
    fn splitmix_streams_differ_and_are_stable() {
        let a = splitmix_seed(7, 0);
        assert_eq!(a, splitmix_seed(7, 0));
        assert_ne!(a, splitmix_seed(7, 1));
        assert_ne!(a, splitmix_seed(8, 0));
        // Adjacent streams should differ in roughly half their bits.
        let diff = (splitmix_seed(7, 1) ^ splitmix_seed(7, 2)).count_ones();
        assert!((16..=48).contains(&diff), "weak mixing: {diff} bits");
    }

    #[test]
    fn par_chunks_mut_writes_every_slot_once() {
        for n in [0usize, 1, 5, 257] {
            for threads in [1usize, 2, 7, 64] {
                let mut out = vec![0usize; n];
                par_chunks_mut(&mut out, threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = 3 * (start + off) + 1;
                    }
                });
                let want: Vec<usize> = (0..n).map(|i| 3 * i + 1).collect();
                assert_eq!(out, want, "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn par_rows_mut_never_splits_a_row() {
        let (rows, cols) = (37usize, 5usize);
        for threads in [1usize, 2, 7, 64] {
            let mut m = vec![0usize; rows * cols];
            par_rows_mut(&mut m, cols, threads, |i, row| {
                assert_eq!(row.len(), cols);
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = i * cols + j;
                }
            });
            let want: Vec<usize> = (0..rows * cols).collect();
            assert_eq!(m, want, "threads = {threads}");
        }
        // Degenerate shapes are no-ops, not panics.
        par_rows_mut(&mut [] as &mut [usize], 4, 2, |_, _| unreachable!());
        par_rows_mut(&mut [1usize, 2], 0, 2, |_, _| unreachable!());
    }

    #[test]
    fn par_transpose_matches_naive_for_every_thread_count() {
        // Shapes straddling the tile edge, including degenerate ones.
        for (rows, cols) in [(1usize, 1usize), (3, 7), (64, 64), (65, 130), (200, 3)] {
            let src: Vec<u64> = (0..rows * cols)
                .map(|i| splitmix_seed(9, i as u64))
                .collect();
            let mut naive = vec![0u64; rows * cols];
            for i in 0..rows {
                for j in 0..cols {
                    naive[j * rows + i] = src[i * cols + j];
                }
            }
            for threads in [1usize, 2, 7, 64] {
                let mut dst = vec![0u64; rows * cols];
                par_transpose(&src, rows, cols, &mut dst, threads);
                assert_eq!(dst, naive, "rows={rows}, cols={cols}, threads={threads}");
            }
        }
        // Empty shapes are no-ops, not panics.
        par_transpose(&[] as &[u64], 0, 5, &mut [], 4);
    }

    #[test]
    fn par_transpose_round_trips() {
        let (rows, cols) = (37usize, 91usize);
        let src: Vec<u64> = (0..rows * cols)
            .map(|i| splitmix_seed(3, i as u64))
            .collect();
        let mut once = vec![0u64; rows * cols];
        par_transpose(&src, rows, cols, &mut once, 3);
        let mut twice = vec![0u64; rows * cols];
        par_transpose(&once, cols, rows, &mut twice, 5);
        assert_eq!(twice, src);
    }

    #[test]
    fn par_cols_mut_writes_every_cell_once_in_order() {
        for rows in [0usize, 1, 5, 257] {
            for threads in [1usize, 2, 7, 64] {
                let mut cols = vec![vec![0usize; rows]; 3];
                let starts = par_cols_mut(&mut cols, threads, |start, chunks| {
                    assert_eq!(chunks.len(), 3);
                    let len = chunks[0].len();
                    for (k, col) in chunks.iter_mut().enumerate() {
                        assert_eq!(col.len(), len, "misaligned chunk for column {k}");
                        for (off, slot) in col.iter_mut().enumerate() {
                            *slot = 10 * (start + off) + k;
                        }
                    }
                    start
                });
                // Chunk results come back in chunk order.
                let mut sorted = starts.clone();
                sorted.sort_unstable();
                assert_eq!(starts, sorted, "rows = {rows}, threads = {threads}");
                for (k, col) in cols.iter().enumerate() {
                    let want: Vec<usize> = (0..rows).map(|i| 10 * i + k).collect();
                    assert_eq!(col, &want, "rows = {rows}, threads = {threads}");
                }
            }
        }
        // No columns at all is a no-op, not a panic.
        assert!(par_cols_mut::<u8, (), _>(&mut [], 4, |_, _| ()).is_empty());
    }

    #[test]
    #[should_panic(expected = "column 1 length")]
    fn par_cols_mut_rejects_misaligned_columns() {
        let mut cols = vec![vec![0u8; 4], vec![0u8; 5]];
        par_cols_mut(&mut cols, 2, |_, _| ());
    }

    #[test]
    fn batch_rows_resolution() {
        assert_eq!(batch_rows(Some(7)), 7);
        assert_eq!(batch_rows(Some(0)), 1); // explicit 0 clamps, not auto
        assert!(batch_rows(None) >= 1);
    }

    #[test]
    fn kernel_cells_resolution() {
        assert_eq!(kernel_cells(Some(7)), 7);
        assert_eq!(kernel_cells(Some(0)), 1); // explicit 0 clamps, not auto
        assert!(kernel_cells(None) >= 1);
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(thread_count(3), 3);
        // Auto must be positive whatever the environment says.
        assert!(thread_count(0) >= 1);
    }

    #[test]
    fn env_var_overrides_auto() {
        // Serial within this one test; other tests only use explicit
        // thread counts, so no cross-test env races.
        std::env::set_var(THREADS_ENV, "5");
        assert_eq!(thread_count(0), 5);
        assert_eq!(thread_count(2), 2); // explicit still wins
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(thread_count(0) >= 1);
        std::env::remove_var(THREADS_ENV);
    }
}
