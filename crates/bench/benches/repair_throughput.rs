//! **Criterion bench A5** — archival repair throughput (Algorithm 2).
//!
//! The paper's requirement 3 (Section IV): "the method should be
//! computationally efficient, so that large data sets can be repaired".
//! After plan design, repairing one point is O(1) per feature (direct
//! grid indexing + one Bernoulli + one O(1) alias draw), independent of
//! `nR`, `nA`, and — thanks to the alias tables — of `nQ`; and the rows
//! are independent, so dataset repair parallelizes linearly while the
//! per-row SplitMix64 streams keep the output bit-identical to the
//! sequential path.
//!
//! Two modes:
//!
//! * default (`cargo bench --bench repair_throughput`) — criterion
//!   groups: throughput vs `nQ`, plan-design cost vs `nQ`, and
//!   sequential-vs-parallel dataset repair on a 100k-row archive;
//! * `--quick` — the CI perf-smoke gate, six legs written to JSON
//!   and (when `OTR_BENCH_BASELINE` names the committed baseline)
//!   gated at a 25% regression margin:
//!   1. **archival throughput** (`BENCH_throughput.json`): sequential
//!      vs parallel vs columnar repair of a ≥100k-row synthetic
//!      archive, bit-identity asserted between all three; the columnar
//!      sub-leg records `columnar_rows_per_sec` and `layout_speedup`
//!      (columnar vs the parallel row path at the same thread count,
//!      self-contained gate at ≥1.5x);
//!   2. **plan design** (`BENCH_plan_design.json`): Algorithm-1 design
//!      rate at `nQ = 50`;
//!   3. **joint repair** (`BENCH_joint.json`): `nQ = 24` joint
//!      design + repair (ε-scaling schedule on, the default; separable
//!      Kronecker kernels via `kernel = auto`) under `OTR_THREADS=1`
//!      vs `OTR_THREADS=4`, byte-identity asserted — the in-kernel
//!      (Sinkhorn/barycentre) parallelism leg. On a single-core runner
//!      the 1-vs-4 *timing* is skipped with an explanatory note
//!      (identity still asserted). A dense-kernel ablation run records
//!      `dense_t1_secs` / `kernel_speedup` (gated at ≥2x), and the
//!      report's `kernel` field names the representation the gated
//!      legs resolved to. Also writes the joint design report
//!      (`BENCH_joint_report.json`): barycentre convergence +
//!      per-stage ε-schedule stats per stratum;
//!   4. **served repair** (`BENCH_serve.json`): sustained rows/sec
//!      through a live `otrepaird` on loopback under concurrent
//!      clients (wire framing + sharded repair + index-ordered
//!      reassembly), with served-vs-offline byte-identity asserted
//!      before any timing;
//!   5. **`d = 3` joint repair** (`BENCH_joint3.json`): a 3-feature
//!      `nQ = 16`-per-axis joint design + repair (4096 product states)
//!      through the **forced** `SeparableNd` Kronecker kernel — the
//!      representation that keeps this workload tractable at all (the
//!      dense kernel would be 16.8M cells / 134 MB per solve) — with
//!      byte-identity asserted across `OTR_THREADS ∈ {1, 2, 7}`;
//!   6. **drift-lifecycle re-design** (`BENCH_redesign.json`): cold
//!      entropic design on drifted research data vs a warm re-design
//!      seeded from the stale plan's banked Sinkhorn duals (what
//!      `otrepaird` runs on a drift trip), warm determinism asserted,
//!      `warm_speedup` gated self-contained at ≥2x.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use otr_core::{
    JointRepairConfig, JointRepairPlan, KernelChoice, RepairConfig, RepairPlan, RepairPlanner,
};
use otr_data::{ColumnarDataset, Dataset, SimulationSpec};

fn bench_repair(c: &mut Criterion) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(5_000, &mut rng).unwrap();

    let mut group = c.benchmark_group("repair_throughput");
    group.throughput(Throughput::Elements(archive.len() as u64));
    for &n_q in &[25usize, 50, 100, 250] {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q))
            .design(&research)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("archive_5000pts", n_q), &n_q, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| plan.repair_dataset(&archive, &mut rng).unwrap())
        });
    }
    group.finish();

    let mut design_group = c.benchmark_group("plan_design");
    for &n_q in &[25usize, 50, 100, 250] {
        design_group.bench_with_input(BenchmarkId::new("design", n_q), &n_q, |b, _| {
            let planner = RepairPlanner::new(RepairConfig::with_n_q(n_q));
            b.iter(|| planner.design(&research).unwrap())
        });
    }
    design_group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(2);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(100_000, &mut rng).unwrap();
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&research)
        .unwrap();

    let mut group = c.benchmark_group("parallel_repair_100k");
    group.throughput(Throughput::Elements(archive.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| plan.repair_dataset_seeded(&archive, 7).unwrap())
    });
    let columnar_archive = ColumnarDataset::from_dataset(&archive);
    group.bench_function("columnar", |b| {
        b.iter(|| plan.repair_columnar_par(&columnar_archive, 7).unwrap())
    });
    let mut thread_counts = vec![2usize, 4, otr_par::thread_count(0)];
    thread_counts.sort_unstable();
    thread_counts.dedup(); // auto may equal 2 or 4 — don't bench twice
    for threads in thread_counts {
        let mut plan = plan.clone();
        plan.config.threads = threads;
        let archive = &archive;
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            move |b, _| b.iter(|| plan.repair_dataset_par(archive, 7).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair, bench_parallel
}

/// The archival-throughput leg of one `--quick` run.
#[derive(Debug, Serialize, Deserialize)]
struct ThroughputReport {
    rows: usize,
    dim: usize,
    threads: usize,
    seq_secs: f64,
    par_secs: f64,
    seq_rows_per_sec: f64,
    par_rows_per_sec: f64,
    speedup: f64,
    /// Columnar (struct-of-arrays) kernel wall time, same rows and
    /// auto threads as the parallel row leg (`serde(default)`s keep
    /// pre-columnar baselines readable; 0 disarms the columnar gates).
    #[serde(default)]
    columnar_secs: f64,
    #[serde(default)]
    columnar_rows_per_sec: f64,
    /// `par_secs / columnar_secs` — the layout's win over the row path
    /// at identical thread count, gated ≥ 1.5x.
    #[serde(default)]
    layout_speedup: f64,
}

/// The plan-design leg: Algorithm-1 strata design rate.
#[derive(Debug, Serialize, Deserialize)]
struct PlanDesignReport {
    n_q: usize,
    research_rows: usize,
    design_secs: f64,
    designs_per_sec: f64,
}

/// The joint-repair leg: `nQ⁴`-cell in-kernel parallelism,
/// design + repair under `OTR_THREADS=1` vs `OTR_THREADS=4`.
#[derive(Debug, Serialize, Deserialize)]
struct JointRepairReport {
    n_q: usize,
    research_rows: usize,
    archive_rows: usize,
    epsilon: f64,
    /// Whether the design ran the ε-scaling schedule (the default).
    #[serde(default)]
    eps_scaled: bool,
    /// The Gibbs-kernel representation the gated legs resolved to
    /// (`"separable"` on the joint product grid unless overridden).
    #[serde(default)]
    kernel: String,
    /// Worker threads the runner could actually use.
    threads_available: usize,
    t1_secs: f64,
    /// `OTR_THREADS=4` wall time — `None` on a single-core runner,
    /// where 4 threads is pure oversubscription and the timing would
    /// only record scheduler noise (the byte-identity check still
    /// runs).
    #[serde(default)]
    t4_secs: Option<f64>,
    /// `t1_secs / t4_secs` — > 1 once the in-kernel chunking wins;
    /// `None` whenever `t4_secs` is (see there).
    #[serde(default)]
    speedup: Option<f64>,
    /// Why the 1-vs-4 comparison was skipped, when it was.
    #[serde(default)]
    note: Option<String>,
    /// Dense-kernel ablation: the same design + repair with
    /// `kernel = dense` forced, under `OTR_THREADS=1` — what this leg
    /// cost before the separable (Kronecker) kernels landed.
    #[serde(default)]
    dense_t1_secs: Option<f64>,
    /// `dense_t1_secs / t1_secs` — the separable kernel's measured win
    /// (`None` when the gated legs already ran dense, e.g. under an
    /// `OTR_KERNEL=dense` override).
    #[serde(default)]
    kernel_speedup: Option<f64>,
}

/// The `d = 3` joint leg: `nQ` points per axis → `nQ³` product states,
/// designed through the `SeparableNd` (Kronecker) kernel — the only
/// representation that keeps this leg tractable (`nQ = 16` means a
/// 16.8M-cell / 134 MB dense kernel vs `3 · nQ³ · nQ` axis-pass work).
#[derive(Debug, Serialize, Deserialize)]
struct Joint3Report {
    /// Grid points **per axis** (`n_q³` product states).
    n_q: usize,
    /// Number of jointly repaired features (3 for this leg).
    dims: usize,
    research_rows: usize,
    archive_rows: usize,
    epsilon: f64,
    /// Whether the design ran the ε-scaling schedule (the default).
    #[serde(default)]
    eps_scaled: bool,
    /// The resolved Gibbs-kernel representation — asserted
    /// `"separable"`: this leg forces `kernel = separable`, so a dense
    /// fallback would mean the n-d factorization seam broke.
    #[serde(default)]
    kernel: String,
    /// Worker threads the runner could actually use.
    threads_available: usize,
    /// Design + repair wall time under `OTR_THREADS=1` (byte-identity
    /// across `OTR_THREADS ∈ {1, 2, 7}` is asserted before timing).
    t1_secs: f64,
    /// Why any sub-measurement was skipped, when one was (e.g. the
    /// dense ablation, pointless at 134 MB per stratum solve).
    #[serde(default)]
    note: Option<String>,
}

/// The drift-lifecycle re-design leg: cold entropic design on drifted
/// research data vs a warm re-design seeded from the previous plan's
/// banked Sinkhorn duals (what `otrepaird` runs on a drift trip).
#[derive(Debug, Serialize, Deserialize)]
struct RedesignReport {
    n_q: usize,
    research_rows: usize,
    /// The entropic backend both runs share (warm-start is a no-op
    /// under the exact monotone solver, so this leg forces Sinkhorn
    /// with the default ε-scaling schedule).
    solver: String,
    /// Cold design wall time on the drifted research set (full
    /// ε-schedule from scratch).
    cold_secs: f64,
    /// Warm re-design wall time on the same drifted set, seeded from
    /// the stale plan's duals (single solve at the final ε).
    warm_secs: f64,
    /// `cold_secs / warm_secs` — a within-run ratio, gated
    /// self-contained at ≥ 2x on any runner.
    warm_speedup: f64,
}

/// The serving leg: sustained rows/sec through a live `otrepaird` on
/// loopback under concurrent clients, wire encode/decode included.
#[derive(Debug, Serialize, Deserialize)]
struct ServeReport {
    /// Archive rows per repair request.
    rows: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Repair requests per client.
    rounds: usize,
    /// Server shard policy (contiguous row chunks per request).
    shards: usize,
    /// Server worker threads.
    threads: usize,
    /// Wall time for all clients to finish all rounds.
    secs: f64,
    /// `rows * clients * rounds / secs` — served repair throughput.
    rows_per_sec: f64,
}

/// The committed `ci/bench_baseline.json` schema: one (conservatively
/// scaled) entry per `--quick` leg.
#[derive(Debug, Serialize, Deserialize)]
struct BenchBaseline {
    throughput: ThroughputReport,
    plan_design: PlanDesignReport,
    joint_repair: JointRepairReport,
    /// `serde(default)` keeps pre-serving baselines readable; `None`
    /// disarms the serving gate.
    #[serde(default)]
    serve: Option<ServeReport>,
    /// `serde(default)` keeps pre-n-d baselines readable; `None`
    /// disarms the `d = 3` joint gate.
    #[serde(default)]
    joint3: Option<Joint3Report>,
    /// `serde(default)` keeps pre-lifecycle baselines readable; `None`
    /// disarms the cold-redesign rate floor (the warm-speedup floor is
    /// within-run and needs no baseline).
    #[serde(default)]
    redesign: Option<RedesignReport>,
}

/// The workspace root (cargo runs bench binaries with the *package*
/// directory as cwd; reports and baselines live at the repo root).
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Best-of-`reps` wall-clock time of `f`, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Exact byte image of a dataset's feature values (the determinism
/// contract is at the f64 bit level, stronger than `==`).
fn byte_image(data: &Dataset) -> Vec<u64> {
    data.points()
        .iter()
        .flat_map(|p| p.x.iter().map(|v| v.to_bits()))
        .collect()
}

/// Leg 1 — archival repair throughput (Algorithm 2 row-parallelism).
fn quick_throughput() -> ThroughputReport {
    // Default sized so one measurement takes ~0.1 s even sequentially:
    // long enough that the 25% gate margin dwarfs timer noise, short
    // enough for a smoke job.
    let rows: usize = std::env::var("OTR_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let threads = otr_par::thread_count(0);
    eprintln!("perf-smoke[throughput]: {rows} archive rows, {threads} worker threads");

    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(rows, &mut rng).unwrap();
    let plan: RepairPlan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&research)
        .unwrap();

    // The determinism contract is part of the gate: parallel output must
    // be bit-identical to the sequential per-row-stream reference, and
    // the columnar kernels bit-identical to both.
    let seq_out = plan.repair_dataset_seeded(&archive, 7).unwrap();
    let par_out = plan.repair_dataset_par(&archive, 7).unwrap();
    assert!(
        seq_out.points() == par_out.points(),
        "parallel repair diverged from the sequential reference"
    );
    let columnar_archive = ColumnarDataset::from_dataset(&archive);
    let col_out = plan.repair_columnar_par(&columnar_archive, 7).unwrap();
    assert!(
        byte_image(&col_out.to_dataset()) == byte_image(&par_out),
        "columnar repair diverged from the row path"
    );

    let seq_secs = best_of(5, || plan.repair_dataset_seeded(&archive, 7).unwrap());
    let par_secs = best_of(5, || plan.repair_dataset_par(&archive, 7).unwrap());
    let columnar_secs = best_of(5, || {
        plan.repair_columnar_par(&columnar_archive, 7).unwrap()
    });
    let report = ThroughputReport {
        rows,
        dim: archive.dim(),
        threads,
        seq_secs,
        par_secs,
        seq_rows_per_sec: rows as f64 / seq_secs,
        par_rows_per_sec: rows as f64 / par_secs,
        speedup: seq_secs / par_secs,
        columnar_secs,
        columnar_rows_per_sec: rows as f64 / columnar_secs,
        layout_speedup: par_secs / columnar_secs,
    };
    println!(
        "sequential: {:.3} s ({:.0} rows/s)\nparallel:   {:.3} s ({:.0} rows/s)\nspeedup:    {:.2}x at {} threads",
        report.seq_secs,
        report.seq_rows_per_sec,
        report.par_secs,
        report.par_rows_per_sec,
        report.speedup,
        report.threads
    );
    println!(
        "columnar:   {:.3} s ({:.0} rows/s) — {:.2}x over the row path (byte-identical)",
        report.columnar_secs, report.columnar_rows_per_sec, report.layout_speedup
    );
    report
}

/// Leg 2 — plan-design rate (Algorithm 1: KDE + barycentre + 4 OT
/// solves per design).
fn quick_plan_design() -> PlanDesignReport {
    let n_q = 50;
    let research_rows = 500;
    eprintln!("perf-smoke[plan-design]: nQ = {n_q}, {research_rows} research rows");
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(2);
    let research = spec.sample_dataset(research_rows, &mut rng).unwrap();
    let planner = RepairPlanner::new(RepairConfig::with_n_q(n_q));
    let design_secs = best_of(5, || planner.design(&research).unwrap());
    let report = PlanDesignReport {
        n_q,
        research_rows,
        design_secs,
        designs_per_sec: 1.0 / design_secs,
    };
    println!(
        "plan design: {:.4} s ({:.1} designs/s)",
        report.design_secs, report.designs_per_sec
    );
    report
}

/// Leg 3 — joint design + repair at `nQ = 24` (the `nQ⁴`-cell
/// Sinkhorn/barycentre kernels, ε-scaled by default) under
/// `OTR_THREADS=1` vs `OTR_THREADS=4`, with byte-identity asserted
/// between the two. On a single-core runner the 4-thread run still
/// proves byte-identity, but its *timing* is not reported — 4 threads
/// on 1 core is pure oversubscription, and recording that ratio as a
/// "speedup" is how the baseline once grew a bogus 0.91 entry.
/// Also writes the joint design report (`BENCH_joint_report.json`):
/// barycentre convergence per stratum plus per-stage ε-schedule stats.
fn quick_joint() -> JointRepairReport {
    let n_q: usize = std::env::var("OTR_BENCH_JOINT_NQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let research_rows = 300;
    let archive_rows = 2_000;
    let cfg = JointRepairConfig {
        n_q,
        threads: 0, // auto: driven through OTR_THREADS below
        ..JointRepairConfig::default()
    };
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perf-smoke[joint]: nQ = {n_q} ({} kernel cells), eps = {}, eps-scaled = {}, {threads_available} cores",
        n_q.pow(4),
        cfg.epsilon,
        cfg.eps_scaling.is_some(),
    );

    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(3);
    let split = spec
        .generate(research_rows, archive_rows, &mut rng)
        .unwrap();

    let saved = std::env::var(otr_par::THREADS_ENV).ok();
    let run = |threads: &str, cfg: JointRepairConfig| {
        std::env::set_var(otr_par::THREADS_ENV, threads);
        let start = Instant::now();
        let (plan, report) = JointRepairPlan::design_with_report(&split.research, cfg).unwrap();
        let out = plan.repair_dataset_par(&split.archive, 7).unwrap();
        (start.elapsed().as_secs_f64(), byte_image(&out), report)
    };
    let (t1_secs, bytes1, design_report) = run("1", cfg);
    let (t4_raw, bytes4, _) = run("4", cfg);
    // Kernel-representation ablation: the same leg with the dense
    // kernel forced (what this design cost before the separable
    // Kronecker path), single-threaded for a like-for-like ratio.
    // Skipped when the gated legs already ran dense (OTR_KERNEL=dense).
    let dense_t1_secs = (design_report.kernel == "separable").then(|| {
        let mut dense_cfg = cfg;
        dense_cfg.kernel = KernelChoice::Dense;
        run("1", dense_cfg).0
    });
    match saved {
        Some(v) => std::env::set_var(otr_par::THREADS_ENV, v),
        None => std::env::remove_var(otr_par::THREADS_ENV),
    }
    assert!(
        bytes1 == bytes4,
        "joint repair output depends on OTR_THREADS — determinism contract broken"
    );

    // Archive the design diagnostics next to the timing legs (uploaded
    // as a workflow artifact): operators read convergence headroom from
    // here instead of guessing max_iters.
    let report_json = serde_json::to_string_pretty(&design_report).unwrap();
    let report_path = workspace_root().join("BENCH_joint_report.json");
    std::fs::write(&report_path, report_json)
        .unwrap_or_else(|e| panic!("cannot write BENCH_joint_report.json: {e}"));
    eprintln!("wrote {}", report_path.display());

    let multicore = threads_available > 1;
    let report = JointRepairReport {
        n_q,
        research_rows,
        archive_rows,
        epsilon: cfg.epsilon,
        eps_scaled: cfg.eps_scaling.is_some(),
        kernel: design_report.kernel.clone(),
        threads_available,
        t1_secs,
        t4_secs: multicore.then_some(t4_raw),
        speedup: multicore.then(|| t1_secs / t4_raw),
        note: (!multicore).then(|| {
            format!(
                "single-core runner ({threads_available} thread available): the 1-vs-4 \
                 timing comparison is skipped (4 threads on 1 core is pure \
                 oversubscription); byte-identity across OTR_THREADS was still asserted"
            )
        }),
        dense_t1_secs,
        kernel_speedup: dense_t1_secs.map(|d| d / t1_secs),
    };
    match (report.t4_secs, report.speedup) {
        (Some(t4), Some(speedup)) => println!(
            "joint OTR_THREADS=1: {:.3} s ({} kernel)\njoint OTR_THREADS=4: {t4:.3} s\njoint speedup:       {speedup:.2}x (byte-identical output)",
            report.t1_secs, report.kernel,
        ),
        _ => println!(
            "joint OTR_THREADS=1: {:.3} s ({} kernel)\njoint OTR_THREADS=4: skipped timing — {}",
            report.t1_secs,
            report.kernel,
            report.note.as_deref().unwrap_or("single-core runner"),
        ),
    }
    if let (Some(dense), Some(ratio)) = (report.dense_t1_secs, report.kernel_speedup) {
        println!("joint dense kernel:  {dense:.3} s — separable kernel is {ratio:.2}x faster");
    }
    report
}

/// Leg 5 — the `d = 3` joint workload: `nQ = 16` per axis (4096
/// product states) over a 3-feature synthetic split, designed through
/// the **forced** `SeparableNd` kernel — at this size the dense
/// representation is a 16.8M-cell / 134 MB Gibbs matrix per entropic
/// solve, which is exactly what the Kronecker factorization exists to
/// avoid, so no dense ablation runs here (the `quick_joint` leg
/// already measures the dense-vs-separable ratio at `d = 2`, and the
/// tiny-grid conformance tests pin n-d agreement). Byte-identity of
/// design + repair across `OTR_THREADS ∈ {1, 2, 7}` is asserted before
/// any timing is recorded.
fn quick_joint3() -> Joint3Report {
    let n_q: usize = std::env::var("OTR_BENCH_JOINT3_NQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    // 400 rather than the other joint leg's 300: `pr_s0_given_u[1] = 0.1`
    // leaves the (u = 1, s = 0) group hovering right at `min_group_size`
    // at 300 rows with this seed.
    let research_rows = 400;
    let archive_rows = 2_000;
    let cfg = JointRepairConfig {
        n_q,
        // Forced (not auto): a silent dense fallback would make this
        // leg measure the wrong thing — and at nQ = 16 likely OOM the
        // smoke runner's time budget.
        kernel: KernelChoice::Separable,
        threads: 0, // auto: driven through OTR_THREADS below
        ..JointRepairConfig::default()
    };
    let states = n_q.pow(3);
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perf-smoke[joint3]: d = 3, nQ = {n_q}/axis → {states} product states \
         ({} dense kernel cells factorized to 3 x {} axis-pass cells), eps = {}, \
         eps-scaled = {}, {threads_available} cores",
        states * states,
        states * n_q,
        cfg.epsilon,
        cfg.eps_scaling.is_some(),
    );

    let spec = SimulationSpec {
        means: [
            [vec![-1.0, -1.0, -0.5], vec![0.0, 0.0, 0.0]],
            [vec![1.0, 1.0, 0.5], vec![0.0, 0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: None,
        pr_u0: 0.5,
        pr_s0_given_u: [0.3, 0.1],
    };
    let mut rng = StdRng::seed_from_u64(5);
    let split = spec
        .generate(research_rows, archive_rows, &mut rng)
        .unwrap();

    let saved = std::env::var(otr_par::THREADS_ENV).ok();
    let run = |threads: &str| {
        std::env::set_var(otr_par::THREADS_ENV, threads);
        let start = Instant::now();
        let (plan, report) = JointRepairPlan::design_with_report(&split.research, cfg).unwrap();
        let out = plan.repair_dataset_par(&split.archive, 7).unwrap();
        (start.elapsed().as_secs_f64(), byte_image(&out), report)
    };
    let (t1_secs, bytes1, design_report) = run("1");
    for threads in ["2", "7"] {
        let (_, bytes, _) = run(threads);
        assert!(
            bytes1 == bytes,
            "d = 3 joint repair output depends on OTR_THREADS={threads} — \
             determinism contract broken"
        );
    }
    match saved {
        Some(v) => std::env::set_var(otr_par::THREADS_ENV, v),
        None => std::env::remove_var(otr_par::THREADS_ENV),
    }
    assert_eq!(
        design_report.kernel, "separable",
        "forced SeparableNd resolved to {:?} — the n-d factorization seam broke",
        design_report.kernel
    );
    assert_eq!(design_report.dims, 3);

    let report = Joint3Report {
        n_q,
        dims: 3,
        research_rows,
        archive_rows,
        epsilon: cfg.epsilon,
        eps_scaled: cfg.eps_scaling.is_some(),
        kernel: design_report.kernel,
        threads_available,
        t1_secs,
        note: Some(format!(
            "dense ablation skipped by design: a dense kernel at nQ = {n_q}, d = 3 is \
             {} cells (~{} MB) per entropic solve; the d = 2 quick_joint leg carries \
             the dense-vs-separable ratio and the conformance tests pin n-d agreement",
            states * states,
            states * states * 8 / (1024 * 1024),
        )),
    };
    println!(
        "joint d=3 OTR_THREADS=1: {:.3} s ({} states, {} kernel; byte-identical across \
         OTR_THREADS {{1, 2, 7}})",
        report.t1_secs, states, report.kernel
    );
    report
}

/// Leg 6 — drift-lifecycle re-design: the work `otrepaird` performs on
/// a drift trip, measured warm vs cold. A previous plan is designed
/// under the Sinkhorn backend with the default ε-scaling schedule
/// (banking converged duals per stratum), the research distribution is
/// drifted, and the same planner then re-solves the drifted problem
/// both ways: a cold `design` (full ε-schedule from scratch) and a
/// warm `redesign` seeded from the stale plan's duals (one solve at
/// the final ε). Warm determinism — two warm re-designs must agree
/// byte-for-byte — is asserted before any timing; the warm-vs-cold
/// speedup is a within-run ratio gated self-contained at ≥ 2x.
fn quick_redesign() -> RedesignReport {
    use otr_core::SolverBackend;
    use otr_data::Drift;
    use otr_ot::EpsSchedule;

    let n_q: usize = std::env::var("OTR_BENCH_REDESIGN_NQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let research_rows = 500;
    let mut cfg = RepairConfig::with_n_q(n_q);
    cfg.solver = SolverBackend::sinkhorn_scaled(0.05, EpsSchedule::geometric(1.0, 0.25));
    eprintln!(
        "perf-smoke[redesign]: nQ = {n_q}, {research_rows} research rows, solver = {}",
        cfg.solver,
    );

    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(6);
    let research = spec.sample_dataset(research_rows, &mut rng).unwrap();
    let planner = RepairPlanner::new(cfg);
    let previous = planner.design(&research).unwrap();
    let drifted = Drift::MeanShift(vec![0.8, -0.5]).apply(&research).unwrap();

    // Warm re-design is a deterministic function of (config, research,
    // previous duals): two runs must produce the identical artifact.
    let warm_a = planner.redesign(&drifted, &previous).unwrap();
    let warm_b = planner.redesign(&drifted, &previous).unwrap();
    assert!(
        warm_a.to_json().unwrap() == warm_b.to_json().unwrap(),
        "warm re-design is not deterministic"
    );

    let cold_secs = best_of(3, || planner.design(&drifted).unwrap());
    let warm_secs = best_of(3, || planner.redesign(&drifted, &previous).unwrap());
    let report = RedesignReport {
        n_q,
        research_rows,
        solver: planner.config().solver.to_string(),
        cold_secs,
        warm_secs,
        warm_speedup: cold_secs / warm_secs,
    };
    println!(
        "redesign cold: {:.4} s\nredesign warm: {:.4} s — {:.2}x faster seeded from banked duals",
        report.cold_secs, report.warm_secs, report.warm_speedup
    );
    report
}

/// Leg 4 — repair-as-a-service throughput: a live `otrepaird` on a
/// loopback socket, a registered plan, and concurrent clients repairing
/// the same archive, wall-clocked end to end (framing, socket copies,
/// sharded repair, index-ordered reassembly). One served response is
/// asserted byte-identical to the offline columnar path first — the
/// serving determinism contract is part of the gate, not just the docs.
fn quick_serve() -> ServeReport {
    use otr_serve::{Client, PlanKind, ServeConfig, Server};

    let rows: usize = std::env::var("OTR_BENCH_SERVE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let clients = 4usize;
    let rounds = 3usize;
    let threads = otr_par::thread_count(0);
    eprintln!(
        "perf-smoke[serve]: {rows} rows/request, {clients} clients x {rounds} rounds, \
         {threads} worker threads"
    );

    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(4);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = ColumnarDataset::from_dataset(&spec.sample_dataset(rows, &mut rng).unwrap());
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&research)
        .unwrap();

    let server = Server::bind(&ServeConfig {
        bind: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let shards = threads; // ServeConfig default: shards = resolved threads
    let handle = server.handle().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut loader = Client::connect(&addr).unwrap();
    loader
        .load_plan(PlanKind::Scalar, "bench", 1, &plan.to_json().unwrap())
        .unwrap();
    // Byte-identity of served vs offline output before any timing.
    let served = loader.repair("bench", 1, 7, &archive).unwrap();
    let offline = plan.repair_columnar_par(&archive, 7).unwrap();
    let same = served
        .columns
        .iter()
        .zip(offline.feature_columns())
        .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert!(
        same,
        "served repair diverged from the offline columnar path"
    );

    let secs = best_of(3, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    let archive = &archive;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        for round in 0..rounds {
                            client
                                .repair("bench", 1, (c * rounds + round) as u64, archive)
                                .unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    handle.shutdown();
    server_thread.join().unwrap();

    let total_rows = (rows * clients * rounds) as f64;
    let report = ServeReport {
        rows,
        clients,
        rounds,
        shards,
        threads,
        secs,
        rows_per_sec: total_rows / secs,
    };
    println!(
        "serve:      {:.3} s for {} requests ({:.0} rows/s served, {} shards x {} threads)",
        report.secs,
        clients * rounds,
        report.rows_per_sec,
        report.shards,
        report.threads
    );
    report
}

/// CI perf-smoke mode: measure the five legs, record them, and
/// (optionally) gate against the committed baseline.
fn quick_gate() {
    let throughput = quick_throughput();
    let plan_design = quick_plan_design();
    let joint_repair = quick_joint();
    let serve = quick_serve();
    let joint3 = quick_joint3();
    let redesign = quick_redesign();

    for (name, json) in [
        (
            "BENCH_throughput.json",
            serde_json::to_string_pretty(&throughput).unwrap(),
        ),
        (
            "BENCH_plan_design.json",
            serde_json::to_string_pretty(&plan_design).unwrap(),
        ),
        (
            "BENCH_joint.json",
            serde_json::to_string_pretty(&joint_repair).unwrap(),
        ),
        (
            "BENCH_serve.json",
            serde_json::to_string_pretty(&serve).unwrap(),
        ),
        (
            "BENCH_joint3.json",
            serde_json::to_string_pretty(&joint3).unwrap(),
        ),
        (
            "BENCH_redesign.json",
            serde_json::to_string_pretty(&redesign).unwrap(),
        ),
    ] {
        let out_path = workspace_root().join(name);
        std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        eprintln!("wrote {}", out_path.display());
    }

    let Ok(path) = std::env::var("OTR_BENCH_BASELINE") else {
        return;
    };
    // Relative baseline paths are repo-root-relative, so the CI
    // workflow and a manual run from anywhere agree.
    let mut full = std::path::PathBuf::from(&path);
    if full.is_relative() {
        full = workspace_root().join(full);
    }
    let blob = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline: BenchBaseline =
        serde_json::from_str(&blob).unwrap_or_else(|e| panic!("malformed baseline {path}: {e}"));

    // >25% regression against the committed baseline fails the job.
    // Absolute rate floors (deliberately conservative, so
    // runner-to-runner noise passes) catch structural slowdowns — an
    // accidentally quadratic hot path, a per-row allocation storm —
    // and, where the baseline records a real multi-thread speedup,
    // the within-run ratios catch a silently serialized parallel path
    // no matter how fast the runner is.
    let mut failed = false;
    let mut gate_rate = |name: &str, got: f64, base: f64, unit: &str| {
        let floor = base * 0.75;
        if got < floor {
            eprintln!(
                "perf regression: {name} {got:.2} {unit} is below 75% of baseline {base:.2} {unit}"
            );
            failed = true;
        } else {
            eprintln!("perf gate: {name} {got:.2} {unit} >= floor {floor:.2} {unit} — ok");
        }
    };
    gate_rate(
        "sequential repair",
        throughput.seq_rows_per_sec,
        baseline.throughput.seq_rows_per_sec,
        "rows/s",
    );
    gate_rate(
        "parallel repair",
        throughput.par_rows_per_sec,
        baseline.throughput.par_rows_per_sec,
        "rows/s",
    );
    // The columnar rate floor arms once the baseline records one
    // (pre-columnar baselines deserialize it as 0).
    if baseline.throughput.columnar_rows_per_sec > 0.0 {
        gate_rate(
            "columnar repair",
            throughput.columnar_rows_per_sec,
            baseline.throughput.columnar_rows_per_sec,
            "rows/s",
        );
    }
    gate_rate(
        "plan design",
        plan_design.designs_per_sec,
        baseline.plan_design.designs_per_sec,
        "designs/s",
    );
    gate_rate(
        "joint design+repair (1 thread)",
        1.0 / joint_repair.t1_secs,
        1.0 / baseline.joint_repair.t1_secs,
        "runs/s",
    );
    // The serving floor arms once the baseline records a serve leg
    // (pre-serving baselines deserialize it as None).
    if let Some(base) = &baseline.serve {
        gate_rate(
            "served repair",
            serve.rows_per_sec,
            base.rows_per_sec,
            "rows/s",
        );
    }
    // The d = 3 joint floor arms once the baseline records the leg
    // (pre-n-d baselines deserialize it as None).
    if let Some(base) = &baseline.joint3 {
        gate_rate(
            "joint d=3 design+repair (1 thread)",
            1.0 / joint3.t1_secs,
            1.0 / base.t1_secs,
            "runs/s",
        );
    }
    // The cold-redesign rate floor arms once the baseline records the
    // lifecycle leg (pre-lifecycle baselines deserialize it as None).
    if let Some(base) = &baseline.redesign {
        gate_rate(
            "cold redesign",
            1.0 / redesign.cold_secs,
            1.0 / base.cold_secs,
            "designs/s",
        );
    }
    // Speedup legs only arm when the baseline recorded a genuine
    // parallel win AND this runner has the threads to reproduce one
    // (a single-core runner can never show a speedup).
    let mut gate_speedup = |name: &str, got: f64, base: f64, cores_ok: bool| {
        if !(base > 1.0 && cores_ok) {
            return;
        }
        let floor = base * 0.75;
        if got < floor {
            eprintln!(
                "perf regression: {name} speedup {got:.2}x is below 75% of baseline \
                 {base:.2}x — the parallel path may have serialized"
            );
            failed = true;
        } else {
            eprintln!("perf gate: {name} speedup {got:.2}x >= floor {floor:.2}x — ok");
        }
    };
    gate_speedup(
        "archival repair",
        throughput.speedup,
        baseline.throughput.speedup,
        throughput.threads > 1,
    );
    // The joint leg's speedup is absent on single-core runners (see
    // `quick_joint`); the gate arms only when both this run and the
    // baseline actually measured one.
    if let (Some(got), Some(base)) = (joint_repair.speedup, baseline.joint_repair.speedup) {
        gate_speedup(
            "joint repair",
            got,
            base,
            joint_repair.threads_available > 1,
        );
    }
    // Arm-the-baseline nudge (ROADMAP): a multicore runner that measures
    // a real joint speedup while the committed baseline has none is the
    // exact moment to re-record — say so instead of staying disarmed.
    if joint_repair.speedup.is_some() && baseline.joint_repair.speedup.is_none() {
        eprintln!(
            "note: this runner measured a joint 1-vs-4 speedup but the committed baseline \
             carries none, so the joint speedup floor is still disarmed. Re-record \
             ci/bench_baseline.json from this run (see ci/README.md \"Re-recording the \
             baseline\") to arm it."
        );
    }
    // The separable-kernel floor: on product grids the Kronecker
    // factorization must keep the joint leg ≥2x faster than the forced
    // dense ablation (the measured margin is far wider, so this only
    // trips on a structural regression, not runner noise).
    if let Some(ratio) = joint_repair.kernel_speedup {
        if ratio < 2.0 {
            eprintln!(
                "perf regression: separable kernel is only {ratio:.2}x faster than the dense \
                 ablation (floor 2.0x) — the axis-pass matvec path may have degraded"
            );
            failed = true;
        } else {
            eprintln!("perf gate: separable-vs-dense kernel speedup {ratio:.2}x >= 2.0x — ok");
        }
    }
    // The columnar-layout floor: the struct-of-arrays kernels must stay
    // ≥1.5x faster than the row path at the same thread count. Like the
    // kernel floor above, this is a within-run ratio — self-contained,
    // so it holds on any runner regardless of absolute speed.
    if throughput.layout_speedup < 1.5 {
        eprintln!(
            "perf regression: columnar repair is only {:.2}x faster than the row path \
             (floor 1.5x) — the column-slice kernels may have degraded",
            throughput.layout_speedup
        );
        failed = true;
    } else {
        eprintln!(
            "perf gate: columnar-vs-row layout speedup {:.2}x >= 1.5x — ok",
            throughput.layout_speedup
        );
    }
    // The warm re-design floor: seeding from banked duals must keep a
    // drift-trip re-design ≥2x faster than solving cold. A within-run
    // ratio like the kernel and layout floors — self-contained on any
    // runner.
    if redesign.warm_speedup < 2.0 {
        eprintln!(
            "perf regression: warm re-design is only {:.2}x faster than cold (floor 2.0x) \
             — the dual warm-start path may have degraded",
            redesign.warm_speedup
        );
        failed = true;
    } else {
        eprintln!(
            "perf gate: warm-vs-cold redesign speedup {:.2}x >= 2.0x — ok",
            redesign.warm_speedup
        );
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_gate();
    } else {
        benches();
    }
}
