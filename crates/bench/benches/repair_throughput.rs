//! **Criterion bench A5** — archival repair throughput (Algorithm 2).
//!
//! The paper's requirement 3 (Section IV): "the method should be
//! computationally efficient, so that large data sets can be repaired".
//! After plan design, repairing one point is O(1) per feature (direct
//! grid indexing + one Bernoulli + one O(1) alias draw), independent of
//! `nR`, `nA`, and — thanks to the alias tables — of `nQ`. This bench
//! demonstrates exactly that: throughput flat in `nQ`, linear in `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_core::{RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;

fn bench_repair(c: &mut Criterion) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(5_000, &mut rng).unwrap();

    let mut group = c.benchmark_group("repair_throughput");
    group.throughput(Throughput::Elements(archive.len() as u64));
    for &n_q in &[25usize, 50, 100, 250] {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q))
            .design(&research)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("archive_5000pts", n_q), &n_q, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| plan.repair_dataset(&archive, &mut rng).unwrap())
        });
    }
    group.finish();

    let mut design_group = c.benchmark_group("plan_design");
    for &n_q in &[25usize, 50, 100, 250] {
        design_group.bench_with_input(BenchmarkId::new("design", n_q), &n_q, |b, _| {
            let planner = RepairPlanner::new(RepairConfig::with_n_q(n_q));
            b.iter(|| planner.design(&research).unwrap())
        });
    }
    design_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair
}
criterion_main!(benches);
