//! **Criterion bench A5** — archival repair throughput (Algorithm 2).
//!
//! The paper's requirement 3 (Section IV): "the method should be
//! computationally efficient, so that large data sets can be repaired".
//! After plan design, repairing one point is O(1) per feature (direct
//! grid indexing + one Bernoulli + one O(1) alias draw), independent of
//! `nR`, `nA`, and — thanks to the alias tables — of `nQ`; and the rows
//! are independent, so dataset repair parallelizes linearly while the
//! per-row SplitMix64 streams keep the output bit-identical to the
//! sequential path.
//!
//! Two modes:
//!
//! * default (`cargo bench --bench repair_throughput`) — criterion
//!   groups: throughput vs `nQ`, plan-design cost vs `nQ`, and
//!   sequential-vs-parallel dataset repair on a 100k-row archive;
//! * `--quick` — the CI perf-smoke gate: one timed
//!   sequential-vs-parallel comparison on a ≥100k-row synthetic archive
//!   (bit-identity asserted), written to `BENCH_throughput.json`. If
//!   `OTR_BENCH_BASELINE` names a committed baseline JSON, exits
//!   non-zero when either throughput regresses more than 25%.

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use otr_core::{RepairConfig, RepairPlan, RepairPlanner};
use otr_data::{Dataset, SimulationSpec};

fn bench_repair(c: &mut Criterion) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(5_000, &mut rng).unwrap();

    let mut group = c.benchmark_group("repair_throughput");
    group.throughput(Throughput::Elements(archive.len() as u64));
    for &n_q in &[25usize, 50, 100, 250] {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q))
            .design(&research)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("archive_5000pts", n_q), &n_q, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| plan.repair_dataset(&archive, &mut rng).unwrap())
        });
    }
    group.finish();

    let mut design_group = c.benchmark_group("plan_design");
    for &n_q in &[25usize, 50, 100, 250] {
        design_group.bench_with_input(BenchmarkId::new("design", n_q), &n_q, |b, _| {
            let planner = RepairPlanner::new(RepairConfig::with_n_q(n_q));
            b.iter(|| planner.design(&research).unwrap())
        });
    }
    design_group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(2);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(100_000, &mut rng).unwrap();
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&research)
        .unwrap();

    let mut group = c.benchmark_group("parallel_repair_100k");
    group.throughput(Throughput::Elements(archive.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| plan.repair_dataset_seeded(&archive, 7).unwrap())
    });
    let mut thread_counts = vec![2usize, 4, otr_par::thread_count(0)];
    thread_counts.sort_unstable();
    thread_counts.dedup(); // auto may equal 2 or 4 — don't bench twice
    for threads in thread_counts {
        let mut plan = plan.clone();
        plan.config.threads = threads;
        let archive = &archive;
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            move |b, _| b.iter(|| plan.repair_dataset_par(archive, 7).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair, bench_parallel
}

/// The machine-readable result of one `--quick` run; `ci/bench_baseline.json`
/// is a (conservatively scaled) copy of this structure.
#[derive(Debug, Serialize, Deserialize)]
struct ThroughputReport {
    rows: usize,
    dim: usize,
    threads: usize,
    seq_secs: f64,
    par_secs: f64,
    seq_rows_per_sec: f64,
    par_rows_per_sec: f64,
    speedup: f64,
}

/// The workspace root (cargo runs bench binaries with the *package*
/// directory as cwd; reports and baselines live at the repo root).
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Best-of-`reps` wall-clock time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut() -> Dataset) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// CI perf-smoke mode: measure, record, and (optionally) gate.
fn quick_gate() {
    // Default sized so one measurement takes ~0.1 s even sequentially:
    // long enough that the 25% gate margin dwarfs timer noise, short
    // enough for a smoke job.
    let rows: usize = std::env::var("OTR_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let threads = otr_par::thread_count(0);
    eprintln!("perf-smoke: {rows} archive rows, {threads} worker threads");

    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(1);
    let research = spec.sample_dataset(500, &mut rng).unwrap();
    let archive = spec.sample_dataset(rows, &mut rng).unwrap();
    let plan: RepairPlan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&research)
        .unwrap();

    // The determinism contract is part of the gate: parallel output must
    // be bit-identical to the sequential per-row-stream reference.
    let seq_out = plan.repair_dataset_seeded(&archive, 7).unwrap();
    let par_out = plan.repair_dataset_par(&archive, 7).unwrap();
    assert!(
        seq_out.points() == par_out.points(),
        "parallel repair diverged from the sequential reference"
    );

    let seq_secs = best_of(5, || plan.repair_dataset_seeded(&archive, 7).unwrap());
    let par_secs = best_of(5, || plan.repair_dataset_par(&archive, 7).unwrap());
    let report = ThroughputReport {
        rows,
        dim: archive.dim(),
        threads,
        seq_secs,
        par_secs,
        seq_rows_per_sec: rows as f64 / seq_secs,
        par_rows_per_sec: rows as f64 / par_secs,
        speedup: seq_secs / par_secs,
    };
    println!(
        "sequential: {:.3} s ({:.0} rows/s)\nparallel:   {:.3} s ({:.0} rows/s)\nspeedup:    {:.2}x at {} threads",
        report.seq_secs,
        report.seq_rows_per_sec,
        report.par_secs,
        report.par_rows_per_sec,
        report.speedup,
        report.threads
    );

    let json = serde_json::to_string_pretty(&report).unwrap();
    let out_path = workspace_root().join("BENCH_throughput.json");
    std::fs::write(&out_path, &json).expect("cannot write BENCH_throughput.json");
    eprintln!("wrote {}", out_path.display());

    if let Ok(path) = std::env::var("OTR_BENCH_BASELINE") {
        // Relative baseline paths are repo-root-relative, so the CI
        // workflow and a manual run from anywhere agree.
        let mut full = std::path::PathBuf::from(&path);
        if full.is_relative() {
            full = workspace_root().join(full);
        }
        let blob = std::fs::read_to_string(&full)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: ThroughputReport = serde_json::from_str(&blob)
            .unwrap_or_else(|e| panic!("malformed baseline {path}: {e}"));
        // >25% regression against the committed baseline fails the job.
        // Absolute rows/sec floors (deliberately conservative, so
        // runner-to-runner noise passes) catch structural slowdowns — an
        // accidentally quadratic hot path, a per-row allocation storm —
        // and, once the baseline records a real multi-thread speedup,
        // the within-run seq/par ratio catches a silently serialized
        // parallel path no matter how fast the runner is.
        let mut failed = false;
        for (name, got, base) in [
            (
                "sequential",
                report.seq_rows_per_sec,
                baseline.seq_rows_per_sec,
            ),
            (
                "parallel",
                report.par_rows_per_sec,
                baseline.par_rows_per_sec,
            ),
        ] {
            let floor = base * 0.75;
            if got < floor {
                eprintln!(
                    "perf regression: {name} throughput {got:.0} rows/s is below \
                     75% of baseline {base:.0} rows/s"
                );
                failed = true;
            } else {
                eprintln!("perf gate: {name} {got:.0} rows/s >= floor {floor:.0} rows/s — ok");
            }
        }
        // The speedup leg only arms when the baseline recorded a genuine
        // parallel win AND this runner has the threads to reproduce one
        // (a single-core runner can never show a speedup).
        if baseline.speedup > 1.0 && report.threads > 1 {
            let floor = baseline.speedup * 0.75;
            if report.speedup < floor {
                eprintln!(
                    "perf regression: parallel speedup {:.2}x is below 75% of \
                     baseline {:.2}x — the parallel path may have serialized",
                    report.speedup, baseline.speedup
                );
                failed = true;
            } else {
                eprintln!(
                    "perf gate: speedup {:.2}x >= floor {floor:.2}x — ok",
                    report.speedup
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_gate();
    } else {
        benches();
    }
}
