//! **Criterion bench A6** — OT solver scaling in the support size `nQ`.
//!
//! Backs the paper's complexity discussion (Section IV-A1): exact
//! unregularized OT is `O(nQ³ log nQ)`-class (here: transportation
//! simplex), Sinkhorn is `O(nQ²/ε²)`, and the paper's 1-D-specialized
//! monotone solver is `O(nQ)` — the structural win that makes per-feature
//! plan design cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use otr_ot::{
    sinkhorn, solve_monotone_1d, solve_transportation_simplex, CostMatrix, DiscreteDistribution,
    SinkhornConfig,
};

/// Deterministic pair of pmfs on an `n`-state grid (offset Gaussians).
fn problem(n: usize) -> (DiscreteDistribution, DiscreteDistribution, CostMatrix) {
    let support: Vec<f64> = (0..n)
        .map(|i| i as f64 / (n - 1) as f64 * 6.0 - 3.0)
        .collect();
    let gauss = |mean: f64| -> Vec<f64> {
        support
            .iter()
            .map(|&x| (-0.5 * (x - mean) * (x - mean)).exp() + 1e-9)
            .collect()
    };
    let mu = DiscreteDistribution::new(support.clone(), gauss(-0.7)).unwrap();
    let nu = DiscreteDistribution::new(support.clone(), gauss(0.7)).unwrap();
    let cost = CostMatrix::squared_euclidean(&support, &support).unwrap();
    (mu, nu, cost)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    for &n in &[25usize, 50, 100, 250] {
        let (mu, nu, cost) = problem(n);
        group.bench_with_input(BenchmarkId::new("monotone_exact", n), &n, |b, _| {
            b.iter(|| solve_monotone_1d(&mu, &nu).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sinkhorn_eps0.1", n), &n, |b, _| {
            b.iter(|| {
                sinkhorn(
                    mu.masses(),
                    nu.masses(),
                    &cost,
                    SinkhornConfig {
                        epsilon: 0.1,
                        max_iters: 100_000,
                        tol: 1e-6,
                        ..SinkhornConfig::default()
                    },
                )
                .unwrap()
            })
        });
        // The simplex is the expensive exact reference; keep it to the
        // smaller sizes so the bench suite stays fast.
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("simplex_exact", n), &n, |b, _| {
                b.iter(|| solve_transportation_simplex(mu.masses(), nu.masses(), &cost).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
