//! **Figure 4** — empirical `E` of the composite repaired data set
//! `X_R ∪ X_A` as the interpolated-support resolution `nQ` grows, for
//! fixed `nR = 500`, `nA = 5000`.
//!
//! Reproduces the paper's observation that repair performance converges
//! above `nQ ≈ 30`: the interpolated pmfs act as pseudo-sufficient
//! statistics an order of magnitude smaller than `nR`.
//!
//! Usage: `fig4 [runs]` (default 50).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q_SWEEP: &[usize] = &[5, 10, 15, 20, 25, 30, 40, 50];

fn main() {
    let runs = runs_from_args(50);
    eprintln!("fig4: {runs} replicates per point (nR={N_RESEARCH}, nA={N_ARCHIVE})");

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 4_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        // One data draw per replicate, shared across the nQ sweep so the
        // curve reflects nQ alone.
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();
        for &n_q in N_Q_SWEEP {
            let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q)).design(&split.research)?;
            let rep_res = plan.repair_dataset(&split.research, &mut rng)?;
            let rep_arc = plan.repair_dataset(&split.archive, &mut rng)?;
            let composite = rep_res.concat(&rep_arc)?;
            metrics.push((
                format!("composite/nQ={n_q}"),
                cd.evaluate(&composite)?.aggregate(),
            ));
        }
        let composite_unrepaired = split.research.concat(&split.archive)?;
        metrics.push((
            "unrepaired/composite".to_string(),
            cd.evaluate(&composite_unrepaired)?.aggregate(),
        ));
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nFigure 4 — E of the composite repaired data (X_R ∪ X_A) vs nQ");
    println!("{:<8} {:>26}", "nQ", "E composite repaired");
    for &n_q in N_Q_SWEEP {
        if let Some(w) = stats.get(&format!("composite/nQ={n_q}")) {
            println!("{:<8} {:>18.4} ± {:.4}", n_q, w.mean(), w.sample_sd());
        }
    }
    if let Some(w) = stats.get("unrepaired/composite") {
        println!(
            "{:<8} {:>18.4} ± {:.4}   (no repair, for scale)",
            "-",
            w.mean(),
            w.sample_sd()
        );
    }
    println!(
        "\nExpected shape (paper): E decreases with nQ and is statistically flat above nQ≈30."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("fig4", &stats, &extra);
}
