//! **Ablation A8** — intra-feature correlation structure (Section VI of
//! the paper).
//!
//! The paper's per-feature stratification "neglect\[s\] the intra-feature
//! correlation structure in the x_{u,s}" and defers its impact to future
//! work. This harness constructs the adversarial case: `s`-conditionals
//! with **identical marginals but opposite correlation** (`ρ = ±0.8`).
//! The per-feature repair is blind to all of it; the joint (2-D support)
//! repair removes it at `nQ²` design cost.
//!
//! Metrics: marginal `E` (the paper's measure) and joint 2-D `E`,
//! before/after each repair, plus design wall time.
//!
//! Usage: `ablation_joint [runs]` (default 10).

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{JointRepairConfig, JointRepairPlan, RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::{ConditionalDependence, JointDependence};
use otr_stats::linalg::Matrix;

const N_RESEARCH: usize = 1_500;
const N_ARCHIVE: usize = 4_000;

fn correlation_spec() -> SimulationSpec {
    let cov = |rho: f64| Matrix::from_rows(2, 2, vec![1.0, rho, rho, 1.0]).unwrap();
    SimulationSpec {
        // Identical means everywhere: the s|u dependence is *purely*
        // correlational, invisible to any per-feature method.
        means: [
            [vec![0.0, 0.0], vec![0.0, 0.0]],
            [vec![0.0, 0.0], vec![0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
        pr_u0: 0.5,
        pr_s0_given_u: [0.4, 0.4],
    }
}

fn main() {
    let runs = runs_from_args(10);
    eprintln!("ablation_joint: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE})");

    let spec = correlation_spec();
    let cd = ConditionalDependence::default();
    let jd = JointDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 12_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();

        metrics.push((
            "marginal-E/unrepaired".to_string(),
            cd.evaluate(&split.archive)?.aggregate(),
        ));
        metrics.push((
            "joint-E/unrepaired".to_string(),
            jd.evaluate(&split.archive)?,
        ));

        // Per-feature repair (the paper's Algorithm 1+2).
        let start = Instant::now();
        let marginal_plan =
            RepairPlanner::new(RepairConfig::with_n_q(50)).design(&split.research)?;
        metrics.push((
            "design_ms/per-feature".to_string(),
            start.elapsed().as_secs_f64() * 1e3,
        ));
        let rep_marginal = marginal_plan.repair_dataset(&split.archive, &mut rng)?;
        metrics.push((
            "marginal-E/per-feature repair".to_string(),
            cd.evaluate(&rep_marginal)?.aggregate(),
        ));
        metrics.push((
            "joint-E/per-feature repair".to_string(),
            jd.evaluate(&rep_marginal)?,
        ));

        // Joint repair on the nQ² product support.
        let start = Instant::now();
        let joint_plan = JointRepairPlan::design(&split.research, JointRepairConfig::default())?;
        metrics.push((
            "design_ms/joint".to_string(),
            start.elapsed().as_secs_f64() * 1e3,
        ));
        let rep_joint = joint_plan.repair_dataset(&split.archive, &mut rng)?;
        metrics.push((
            "marginal-E/joint repair".to_string(),
            cd.evaluate(&rep_joint)?.aggregate(),
        ));
        metrics.push(("joint-E/joint repair".to_string(), jd.evaluate(&rep_joint)?));
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nAblation A8 — correlation-borne dependence: per-feature vs joint repair");
    println!(
        "{:<24} {:>20} {:>20} {:>18}",
        "variant", "marginal E", "joint E", "design (ms)"
    );
    for variant in ["unrepaired", "per-feature repair", "joint repair"] {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/{variant}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        let d = stats
            .get(&format!(
                "design_ms/{}",
                if variant == "per-feature repair" {
                    "per-feature"
                } else {
                    "joint"
                }
            ))
            .filter(|_| variant != "unrepaired")
            .map(|w| format!("{:.1}", w.mean()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<24} {:>20} {:>20} {:>18}",
            variant,
            g("marginal-E"),
            g("joint-E"),
            d
        );
    }
    println!(
        "\nExpected shape: marginal E is ~0 in all rows (the marginals are identical\n\
         by construction). Joint E: large unrepaired, unchanged by the per-feature\n\
         repair (the paper's Sec. VI caveat made concrete), strongly reduced by the\n\
         joint repair — at roughly nQ²-fold design cost."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_joint", &stats, &extra);
}
