//! **Ablation A1** — the partial-repair trade-off (Section VI of the
//! paper): residual unfairness `E` versus data damage as the repair
//! intensity `λ` sweeps from 0 (no repair) to 1 (full Algorithm 2).
//!
//! `x'(λ) = (1−λ)·x + λ·repair(x)` interpolates each point toward its
//! repaired position. The paper defers this trade-off study to future
//! work; this harness provides it.
//!
//! Usage: `ablation_partial [runs]` (default 20).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{dataset_damage, RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;
const LAMBDAS: &[f64] = &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let runs = runs_from_args(20);
    eprintln!("ablation_partial: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})");

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 7_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let plan = RepairPlanner::new(RepairConfig::with_n_q(N_Q)).design(&split.research)?;
        let mut metrics = Vec::new();
        for &lambda in LAMBDAS {
            let repaired = plan.repair_dataset_partial(&split.archive, lambda, &mut rng)?;
            let e = cd.evaluate(&repaired)?.aggregate();
            let damage = dataset_damage(&split.archive, &repaired)?;
            metrics.push((format!("E/lambda={lambda:.1}"), e));
            metrics.push((format!("rmse/lambda={lambda:.1}"), damage.mean_rmse()));
            metrics.push((format!("w2/lambda={lambda:.1}"), damage.max_w2()));
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nAblation A1 — partial repair: fairness vs damage on archival data");
    println!(
        "{:<10} {:>20} {:>20} {:>20}",
        "lambda", "E (residual)", "RMSE damage", "max W2 damage"
    );
    for &lambda in LAMBDAS {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/lambda={lambda:.1}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<10.1} {:>20} {:>20} {:>20}",
            lambda,
            g("E"),
            g("rmse"),
            g("w2")
        );
    }
    println!(
        "\nExpected shape: E decreases monotonically in lambda while damage increases —\n\
         the practitioner picks an operating point on this frontier (Sec. VI)."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_partial", &stats, &extra);
}
