//! **Ablation A2** — exact vs entropic plan design (Section IV-A1 of the
//! paper): repair quality `E`, data damage, and design wall time as the
//! Sinkhorn regularization `ε` varies, against the exact monotone solver.
//!
//! The entropy term blurs the plans, which Algorithm 2's randomization
//! inherits: larger `ε` should show higher residual `E` and more damage,
//! converging to the exact solver as `ε → 0`.
//!
//! Usage: `ablation_sinkhorn [runs]` (default 10).

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{dataset_damage, RepairConfig, RepairPlanner, SolverBackend};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;
const EPSILONS: &[f64] = &[1.0, 0.3, 0.1, 0.03];

fn main() {
    let runs = runs_from_args(10);
    eprintln!("ablation_sinkhorn: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})");

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 8_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();

        let mut eval = |name: String,
                        solver: SolverBackend,
                        rng: &mut StdRng|
         -> Result<(), Box<dyn std::error::Error>> {
            let mut cfg = RepairConfig::with_n_q(N_Q);
            cfg.solver = solver;
            let start = Instant::now();
            let plan = RepairPlanner::new(cfg).design(&split.research)?;
            let design_ms = start.elapsed().as_secs_f64() * 1e3;
            let repaired = plan.repair_dataset(&split.archive, rng)?;
            let e = cd.evaluate(&repaired)?.aggregate();
            let damage = dataset_damage(&split.archive, &repaired)?;
            metrics.push((format!("E/{name}"), e));
            metrics.push((format!("rmse/{name}"), damage.mean_rmse()));
            metrics.push((format!("design_ms/{name}"), design_ms));
            Ok(())
        };

        eval("exact".into(), SolverBackend::ExactMonotone, &mut rng)?;
        eval("simplex".into(), SolverBackend::Simplex, &mut rng)?;
        for &eps in EPSILONS {
            eval(format!("eps={eps}"), SolverBackend::sinkhorn(eps), &mut rng)?;
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nAblation A2 — exact monotone vs Sinkhorn plan design (archival repair)");
    println!(
        "{:<12} {:>20} {:>20} {:>20}",
        "solver", "E (residual)", "RMSE damage", "design time (ms)"
    );
    let mut rows: Vec<String> = vec!["exact".into(), "simplex".into()];
    rows.extend(EPSILONS.iter().map(|e| format!("eps={e}")));
    for row in rows {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/{row}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<12} {:>20} {:>20} {:>20}",
            row,
            g("E"),
            g("rmse"),
            g("design_ms")
        );
    }
    println!(
        "\nExpected shape: both damage and E converge to the exact row as eps shrinks.\n\
         Larger eps blurs the plans: residual E drops below the exact value (both\n\
         conditionals get smeared toward the same blur) but damage rises sharply —\n\
         entropy buys fairness with data destruction, not with better transport.\n\
         Design time grows as eps shrinks (more Sinkhorn iterations)."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_sinkhorn", &stats, &extra);
}
