//! **Table II** — OT-based repairs to quench conditional dependence of the
//! educational groups (`u` = college-level-or-above) on gender (`s`) in
//! the Adult income data (Section V-B).
//!
//! Protocol (paper): `nR = 10,000`, `nA = 35,222`, `nQ = 250`; features
//! age and hours/week. The paper reports a single split; we default to a
//! small number of replicates to also report spread.
//!
//! Data source: the calibrated Adult-like synthetic generator
//! (`otr_data::AdultSynth`, see DESIGN.md §4). Set the environment
//! variable `ADULT_CSV=/path/to/adult.data` to run on the real UCI file
//! instead (single replicate, as in the paper).
//!
//! Usage: `table2 [runs]` (default 8).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{render_table, run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{GeometricRepair, RepairConfig, RepairPlanner};
use otr_data::adult::load_adult_csv;
use otr_data::{AdultSynth, SplitData};
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 10_000;
const N_ARCHIVE: usize = 35_222;
const N_Q: usize = 250;
const FEATURES: [&str; 2] = ["Age", "Hours/Week"];

fn run_once(
    split: &SplitData,
    rng: &mut StdRng,
) -> Result<Vec<(String, f64)>, Box<dyn std::error::Error>> {
    let cd = ConditionalDependence::default();
    let planner = RepairPlanner::new(RepairConfig::with_n_q(N_Q));

    let mut metrics = Vec::new();
    let e_res_none = cd.evaluate(&split.research)?;
    let e_arc_none = cd.evaluate(&split.archive)?;

    let plan = planner.design(&split.research)?;
    let e_res_dist = cd.evaluate(&plan.repair_dataset(&split.research, rng)?)?;
    let e_arc_dist = cd.evaluate(&plan.repair_dataset(&split.archive, rng)?)?;

    let geo = GeometricRepair::default().repair(&split.research)?;
    let e_res_geo = cd.evaluate(&geo)?;

    for (k, name) in FEATURES.iter().enumerate() {
        metrics.push((format!("None/research-{name}"), e_res_none.e_per_feature[k]));
        metrics.push((format!("None/archive-{name}"), e_arc_none.e_per_feature[k]));
        metrics.push((
            format!("Distributional (ours)/research-{name}"),
            e_res_dist.e_per_feature[k],
        ));
        metrics.push((
            format!("Distributional (ours)/archive-{name}"),
            e_arc_dist.e_per_feature[k],
        ));
        metrics.push((
            format!("Geometric [10]/research-{name}"),
            e_res_geo.e_per_feature[k],
        ));
    }
    Ok(metrics)
}

fn main() {
    let runs = runs_from_args(8);

    let (stats, failures) = if let Ok(path) = std::env::var("ADULT_CSV") {
        eprintln!("table2: real Adult file {path} (single split, nQ={N_Q})");
        let file = std::fs::File::open(&path).expect("cannot open ADULT_CSV");
        let data = load_adult_csv(std::io::BufReader::new(file)).expect("bad adult CSV");
        let mut rng = StdRng::seed_from_u64(5_000);
        let n_r = N_RESEARCH.min(data.len() / 2);
        let split = data
            .split_research_archive(n_r, &mut rng)
            .expect("split failed");
        let metrics = run_once(&split, &mut rng).expect("experiment failed");
        let mut stats = otr_bench::McStats::new();
        for (name, value) in metrics {
            stats.entry(name).or_default().push(value);
        }
        (stats, otr_bench::McFailures::default())
    } else {
        eprintln!(
            "table2: {runs} replicates of the Adult-like synthetic generator \
             (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q}); set ADULT_CSV= for the real file"
        );
        let generator = AdultSynth::default();
        run_mc_threaded(runs, 5_000, threads_from_args(), move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let split = generator.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
            run_once(&split, &mut rng)
        })
    };

    failures.warn_if_any();

    let table = render_table(
        "\nTable II — E_k for the Adult income study (lower = better repair)",
        &["None", "Distributional (ours)", "Geometric [10]"],
        &[
            "research-Age",
            "research-Hours/Week",
            "archive-Age",
            "archive-Hours/Week",
        ],
        &stats,
    );
    println!("{table}");
    println!(
        "Paper reference — None: 1.108/2.700 (research), 0.546/1.311 (archive); \
         Distributional: 0.339/0.532 (research), 0.310/0.367 (archive); \
         Geometric: 0.195/2.126 (research only)."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("table2", &stats, &extra);
}
