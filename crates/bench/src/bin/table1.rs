//! **Table I** — OT-based repairs (quenching of conditional dependence)
//! for the simulated bivariate-Gaussian sub-groups of Section V-A.
//!
//! Protocol (paper defaults): `nR = 500`, `nA = 5000`, `nQ = 50`,
//! 200 Monte-Carlo replicates; report `E_k` (mean ± sd) per feature for
//! the research and archive data under: no repair, our distributional
//! repair (Algorithms 1+2), and the geometric repair of \[10\] (research
//! data only — it cannot repair off-sample points).
//!
//! Usage: `table1 [runs]` (default 200).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{render_table, run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{GeometricRepair, RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;

fn main() {
    let runs = runs_from_args(200);
    eprintln!("table1: {runs} Monte-Carlo replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})");

    let spec = SimulationSpec::paper_defaults();
    let planner = RepairPlanner::new(RepairConfig::with_n_q(N_Q));
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 1_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;

        let mut metrics = Vec::new();
        let e_res_none = cd.evaluate(&split.research)?;
        let e_arc_none = cd.evaluate(&split.archive)?;

        let plan = planner.design(&split.research)?;
        let rep_res = plan.repair_dataset(&split.research, &mut rng)?;
        let rep_arc = plan.repair_dataset(&split.archive, &mut rng)?;
        let e_res_dist = cd.evaluate(&rep_res)?;
        let e_arc_dist = cd.evaluate(&rep_arc)?;

        let geo = GeometricRepair::default().repair(&split.research)?;
        let e_res_geo = cd.evaluate(&geo)?;

        for k in 0..2 {
            metrics.push((
                format!("None/research-k{}", k + 1),
                e_res_none.e_per_feature[k],
            ));
            metrics.push((
                format!("None/archive-k{}", k + 1),
                e_arc_none.e_per_feature[k],
            ));
            metrics.push((
                format!("Distributional (ours)/research-k{}", k + 1),
                e_res_dist.e_per_feature[k],
            ));
            metrics.push((
                format!("Distributional (ours)/archive-k{}", k + 1),
                e_arc_dist.e_per_feature[k],
            ));
            metrics.push((
                format!("Geometric [10]/research-k{}", k + 1),
                e_res_geo.e_per_feature[k],
            ));
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    let table = render_table(
        "\nTable I — E_k for simulated bivariate Gaussian sub-groups (lower = better repair)",
        &["None", "Distributional (ours)", "Geometric [10]"],
        &["research-k1", "research-k2", "archive-k1", "archive-k2"],
        &stats,
    );
    println!("{table}");
    println!(
        "Paper reference — None: 7.486/7.271 (research), 6.279/6.377 (archive); \
         Distributional: 0.0899/0.0926 (research), 0.3926/0.4443 (archive); \
         Geometric: 0.0071/0.0073 (research only)."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("table1", &stats, &extra);
}
