//! **Ablation A4** — oracle vs estimated protected labels (Sections IV
//! and VI of the paper).
//!
//! The paper assumes archival `s|u` labels are known "or can be estimated
//! with low error" and defers the estimation study to future work. This
//! harness closes that loop: for each `u` group it fits the two-component
//! Gaussian-mixture EM of `otr_stats::em` on the *pooled, unlabelled*
//! archival feature (per the paper's Equation 10), anchors component
//! identity with the labelled research moments, assigns `ŝ` by MAP, and
//! repairs with `ŝ` instead of the true `s`.
//!
//! Usage: `ablation_label_noise [runs]` (default 20).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{GroupBlindRepairer, RepairConfig, RepairPlanner};
use otr_data::{Dataset, GroupKey, LabelledPoint, SimulationSpec};
use otr_fairness::ConditionalDependence;
use otr_stats::GaussianMixtureEm;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;
/// Feature used by the EM label estimator (the most `s`-separated one).
const EM_FEATURE: usize = 0;

/// Estimate `ŝ` for each archival point by per-`u` 1-D Gaussian-mixture
/// EM on `EM_FEATURE`, initialized from the labelled research moments.
fn estimate_labels(
    research: &Dataset,
    archive: &Dataset,
) -> Result<(Dataset, f64), Box<dyn std::error::Error>> {
    let em = GaussianMixtureEm::default();
    let mut fits = Vec::new();
    for u in 0..2u8 {
        // Research-informed initialization anchors component identity.
        let r0 = research.feature_column(GroupKey { u, s: 0 }, EM_FEATURE)?;
        let r1 = research.feature_column(GroupKey { u, s: 1 }, EM_FEATURE)?;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let sd = |v: &[f64], m: f64| {
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() as f64 - 1.0).max(1.0))
                .sqrt()
                .max(1e-3)
        };
        let (m0, m1) = (mean(&r0), mean(&r1));
        let w0 = r0.len() as f64 / (r0.len() + r1.len()) as f64;
        let pooled = archive.feature_column_u(u, EM_FEATURE)?;
        let fit = em.fit_with_init(
            &pooled,
            w0.clamp(0.01, 0.99),
            [m0, m1],
            [sd(&r0, m0), sd(&r1, m1)],
        )?;
        fits.push(fit);
    }

    let mut correct = 0usize;
    let mut points = Vec::with_capacity(archive.len());
    for p in archive.points() {
        let s_hat = fits[p.u as usize].classify(p.x[EM_FEATURE]);
        if s_hat == p.s {
            correct += 1;
        }
        points.push(LabelledPoint {
            x: p.x.clone(),
            s: s_hat,
            u: p.u,
        });
    }
    let accuracy = correct as f64 / archive.len() as f64;
    Ok((Dataset::from_points(points)?, accuracy))
}

fn main() {
    let runs = runs_from_args(20);
    eprintln!(
        "ablation_label_noise: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})"
    );

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 10_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let plan = RepairPlanner::new(RepairConfig::with_n_q(N_Q)).design(&split.research)?;

        let oracle = plan.repair_dataset(&split.archive, &mut rng)?;
        let blind = GroupBlindRepairer::new(plan.clone(), &split.research)?
            .repair_dataset_blind(&split.archive, &mut rng)?;
        let (relabelled, accuracy) = estimate_labels(&split.research, &split.archive)?;
        let estimated_raw = plan.repair_dataset(&relabelled, &mut rng)?;
        // Evaluate fairness against the TRUE labels (the estimator only
        // chooses which plan row repairs each point).
        let estimated = Dataset::from_points(
            estimated_raw
                .points()
                .iter()
                .zip(split.archive.points())
                .map(|(rep, orig)| LabelledPoint {
                    x: rep.x.clone(),
                    s: orig.s,
                    u: orig.u,
                })
                .collect(),
        )?;

        Ok(vec![
            (
                "E/unrepaired".to_string(),
                cd.evaluate(&split.archive)?.aggregate(),
            ),
            (
                "E/oracle labels".to_string(),
                cd.evaluate(&oracle)?.aggregate(),
            ),
            (
                "E/EM labels".to_string(),
                cd.evaluate(&estimated)?.aggregate(),
            ),
            (
                "E/group-blind posterior".to_string(),
                cd.evaluate(&blind)?.aggregate(),
            ),
            ("accuracy/EM labels".to_string(), accuracy),
        ])
    });

    failures.warn_if_any();

    println!("\nAblation A4 — repair with oracle vs EM-estimated archival labels");
    for row in [
        "unrepaired",
        "oracle labels",
        "EM labels",
        "group-blind posterior",
    ] {
        if let Some(w) = stats.get(&format!("E/{row}")) {
            println!("{:<16} E = {:.4} ± {:.4}", row, w.mean(), w.sample_sd());
        }
    }
    if let Some(w) = stats.get("accuracy/EM labels") {
        println!("EM label accuracy: {:.3} ± {:.3}", w.mean(), w.sample_sd());
    }
    println!(
        "\nExpected shape: EM-labelled and group-blind repairs sit between unrepaired\n\
         and oracle. The soft group-blind posterior (which never commits to a hard\n\
         label) should match or beat hard EM labels — the direction of the paper's\n\
         refs [37]-[39]."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_label_noise", &stats, &extra);
}
