//! **Figure 3** — empirical `E` (aggregated over both features) as the
//! research-data size `nR` grows, for fixed `nA = 5000`, `nQ = 50`.
//!
//! Reproduces the paper's observation that repair quality converges by
//! `nR ≈ 500` (10% of the archive), with the archive (off-sample) curve
//! plateauing above the research (on-sample) curve, both far below the
//! unrepaired level.
//!
//! Usage: `fig3 [runs]` (default 50).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;
const N_R_SWEEP: &[usize] = &[25, 50, 100, 200, 300, 500, 750];

fn main() {
    let runs = runs_from_args(50);
    eprintln!("fig3: {runs} replicates per point (nA={N_ARCHIVE}, nQ={N_Q})");

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 3_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metrics = Vec::new();
        for &n_r in N_R_SWEEP {
            let split = spec.generate(n_r, N_ARCHIVE, &mut rng)?;
            metrics.push((
                format!("unrepaired/nR={n_r}"),
                cd.evaluate(&split.archive)?.aggregate(),
            ));
            // The tiny-nR points can miss a subgroup; treat as a failed
            // point rather than a failed replicate.
            let plan = match RepairPlanner::new(RepairConfig::with_n_q(N_Q)).design(&split.research)
            {
                Ok(p) => p,
                Err(_) => continue,
            };
            let rep_res = plan.repair_dataset(&split.research, &mut rng)?;
            let rep_arc = plan.repair_dataset(&split.archive, &mut rng)?;
            if let Ok(e) = cd.evaluate(&rep_res) {
                metrics.push((format!("research/nR={n_r}"), e.aggregate()));
            }
            metrics.push((
                format!("archive/nR={n_r}"),
                cd.evaluate(&rep_arc)?.aggregate(),
            ));
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nFigure 3 — E (aggregated over features) vs research size nR");
    println!(
        "{:<8} {:>22} {:>22} {:>22}",
        "nR", "E repaired research", "E repaired archive", "E unrepaired archive"
    );
    for &n_r in N_R_SWEEP {
        let cell = |series: &str| {
            stats
                .get(&format!("{series}/nR={n_r}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<8} {:>22} {:>22} {:>22}",
            n_r,
            cell("research"),
            cell("archive"),
            cell("unrepaired")
        );
    }
    println!(
        "\nExpected shape (paper): both repaired curves decay and plateau by nR≈500;\n\
         archive stays above research; unrepaired stays an order of magnitude higher."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("fig3", &stats, &extra);
}
