//! **Ablation A7** — randomized Kantorovich repair (Algorithm 2) versus
//! the deterministic Monge quantile-matching map, across support
//! resolutions `nQ`.
//!
//! Section VI of the paper: "Kantorovich OT repair plans converge to
//! Monge maps as `nQ → ∞` … this could improve the individual fairness of
//! the approach". This harness measures (i) group fairness `E` for both
//! operators as `nQ` grows, and (ii) an individual-consistency score for
//! each: the mean repaired-value gap for pairs of near-identical inputs
//! (smaller = more individually fair).
//!
//! Usage: `ablation_monge [runs]` (default 20).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{MongeRepair, RepairConfig, RepairPlanner};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q_SWEEP: &[usize] = &[10, 25, 50, 100, 250];

fn main() {
    let runs = runs_from_args(20);
    eprintln!("ablation_monge: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE})");

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 11_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();
        for &n_q in N_Q_SWEEP {
            let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q)).design(&split.research)?;
            let monge = MongeRepair::from_plan(&plan);

            let rand_rep = plan.repair_dataset(&split.archive, &mut rng)?;
            let monge_rep = monge.repair_dataset(&split.archive)?;
            metrics.push((
                format!("E-kantorovich/nQ={n_q}"),
                cd.evaluate(&rand_rep)?.aggregate(),
            ));
            metrics.push((
                format!("E-monge/nQ={n_q}"),
                cd.evaluate(&monge_rep)?.aggregate(),
            ));

            // Individual consistency: repair x and x + δ (δ ≪ grid step)
            // and record the repaired gap, averaged over probe points.
            let delta = 1e-3;
            let probes: Vec<f64> = (0..200).map(|i| -2.5 + 5.0 * i as f64 / 199.0).collect();
            let mut gap_rand = 0.0;
            let mut gap_monge = 0.0;
            for &x in &probes {
                let a = plan.repair_value(0, 1, 0, x, &mut rng)?;
                let b = plan.repair_value(0, 1, 0, x + delta, &mut rng)?;
                gap_rand += (a - b).abs();
                let a = monge.repair_value(0, 1, 0, x)?;
                let b = monge.repair_value(0, 1, 0, x + delta)?;
                gap_monge += (a - b).abs();
            }
            metrics.push((
                format!("gap-kantorovich/nQ={n_q}"),
                gap_rand / probes.len() as f64,
            ));
            metrics.push((
                format!("gap-monge/nQ={n_q}"),
                gap_monge / probes.len() as f64,
            ));
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nAblation A7 — Kantorovich (Alg. 2) vs Monge quantile map, archival data");
    println!(
        "{:<8} {:>18} {:>18} {:>18} {:>18}",
        "nQ", "E Kantorovich", "E Monge", "pair-gap Kant.", "pair-gap Monge"
    );
    for &n_q in N_Q_SWEEP {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/nQ={n_q}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<8} {:>18} {:>18} {:>18} {:>18}",
            n_q,
            g("E-kantorovich"),
            g("E-monge"),
            g("gap-kantorovich"),
            g("gap-monge")
        );
    }
    println!(
        "\nExpected shape: the two E columns converge as nQ grows (Brenier limit),\n\
         while the Monge pair-gap is orders of magnitude smaller at every nQ —\n\
         determinism buys individual fairness at no group-fairness cost."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_monge", &stats, &extra);
}
