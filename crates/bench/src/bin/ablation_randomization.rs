//! **Ablation A3** — the paper's randomized mass split (Section IV-B)
//! versus a deterministic barycentric-projection variant of Algorithm 2.
//!
//! Algorithm 2 draws the repaired state from the normalized plan row
//! (Equation 15), preserving the *distributional* shape of the repair.
//! The obvious deterministic alternative maps every archival point to its
//! row's conditional mean (the barycentric projection). Determinism
//! collapses each row's mass to a point, which distorts the repaired
//! marginal — this harness quantifies how much fairness that costs.
//!
//! Usage: `ablation_randomization [runs]` (default 20).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_bench::{run_mc_threaded, runs_from_args, threads_from_args, write_results};
use otr_core::{dataset_damage, MassSplit, RepairConfig, RepairPlanner, SolverBackend};
use otr_data::SimulationSpec;
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;

fn main() {
    let runs = runs_from_args(20);
    eprintln!(
        "ablation_randomization: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})"
    );

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc_threaded(runs, 9_000, threads_from_args(), |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();
        // Exact plans have near-degenerate rows; entropic plans have
        // blurred rows, where the deterministic point-collapse hurts.
        for (backend_name, solver) in [
            ("exact", SolverBackend::ExactMonotone),
            ("sinkhorn eps=0.5", SolverBackend::sinkhorn(0.5)),
        ] {
            let mut cfg = RepairConfig::with_n_q(N_Q);
            cfg.solver = solver;
            let plan = RepairPlanner::new(cfg).design(&split.research)?;
            let randomized = plan.repair_dataset(&split.archive, &mut rng)?;
            // Same designed plan, deterministic mass split (the variant
            // is a first-class `RepairConfig` mode).
            let mut det_plan = plan.clone();
            det_plan.config.mass_split = MassSplit::Deterministic;
            let deterministic = det_plan.repair_dataset(&split.archive, &mut rng)?;
            metrics.push((
                format!("E/randomized, {backend_name}"),
                cd.evaluate(&randomized)?.aggregate(),
            ));
            metrics.push((
                format!("E/deterministic, {backend_name}"),
                cd.evaluate(&deterministic)?.aggregate(),
            ));
            metrics.push((
                format!("rmse/randomized, {backend_name}"),
                dataset_damage(&split.archive, &randomized)?.mean_rmse(),
            ));
            metrics.push((
                format!("rmse/deterministic, {backend_name}"),
                dataset_damage(&split.archive, &deterministic)?.mean_rmse(),
            ));
        }
        Ok(metrics)
    });

    failures.warn_if_any();

    println!("\nAblation A3 — randomized (Eq. 14-15) vs deterministic mass split, archival data");
    println!(
        "{:<30} {:>20} {:>20}",
        "variant", "E (residual)", "RMSE damage"
    );
    for variant in [
        "randomized, exact",
        "deterministic, exact",
        "randomized, sinkhorn eps=0.5",
        "deterministic, sinkhorn eps=0.5",
    ] {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/{variant}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:<30} {:>20} {:>20}", variant, g("E"), g("rmse"));
    }
    println!(
        "\nExpected shape: with exact (near-degenerate) plan rows the variants tie;\n\
         with entropic (blurred) rows the deterministic point-collapse distorts the\n\
         repaired marginals, leaving higher residual E — the paper's randomized split\n\
         is what makes regularized plans usable."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures.count as f64);
    write_results("ablation_randomization", &stats, &extra);
}
