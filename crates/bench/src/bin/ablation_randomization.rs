//! **Ablation A3** — the paper's randomized mass split (Section IV-B)
//! versus a deterministic barycentric-projection variant of Algorithm 2.
//!
//! Algorithm 2 draws the repaired state from the normalized plan row
//! (Equation 15), preserving the *distributional* shape of the repair.
//! The obvious deterministic alternative maps every archival point to its
//! row's conditional mean (the barycentric projection). Determinism
//! collapses each row's mass to a point, which distorts the repaired
//! marginal — this harness quantifies how much fairness that costs.
//!
//! Usage: `ablation_randomization [runs]` (default 20).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use otr_bench::{run_mc, runs_from_args, write_results};
use otr_core::{dataset_damage, RepairConfig, RepairPlan, RepairPlanner, SolverBackend};
use otr_data::{Dataset, LabelledPoint, SimulationSpec};
use otr_fairness::ConditionalDependence;

const N_RESEARCH: usize = 500;
const N_ARCHIVE: usize = 5_000;
const N_Q: usize = 50;

/// Deterministic Algorithm-2 variant: nearest grid cell (no Bernoulli),
/// then the row's barycentric projection (no multinomial).
fn repair_deterministic<R: Rng>(
    plan: &RepairPlan,
    data: &Dataset,
    _rng: &mut R,
) -> Result<Dataset, Box<dyn std::error::Error>> {
    let mut points = Vec::with_capacity(data.len());
    for p in data.points() {
        let mut x = Vec::with_capacity(p.x.len());
        for (k, &v) in p.x.iter().enumerate() {
            let fp = plan.feature_plan(p.u, k)?;
            let support = &fp.support;
            let n_q = support.len();
            let step = fp.step();
            let q = if v <= support[0] || step == 0.0 {
                0
            } else if v >= support[n_q - 1] {
                n_q - 1
            } else {
                (((v - support[0]) / step) + 0.5).floor() as usize
            }
            .min(n_q - 1);
            let projected = fp.plans[p.s as usize]
                .barycentric_projection(q, support)
                .unwrap_or(v);
            x.push(projected);
        }
        points.push(LabelledPoint { x, s: p.s, u: p.u });
    }
    Ok(Dataset::from_points(points)?)
}

fn main() {
    let runs = runs_from_args(20);
    eprintln!(
        "ablation_randomization: {runs} replicates (nR={N_RESEARCH}, nA={N_ARCHIVE}, nQ={N_Q})"
    );

    let spec = SimulationSpec::paper_defaults();
    let cd = ConditionalDependence::default();

    let (stats, failures) = run_mc(runs, 9_000, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(N_RESEARCH, N_ARCHIVE, &mut rng)?;
        let mut metrics = Vec::new();
        // Exact plans have near-degenerate rows; entropic plans have
        // blurred rows, where the deterministic point-collapse hurts.
        for (backend_name, solver) in [
            ("exact", SolverBackend::ExactMonotone),
            ("sinkhorn eps=0.5", SolverBackend::Sinkhorn { epsilon: 0.5 }),
        ] {
            let mut cfg = RepairConfig::with_n_q(N_Q);
            cfg.solver = solver;
            let plan = RepairPlanner::new(cfg).design(&split.research)?;
            let randomized = plan.repair_dataset(&split.archive, &mut rng)?;
            let deterministic = repair_deterministic(&plan, &split.archive, &mut rng)?;
            metrics.push((
                format!("E/randomized, {backend_name}"),
                cd.evaluate(&randomized)?.aggregate(),
            ));
            metrics.push((
                format!("E/deterministic, {backend_name}"),
                cd.evaluate(&deterministic)?.aggregate(),
            ));
            metrics.push((
                format!("rmse/randomized, {backend_name}"),
                dataset_damage(&split.archive, &randomized)?.mean_rmse(),
            ));
            metrics.push((
                format!("rmse/deterministic, {backend_name}"),
                dataset_damage(&split.archive, &deterministic)?.mean_rmse(),
            ));
        }
        Ok(metrics)
    });

    if failures > 0 {
        eprintln!("warning: {failures} replicates failed and were skipped");
    }

    println!("\nAblation A3 — randomized (Eq. 14-15) vs deterministic mass split, archival data");
    println!(
        "{:<30} {:>20} {:>20}",
        "variant", "E (residual)", "RMSE damage"
    );
    for variant in [
        "randomized, exact",
        "deterministic, exact",
        "randomized, sinkhorn eps=0.5",
        "deterministic, sinkhorn eps=0.5",
    ] {
        let g = |pfx: &str| {
            stats
                .get(&format!("{pfx}/{variant}"))
                .map(|w| format!("{:.4} ± {:.4}", w.mean(), w.sample_sd()))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:<30} {:>20} {:>20}", variant, g("E"), g("rmse"));
    }
    println!(
        "\nExpected shape: with exact (near-degenerate) plan rows the variants tie;\n\
         with entropic (blurred) rows the deterministic point-collapse distorts the\n\
         repaired marginals, leaving higher residual E — the paper's randomized split\n\
         is what makes regularized plans usable."
    );

    let mut extra = BTreeMap::new();
    extra.insert("runs".into(), runs as f64);
    extra.insert("failures".into(), failures as f64);
    write_results("ablation_randomization", &stats, &extra);
}
