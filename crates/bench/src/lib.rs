//! # otr-bench — experiment harnesses reproducing the paper's evaluation
//!
//! One binary per table/figure (see DESIGN.md §5):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table I — repair quality on the simulated Gaussian mixture |
//! | `fig3` | Figure 3 — `E` vs research-set size `nR` |
//! | `fig4` | Figure 4 — `E` vs support resolution `nQ` |
//! | `table2` | Table II — repair quality on the Adult(-like) data |
//! | `ablation_partial` | damage/fairness trade-off along `λ` (Sec. VI) |
//! | `ablation_sinkhorn` | exact vs entropic plans (Sec. IV-A1) |
//! | `ablation_randomization` | randomized vs deterministic mass split (Sec. IV-B) |
//! | `ablation_label_noise` | oracle vs EM-estimated `ŝ` labels (Sec. IV/VI) |
//!
//! Each binary accepts an optional first argument overriding the number of
//! Monte-Carlo replicates and writes a JSON result file alongside the
//! printed table (under `results/`).
//!
//! This library crate hosts the shared machinery: a deterministic
//! parallel Monte-Carlo runner (built on `otr-par`'s chunked executor)
//! with per-run seeding, in-order Welford merging, and first-failure
//! diagnostics, plus paper-style table formatting.
//!
//! ## Example
//!
//! Run a deterministic Monte-Carlo sweep: replicate `i` is always
//! seeded `base_seed + i`, so the merged statistics are independent of
//! the thread count:
//!
//! ```
//! let (stats, failures) = otr_bench::run_mc(16, 42, |seed| {
//!     Ok(vec![("seed_mod_3".to_string(), (seed % 3) as f64)])
//! });
//! assert_eq!(failures.count, 0);
//! assert_eq!(stats["seed_mod_3"].count(), 16);
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

use otr_stats::Welford;

/// A named collection of Monte-Carlo statistics.
pub type McStats = BTreeMap<String, Welford>;

/// Failure accounting of a Monte-Carlo sweep: how many replicates
/// errored, and what the lowest-seeded one said (so a 200-run sweep that
/// silently skipped half its replicates is diagnosable from the table
/// footer alone).
#[derive(Debug, Clone, Default)]
pub struct McFailures {
    /// Replicates that returned an error and were skipped.
    pub count: usize,
    /// Error message of the lowest-index failing replicate.
    pub first_error: Option<String>,
}

impl McFailures {
    /// Print the standard table-footer warning if any replicate failed.
    pub fn warn_if_any(&self) {
        if self.count == 0 {
            return;
        }
        match &self.first_error {
            Some(e) => eprintln!(
                "warning: {} replicates failed and were skipped (first error: {e})",
                self.count
            ),
            None => eprintln!("warning: {} replicates failed and were skipped", self.count),
        }
    }
}

/// Run `runs` Monte-Carlo replicates of `f` in parallel, seeding replicate
/// `i` with `base_seed + i`, and merge the per-replicate named metrics
/// exactly (Welford parallel combine, in replicate order).
///
/// `f` returns `(name, value)` pairs; replicates that return an error are
/// counted and skipped (failure injection must not kill a 200-run sweep),
/// with the first error message recorded in the returned [`McFailures`].
///
/// Thread count is auto (`OTR_THREADS` env or available parallelism);
/// use [`run_mc_threaded`] for an explicit count. Replicate seeds — and
/// therefore every per-replicate metric — do not depend on the thread
/// count.
pub fn run_mc<F>(runs: usize, base_seed: u64, f: F) -> (McStats, McFailures)
where
    F: Fn(u64) -> Result<Vec<(String, f64)>, Box<dyn std::error::Error>> + Sync,
{
    run_mc_threaded(runs, base_seed, 0, f)
}

/// [`run_mc`] with an explicit worker-thread count (`0` = auto).
pub fn run_mc_threaded<F>(
    runs: usize,
    base_seed: u64,
    threads: usize,
    f: F,
) -> (McStats, McFailures)
where
    F: Fn(u64) -> Result<Vec<(String, f64)>, Box<dyn std::error::Error>> + Sync,
{
    let indices: Vec<u64> = (0..runs as u64).collect();
    // One (stats, failures, first_error) accumulator per contiguous
    // chunk of replicates; chunk results come back in replicate order,
    // so the merge below is deterministic and the first recorded error
    // is the lowest-index failure regardless of thread count.
    let chunks = otr_par::par_chunks(&indices, threads, |_, chunk| {
        let mut local: McStats = BTreeMap::new();
        let mut failures = 0usize;
        let mut first_error: Option<String> = None;
        for &i in chunk {
            match f(base_seed + i) {
                Ok(metrics) => {
                    for (name, value) in metrics {
                        local.entry(name).or_default().push(value);
                    }
                }
                Err(e) => {
                    failures += 1;
                    if first_error.is_none() {
                        first_error = Some(format!("replicate {i} (seed {}): {e}", base_seed + i));
                    }
                }
            }
        }
        (local, failures, first_error)
    });

    let mut stats: McStats = BTreeMap::new();
    let mut failures = McFailures::default();
    for (local, count, first_error) in chunks {
        for (name, w) in local {
            stats.entry(name).or_default().merge(&w);
        }
        failures.count += count;
        if failures.first_error.is_none() {
            failures.first_error = first_error;
        }
    }
    (stats, failures)
}

/// Format `mean ± sd` with sensible precision.
pub fn fmt_pm(w: &Welford) -> String {
    format!("{:.4} ± {:.4}", w.mean(), w.sample_sd())
}

/// Render a paper-style table: rows × columns of `mean ± sd` cells pulled
/// from `stats` by key `"{row}/{col}"`. Missing cells render as `-`
/// (e.g. the geometric repair has no archive column, exactly as in the
/// paper's tables).
pub fn render_table(
    title: &str,
    row_names: &[&str],
    col_names: &[&str],
    stats: &McStats,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = 22usize;
    out.push_str(&format!("{:<28}", "Repair"));
    for c in col_names {
        out.push_str(&format!("{c:<width$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(28 + width * col_names.len()));
    out.push('\n');
    for r in row_names {
        out.push_str(&format!("{r:<28}"));
        for c in col_names {
            let key = format!("{r}/{c}");
            match stats.get(&key) {
                Some(w) if w.count() > 0 => out.push_str(&format!("{:<width$}", fmt_pm(w))),
                _ => out.push_str(&format!("{:<width$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Serializable snapshot of one metric.
#[derive(Debug, Serialize)]
pub struct MetricSnapshot {
    /// Metric name (`row/col` convention).
    pub name: String,
    /// Replicates aggregated.
    pub count: u64,
    /// Mean over replicates.
    pub mean: f64,
    /// Sample SD over replicates.
    pub sd: f64,
}

/// Write the full stats map as JSON under `results/<name>.json` (creating
/// the directory), so EXPERIMENTS.md can cite machine-readable numbers.
pub fn write_results(name: &str, stats: &McStats, extra: &BTreeMap<String, f64>) {
    let snapshots: Vec<MetricSnapshot> = stats
        .iter()
        .map(|(k, w)| MetricSnapshot {
            name: k.clone(),
            count: w.count(),
            mean: w.mean(),
            sd: w.sample_sd(),
        })
        .collect();
    #[derive(Serialize)]
    struct FileOut {
        experiment: String,
        metrics: Vec<MetricSnapshot>,
        extra: BTreeMap<String, f64>,
    }
    let out = FileOut {
        experiment: name.to_string(),
        metrics: snapshots,
        extra: extra.clone(),
    };
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // results are advisory; never fail the experiment
    }
    if let Ok(json) = serde_json::to_string_pretty(&out) {
        if let Ok(mut file) = std::fs::File::create(dir.join(format!("{name}.json"))) {
            let _ = file.write_all(json.as_bytes());
        }
    }
}

/// Parse the optional `runs` CLI argument with a default.
pub fn runs_from_args(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Parse the optional `--threads N` CLI flag shared by every experiment
/// binary (`0` / absent = auto: `OTR_THREADS` env or available
/// parallelism).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_mc_aggregates_all_runs() {
        let (stats, failures) = run_mc(100, 0, |seed| Ok(vec![("x".into(), seed as f64)]));
        assert_eq!(failures.count, 0);
        assert!(failures.first_error.is_none());
        let w = &stats["x"];
        assert_eq!(w.count(), 100);
        assert!((w.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn run_mc_counts_failures_without_dying() {
        let (stats, failures) = run_mc(50, 0, |seed| {
            if seed % 5 == 0 {
                Err(format!("injected at {seed}").into())
            } else {
                Ok(vec![("ok".into(), 1.0)])
            }
        });
        assert_eq!(failures.count, 10);
        assert_eq!(stats["ok"].count(), 40);
        // The recorded message is the lowest-index failure, whatever the
        // thread count.
        let msg = failures.first_error.unwrap();
        assert!(msg.contains("injected at 0"), "got: {msg}");
    }

    #[test]
    fn run_mc_deterministic_irrespective_of_threads() {
        let mut reference: Option<McStats> = None;
        for threads in [1usize, 2, 7] {
            let (stats, failures) = run_mc_threaded(64, 7, threads, |seed| {
                Ok(vec![("v".into(), (seed * seed) as f64)])
            });
            assert_eq!(failures.count, 0);
            match &reference {
                None => reference = Some(stats),
                Some(r) => {
                    assert_eq!(stats["v"].count(), r["v"].count());
                    assert!((stats["v"].mean() - r["v"].mean()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn run_mc_first_error_is_lowest_index_for_any_thread_count() {
        for threads in [1usize, 2, 7] {
            let (_, failures) = run_mc_threaded(40, 100, threads, |seed| {
                if seed >= 117 {
                    Err(format!("boom {seed}").into())
                } else {
                    Ok(vec![("ok".into(), 1.0)])
                }
            });
            assert_eq!(failures.count, 23);
            assert!(
                failures
                    .first_error
                    .as_deref()
                    .unwrap()
                    .contains("boom 117"),
                "threads = {threads}: {:?}",
                failures.first_error
            );
        }
    }

    #[test]
    fn render_table_marks_missing_cells() {
        let mut stats = McStats::new();
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        stats.insert("A/c1".into(), w);
        let table = render_table("T", &["A", "B"], &["c1"], &stats);
        assert!(table.contains("1.5000"));
        assert!(table.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn fmt_pm_shape() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(3.0);
        assert_eq!(fmt_pm(&w), "2.0000 ± 1.4142");
    }
}
