//! Histograms and empirical pmfs on uniform grids.
//!
//! Used to bin repaired archival data back onto the interpolated support
//! when estimating post-repair divergences, and as a non-smoothed
//! alternative to KDE in ablation experiments.

use crate::error::{Result, StatsError};

/// A histogram over `[lo, hi)` with `bins` equal-width bins.
///
/// Mass falling exactly on `hi` is assigned to the last bin; mass outside
/// the range is clamped into the boundary bins (count-preserving, matching
/// the paper's treatment of archival points outside the research range).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Errors
    /// Requires `lo < hi` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lo/hi",
                reason: format!("require finite lo < hi, got [{lo}, {hi})"),
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                reason: "must be at least 1".into(),
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Create an empty histogram whose bins are centred on a uniform
    /// grid: bin `i` covers `[grid[i] - step/2, grid[i] + step/2)`.
    ///
    /// Used by the drift monitor to bin archival observations onto the
    /// same support a repair plan recorded its research marginals on, so
    /// the two pmfs are directly comparable state by state.
    ///
    /// # Errors
    /// Requires at least two strictly increasing, uniformly spaced
    /// finite grid points.
    pub fn centred_on_grid(grid: &[f64]) -> Result<Self> {
        if grid.len() < 2 {
            return Err(StatsError::InvalidParameter {
                name: "grid",
                reason: format!("need at least 2 points, got {}", grid.len()),
            });
        }
        let step = (grid[grid.len() - 1] - grid[0]) / (grid.len() - 1) as f64;
        if !(step > 0.0) || !step.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "grid",
                reason: format!("grid must be increasing and finite, step = {step}"),
            });
        }
        Self::new(
            grid[0] - step / 2.0,
            grid[grid.len() - 1] + step / 2.0,
            grid.len(),
        )
    }

    /// Build a histogram directly from data.
    ///
    /// # Errors
    /// Same as [`Histogram::new`].
    pub fn from_data(lo: f64, hi: f64, bins: usize, data: &[f64]) -> Result<Self> {
        let mut h = Self::new(lo, hi, bins)?;
        for &x in data {
            h.push(x);
        }
        Ok(h)
    }

    /// Bin index for a value (clamped into range).
    #[inline]
    pub fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return bins - 1;
        }
        let f = (x - self.lo) / (self.hi - self.lo);
        ((f * bins as f64) as usize).min(bins - 1)
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin centres.
    pub fn centres(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Normalized probability masses (empty histogram yields all zeros).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Density values (pmf divided by bin width).
    pub fn density(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.pmf().into_iter().map(|p| p / w).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NEG_INFINITY, 1.0, 3).is_err());
    }

    #[test]
    fn binning_is_uniform() {
        let h = Histogram::from_data(0.0, 1.0, 4, &[0.1, 0.3, 0.6, 0.9]).unwrap();
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = Histogram::from_data(0.0, 1.0, 2, &[-5.0, 7.0, 1.0]).unwrap();
        // -5 -> bin 0; 7 and 1.0 (== hi) -> last bin.
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn pmf_sums_to_one() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_data(0.0, 1.0, 7, &data).unwrap();
        let s: f64 = h.pmf().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_pmf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.pmf(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn centres_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.centres(), vec![0.25, 0.75]);
    }

    #[test]
    fn grid_centred_bins_recover_the_grid() {
        let grid = vec![-1.0, 0.0, 1.0, 2.0];
        let h = Histogram::centred_on_grid(&grid).unwrap();
        assert_eq!(h.bins(), 4);
        for (c, g) in h.centres().iter().zip(&grid) {
            assert!((c - g).abs() < 1e-12, "centre {c} vs grid {g}");
        }
        // Each grid point falls into its own bin.
        for (i, &g) in grid.iter().enumerate() {
            assert_eq!(h.bin_of(g), i);
        }
        assert!(Histogram::centred_on_grid(&[1.0]).is_err());
        assert!(Histogram::centred_on_grid(&[1.0, 1.0]).is_err());
        assert!(Histogram::centred_on_grid(&[2.0, 1.0]).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0) * 3.0 - 1.0).collect();
        let h = Histogram::from_data(-1.0, 2.0, 10, &data).unwrap();
        let w = 3.0 / 10.0;
        let total: f64 = h.density().iter().map(|d| d * w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
