//! Quantile machinery: empirical sample quantiles and quantile functions of
//! discrete pmfs on ordered supports.
//!
//! The 1-D Wasserstein-2 barycentre of the repair target (Equation 7 of the
//! paper) is computed in `otr-ot` by *quantile interpolation*:
//! `F_ν⁻¹ = (1−t)·F₀⁻¹ + t·F₁⁻¹`. The pmf quantile function here is its
//! foundation.

use crate::error::{Result, StatsError};

/// Type-7 (linear interpolation) empirical quantile of a sample.
///
/// # Errors
/// Returns an error for an empty sample, non-finite data, or `p ∉ [0,1]`.
pub fn empirical_quantile(sample: &[f64], p: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(StatsError::EmptyInput("quantile sample"));
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "p",
            reason: format!("must be in [0,1], got {p}"),
        });
    }
    if sample.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "sample",
            reason: "contains non-finite values".into(),
        });
    }
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let idx = p * (v.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    Ok(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// The (generalized-inverse) quantile function of a pmf on an ordered
/// support, with linear interpolation *within* the CDF steps so that the
/// returned curve is continuous — the form needed for Wasserstein
/// geodesics between discretized continuous distributions.
///
/// Returns a closure mapping `p ∈ [0, 1]` to a point in the convex hull of
/// `support`.
///
/// # Errors
/// Requires equal non-zero lengths, a strictly increasing support, and a
/// valid probability vector.
pub fn pmf_quantile_fn(support: &[f64], pmf: &[f64]) -> Result<impl Fn(f64) -> f64> {
    if support.is_empty() {
        return Err(StatsError::EmptyInput("support"));
    }
    if support.len() != pmf.len() {
        return Err(StatsError::LengthMismatch {
            what: "support vs pmf",
            left: support.len(),
            right: pmf.len(),
        });
    }
    for w in support.windows(2) {
        if !(w[0] < w[1]) {
            return Err(StatsError::InvalidParameter {
                name: "support",
                reason: "must be strictly increasing".into(),
            });
        }
    }
    let total: f64 = pmf.iter().sum();
    if pmf.iter().any(|&p| p < 0.0 || p.is_nan()) || total <= 0.0 {
        return Err(StatsError::InvalidProbabilities(format!(
            "pmf invalid (total {total})"
        )));
    }

    // Cumulative masses, normalized. cdf[i] = P(X <= support[i]).
    let mut cdf = Vec::with_capacity(pmf.len());
    let mut acc = 0.0;
    for &p in pmf {
        acc += p / total;
        cdf.push(acc);
    }
    // Guard against round-off.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    let support = support.to_vec();

    Ok(move |p: f64| -> f64 {
        let p = p.clamp(0.0, 1.0);
        // Find first index with cdf[i] >= p.
        let mut lo = 0usize;
        let mut hi = cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cdf[mid] < p {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let i = lo;
        // Interpolate linearly between the previous grid point and this one
        // proportionally to the mass consumed inside step i.
        let (c_prev, x_prev) = if i == 0 {
            (0.0, support[0])
        } else {
            (cdf[i - 1], support[i - 1])
        };
        let step = cdf[i] - c_prev;
        if step <= 0.0 {
            return support[i];
        }
        let frac = ((p - c_prev) / step).clamp(0.0, 1.0);
        x_prev + frac * (support[i] - x_prev)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_quantile_basics() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(empirical_quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(empirical_quantile(&v, 1.0).unwrap(), 3.0);
        assert_eq!(empirical_quantile(&v, 0.5).unwrap(), 2.0);
        // Interpolated.
        assert!((empirical_quantile(&v, 0.25).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_quantile_rejects_bad_input() {
        assert!(empirical_quantile(&[], 0.5).is_err());
        assert!(empirical_quantile(&[1.0], -0.1).is_err());
        assert!(empirical_quantile(&[1.0], 1.5).is_err());
        assert!(empirical_quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn pmf_quantile_point_mass() {
        let q = pmf_quantile_fn(&[0.0, 1.0, 2.0], &[0.0, 1.0, 0.0]).unwrap();
        // All mass on the middle point; quantiles interpolate from the
        // previous grid point up to it across the single step.
        assert!((q(1.0) - 1.0).abs() < 1e-12);
        assert!(q(0.5) <= 1.0);
    }

    #[test]
    fn pmf_quantile_uniform_is_linearish() {
        let support: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let pmf = vec![1.0 / 11.0; 11];
        let q = pmf_quantile_fn(&support, &pmf).unwrap();
        assert!(q(0.0) <= q(0.25));
        assert!(q(0.25) <= q(0.5));
        assert!(q(0.5) <= q(0.75));
        assert!(q(1.0) == 10.0);
        // Median of a uniform on [0,10] grid ≈ 5 (within one grid step).
        assert!((q(0.5) - 5.0).abs() <= 1.0);
    }

    #[test]
    fn pmf_quantile_monotone() {
        let support = [0.0, 0.5, 1.5, 2.0, 4.0];
        let pmf = [0.1, 0.4, 0.0, 0.3, 0.2];
        let q = pmf_quantile_fn(&support, &pmf).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let v = q(p);
            assert!(v >= prev - 1e-12, "non-monotone at p = {p}");
            prev = v;
        }
    }

    #[test]
    fn pmf_quantile_rejects_invalid() {
        assert!(pmf_quantile_fn(&[], &[]).is_err());
        assert!(pmf_quantile_fn(&[1.0, 0.5], &[0.5, 0.5]).is_err()); // not increasing
        assert!(pmf_quantile_fn(&[0.0, 1.0], &[0.5]).is_err()); // length mismatch
        assert!(pmf_quantile_fn(&[0.0, 1.0], &[-0.5, 1.5]).is_err()); // negative
        assert!(pmf_quantile_fn(&[0.0, 1.0], &[0.0, 0.0]).is_err()); // zero mass
    }

    #[test]
    fn pmf_quantile_unnormalized_input_ok() {
        // Weights normalize internally.
        let q1 = pmf_quantile_fn(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        let q2 = pmf_quantile_fn(&[0.0, 1.0], &[0.25, 0.75]).unwrap();
        for p in [0.1, 0.5, 0.9] {
            assert!((q1(p) - q2(p)).abs() < 1e-12);
        }
    }
}
