//! Error type shared by all statistical routines in this crate.

use std::fmt;

/// Errors produced by the statistical substrate.
///
/// Every fallible constructor or estimator in `otr-stats` returns this enum;
/// the crate never panics on invalid user input.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was outside its valid domain (e.g. a non-positive
    /// standard deviation). Carries the parameter name and the offending
    /// value rendered as text.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An input slice was empty where at least one element is required.
    EmptyInput(&'static str),
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Context of the mismatch.
        what: &'static str,
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A matrix operation failed (non-square, not positive definite, ...).
    Linalg(String),
    /// An iterative algorithm failed to converge within its budget.
    NoConvergence {
        /// Algorithm name.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A probability vector was invalid (negative mass or zero total).
    InvalidProbabilities(String),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
            StatsError::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch in {what}: {left} vs {right}")
            }
            StatsError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
            StatsError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            StatsError::InvalidProbabilities(msg) => write!(f, "invalid probabilities: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            name: "sigma",
            reason: "must be positive, got -1".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid parameter `sigma`: must be positive, got -1"
        );
    }

    #[test]
    fn display_length_mismatch() {
        let e = StatsError::LengthMismatch {
            what: "weights vs support",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("3 vs 4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StatsError::EmptyInput("sample"));
        assert!(e.to_string().contains("sample"));
    }
}
