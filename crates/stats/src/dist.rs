//! Probability distributions: sampling, densities, CDFs and quantiles.
//!
//! Everything is generic over [`rand::Rng`] so experiments stay
//! reproducible from explicit seeds. Sampling uses textbook methods:
//! Marsaglia's polar method for the Gaussian, inverse-CDF for the
//! truncated Gaussian, Cholesky-factor colouring for the multivariate
//! Gaussian, and the Walker/Vose alias table for `O(1)` categorical
//! draws (the hot path of Algorithm 2's multinomial repair draws).

use rand::{Rng, RngCore};

use crate::error::{Result, StatsError};
use crate::linalg::Matrix;
use crate::special::{inverse_normal_cdf, normal_cdf, normal_pdf};

/// A univariate continuous distribution.
pub trait ContinuousDistribution {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` samples.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) at `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;
}

// ---------------------------------------------------------------------------
// Gaussian
// ---------------------------------------------------------------------------

/// The Gaussian distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// A Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    /// Requires finite `mean` and positive finite `sd`.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                reason: format!("must be finite, got {mean}"),
            });
        }
        if !(sd > 0.0) || !sd.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sd",
                reason: format!("must be positive and finite, got {sd}"),
            });
        }
        Ok(Self { mean, sd })
    }

    /// The standard Gaussian `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

/// One standard-normal variate via Marsaglia's polar method.
pub(crate) fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl ContinuousDistribution for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mean) / self.sd)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * inverse_normal_cdf(p)
    }
}

// ---------------------------------------------------------------------------
// Truncated Gaussian
// ---------------------------------------------------------------------------

/// A Gaussian restricted (and renormalized) to `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    base: Normal,
    lo: f64,
    hi: f64,
    cdf_lo: f64,
    cdf_hi: f64,
}

impl TruncatedNormal {
    /// A Gaussian `N(mean, sd²)` truncated to `[lo, hi]`.
    ///
    /// # Errors
    /// Requires a valid base Gaussian, `lo < hi`, and a truncation window
    /// carrying strictly positive mass.
    pub fn new(mean: f64, sd: f64, lo: f64, hi: f64) -> Result<Self> {
        let base = Normal::new(mean, sd)?;
        if !(lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "truncation bounds",
                reason: format!("need lo < hi, got [{lo}, {hi}]"),
            });
        }
        let cdf_lo = base.cdf(lo);
        let cdf_hi = base.cdf(hi);
        if !(cdf_hi - cdf_lo > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "truncation bounds",
                reason: format!("window [{lo}, {hi}] carries no mass under N({mean}, {sd}²)"),
            });
        }
        Ok(Self {
            base,
            lo,
            hi,
            cdf_lo,
            cdf_hi,
        })
    }
}

impl ContinuousDistribution for TruncatedNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling on the truncated window; exact and cheap
        // at the mild truncations the data generators use.
        let u = self.cdf_lo + (self.cdf_hi - self.cdf_lo) * rng.gen::<f64>();
        self.base
            .quantile(u.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON))
            .clamp(self.lo, self.hi)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.base.pdf(x) / (self.cdf_hi - self.cdf_lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (self.base.cdf(x) - self.cdf_lo) / (self.cdf_hi - self.cdf_lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        let u = self.cdf_lo + (self.cdf_hi - self.cdf_lo) * p.clamp(0.0, 1.0);
        self.base.quantile(u).clamp(self.lo, self.hi)
    }
}

// ---------------------------------------------------------------------------
// Log-normal
// ---------------------------------------------------------------------------

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_scale: Normal,
}

impl LogNormal {
    /// A log-normal whose logarithm is `N(mu, sigma²)`.
    ///
    /// # Errors
    /// Same domain as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self {
            log_scale: Normal::new(mu, sigma)?,
        })
    }
}

impl ContinuousDistribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.log_scale.sample(rng).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.log_scale.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.log_scale.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.log_scale.quantile(p).exp()
    }
}

// ---------------------------------------------------------------------------
// Finite 1-D Gaussian mixtures
// ---------------------------------------------------------------------------

/// A finite mixture of Gaussians on the real line.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture1d {
    weights: Vec<f64>,
    components: Vec<Normal>,
    picker: Categorical,
}

impl Mixture1d {
    /// A mixture from `(weight, component)` pairs; weights are
    /// normalized.
    ///
    /// # Errors
    /// Requires at least one component and valid (non-negative, positive
    /// total) weights.
    pub fn new(parts: Vec<(f64, Normal)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(StatsError::EmptyInput("mixture components"));
        }
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let picker = Categorical::new(&weights)?;
        let components = parts.into_iter().map(|(_, c)| c).collect();
        Ok(Self {
            weights: picker.probs().to_vec(),
            components,
            picker,
        })
    }
}

impl ContinuousDistribution for Mixture1d {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.picker.sample(rng);
        self.components[k].sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        // No closed form: bisect the monotone CDF.
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        let (mut lo, mut hi) = self
            .components
            .iter()
            .map(|c| (c.quantile(1e-9), c.quantile(1.0 - 1e-9)))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), (l, h)| {
                (a.min(l), b.max(h))
            });
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

// ---------------------------------------------------------------------------
// Bernoulli
// ---------------------------------------------------------------------------

/// A Bernoulli trial returning `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// A Bernoulli with success probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p",
                reason: format!("must be in [0,1], got {p}"),
            });
        }
        Ok(Self { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

// ---------------------------------------------------------------------------
// Categorical (alias method)
// ---------------------------------------------------------------------------

/// A categorical distribution over `{0, …, k−1}` with `O(1)` sampling via
/// the Walker/Vose alias table.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    probs: Vec<f64>,
    // Alias table: per cell, the acceptance threshold and the alias index.
    threshold: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// A categorical from non-negative weights (normalized internally).
    ///
    /// # Errors
    /// Requires a non-empty weight vector with finite, non-negative
    /// entries and strictly positive total mass.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput("categorical weights"));
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if w < 0.0 || !w.is_finite() {
                return Err(StatsError::InvalidProbabilities(format!(
                    "weight[{i}] = {w} is negative or non-finite"
                )));
            }
            total += w;
        }
        if !(total > 0.0) {
            return Err(StatsError::InvalidProbabilities(format!(
                "total weight {total} is not positive"
            )));
        }
        let k = weights.len();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Vose's stable alias-table construction.
        let mut threshold = vec![0.0f64; k];
        let mut alias = vec![0usize; k];
        let mut scaled: Vec<f64> = probs.iter().map(|p| p * k as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            threshold[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(&large) {
            threshold[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self {
            probs,
            threshold,
            alias,
        })
    }

    /// The normalized probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there is exactly one category (`len` is never 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one category index in `O(1)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.probs.len();
        let cell = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.threshold[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }
}

// ---------------------------------------------------------------------------
// Multinomial
// ---------------------------------------------------------------------------

/// A multinomial: `trials` independent categorical draws, reported as
/// per-category counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Multinomial {
    trials: u64,
    categorical: Categorical,
}

impl Multinomial {
    /// A multinomial over the given weights.
    ///
    /// # Errors
    /// Same weight domain as [`Categorical::new`].
    pub fn new(trials: u64, weights: &[f64]) -> Result<Self> {
        Ok(Self {
            trials,
            categorical: Categorical::new(weights)?,
        })
    }

    /// Draw one count vector (sums to `trials`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let mut counts = vec![0u64; self.categorical.len()];
        for _ in 0..self.trials {
            counts[self.categorical.sample(rng)] += 1;
        }
        counts
    }
}

// ---------------------------------------------------------------------------
// Multivariate Gaussian
// ---------------------------------------------------------------------------

/// A multivariate Gaussian `N(mean, Σ)`, sampled by colouring standard
/// normals with the Cholesky factor of `Σ`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: Matrix,
}

impl MultivariateNormal {
    /// A multivariate Gaussian with the given mean and covariance.
    ///
    /// # Errors
    /// Requires a square, symmetric-positive-definite covariance whose
    /// dimension matches the mean.
    pub fn new(mean: Vec<f64>, cov: Matrix) -> Result<Self> {
        if mean.is_empty() {
            return Err(StatsError::EmptyInput("multivariate normal mean"));
        }
        if cov.rows() != mean.len() || cov.cols() != mean.len() {
            return Err(StatsError::LengthMismatch {
                what: "mean vs covariance",
                left: mean.len(),
                right: cov.rows(),
            });
        }
        let chol = cov.cholesky()?;
        Ok(Self { mean, chol })
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draw one vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.mean.len();
        let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        let mut x = self.mean.clone();
        for i in 0..d {
            for j in 0..=i {
                x[i] += self.chol.get(i, j) * z[j];
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_cdf_quantile_roundtrip() {
        let dist = Normal::new(-1.0, 0.5).unwrap();
        for p in [0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = dist.quantile(p);
            assert!((dist.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
        // pdf integrates to ~1 on a wide grid.
        let total: f64 = (0..4000)
            .map(|i| dist.pdf(-6.0 + 10.0 * i as f64 / 3999.0) * (10.0 / 3999.0))
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = TruncatedNormal::new(40.0, 10.0, 20.0, 65.0).unwrap();
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((20.0..=65.0).contains(&x), "{x}");
        }
        assert_eq!(dist.cdf(10.0), 0.0);
        assert_eq!(dist.cdf(70.0), 1.0);
        let q = dist.quantile(0.5);
        assert!((dist.cdf(q) - 0.5).abs() < 1e-9);
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
        // A window far in the tail has no computable mass.
        assert!(TruncatedNormal::new(0.0, 1.0, 300.0, 301.0).is_err());
    }

    #[test]
    fn lognormal_is_exp_of_normal() {
        let dist = LogNormal::new(0.3, 0.8).unwrap();
        let base = Normal::new(0.3, 0.8).unwrap();
        assert!((dist.quantile(0.7) - base.quantile(0.7).exp()).abs() < 1e-12);
        assert!((dist.cdf(2.0) - base.cdf(2.0f64.ln())).abs() < 1e-12);
        assert_eq!(dist.pdf(-1.0), 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(dist.sample(&mut rng) > 0.0);
    }

    #[test]
    fn categorical_alias_matches_pmf() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [0.5, 0.0, 1.5, 2.0];
        let cat = Categorical::new(&weights).unwrap();
        assert_eq!(cat.probs().len(), 4);
        assert!((cat.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[cat.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-mass category must never be drawn");
        for (i, &c) in counts.iter().enumerate() {
            let have = c as f64 / n as f64;
            assert!((have - cat.probs()[i]).abs() < 0.01, "category {i}: {have}");
        }
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[-0.1, 1.0]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Bernoulli::new(0.3).unwrap();
        let hits = (0..50_000).filter(|_| b.sample(&mut rng)).count();
        let have = hits as f64 / 50_000.0;
        assert!((have - 0.3).abs() < 0.01, "{have}");
        assert!(Bernoulli::new(1.2).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(!Bernoulli::new(0.0).unwrap().sample(&mut rng));
        assert!(Bernoulli::new(1.0).unwrap().sample(&mut rng));
    }

    #[test]
    fn multinomial_counts_sum_to_trials() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Multinomial::new(1_000, &[0.2, 0.3, 0.5]).unwrap();
        let counts = m.sample(&mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn multivariate_normal_reproduces_covariance() {
        let mut rng = StdRng::seed_from_u64(7);
        let cov = Matrix::from_rows(2, 2, vec![1.0, 0.6, 0.6, 1.0]).unwrap();
        let mvn = MultivariateNormal::new(vec![1.0, -1.0], cov).unwrap();
        assert_eq!(mvn.dim(), 2);
        let n = 100_000;
        let (mut mx, mut my, mut sxy, mut sxx) = (0.0, 0.0, 0.0, 0.0);
        let samples: Vec<Vec<f64>> = (0..n).map(|_| mvn.sample(&mut rng)).collect();
        for s in &samples {
            mx += s[0];
            my += s[1];
        }
        mx /= n as f64;
        my /= n as f64;
        for s in &samples {
            sxy += (s[0] - mx) * (s[1] - my);
            sxx += (s[0] - mx) * (s[0] - mx);
        }
        sxy /= n as f64;
        sxx /= n as f64;
        assert!((mx - 1.0).abs() < 0.02, "mx {mx}");
        assert!((my + 1.0).abs() < 0.02, "my {my}");
        assert!((sxx - 1.0).abs() < 0.03, "sxx {sxx}");
        assert!((sxy - 0.6).abs() < 0.03, "sxy {sxy}");
        // Dimension mismatch and non-PD covariances are rejected.
        let bad = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(MultivariateNormal::new(vec![0.0, 0.0], bad).is_err());
        let cov3 = Matrix::identity(3);
        assert!(MultivariateNormal::new(vec![0.0, 0.0], cov3).is_err());
    }

    #[test]
    fn mixture_interpolates_components() {
        let parts = vec![
            (0.25, Normal::new(-3.0, 0.5).unwrap()),
            (0.75, Normal::new(3.0, 0.5).unwrap()),
        ];
        let mix = Mixture1d::new(parts).unwrap();
        assert!((mix.cdf(0.0) - 0.25).abs() < 1e-6);
        let q = mix.quantile(0.25);
        assert!((mix.cdf(q) - 0.25).abs() < 1e-6, "q = {q}");
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let right = (0..n).filter(|_| mix.sample(&mut rng) > 0.0).count();
        let have = right as f64 / n as f64;
        assert!((have - 0.75).abs() < 0.02, "{have}");
        assert!(Mixture1d::new(vec![]).is_err());
    }
}
