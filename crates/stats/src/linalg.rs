//! Small dense linear algebra: the `Matrix` type, Cholesky factorization,
//! and triangular solves.
//!
//! The fairness-repair pipeline only ever manipulates small matrices — the
//! `d × d` covariance of the simulated mixture components (`d = 2` in the
//! paper) and the `nQ × nQ` OT cost matrices live in `otr-ot` — so this is a
//! deliberately simple row-major implementation with bounds-checked
//! accessors and no BLAS ambitions.

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`StatsError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatsError::LengthMismatch {
                what: "matrix data vs dimensions",
                left: data.len(),
                right: rows * cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// The `n × n` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    /// Returns [`StatsError::LengthMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(StatsError::LengthMismatch {
                what: "matvec",
                left: self.cols,
                right: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    /// Returns [`StatsError::LengthMismatch`] on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::LengthMismatch {
                what: "matmul inner dimension",
                left: self.cols,
                right: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor `L`.
    ///
    /// # Errors
    /// Returns [`StatsError::Linalg`] if the matrix is not square or not
    /// positive definite (within a small tolerance).
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::Linalg(format!(
                "cholesky requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::Linalg(format!(
                            "matrix not positive definite at pivot {i} (value {sum})"
                        )));
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Errors
    /// Returns [`StatsError::Linalg`] on dimension mismatch or a zero pivot.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(StatsError::Linalg("solve_lower dimension mismatch".into()));
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.get(i, k) * y[k];
            }
            let piv = self.get(i, i);
            if piv == 0.0 {
                return Err(StatsError::Linalg(format!("zero pivot at row {i}")));
            }
            y[i] = sum / piv;
        }
        Ok(y)
    }

    /// Solve `Lᵀ x = y` for lower-triangular `L` (backward substitution on
    /// the transpose).
    ///
    /// # Errors
    /// Returns [`StatsError::Linalg`] on dimension mismatch or a zero pivot.
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || y.len() != n {
            return Err(StatsError::Linalg(
                "solve_lower_transpose dimension mismatch".into(),
            ));
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.get(k, i) * x[k];
            }
            let piv = self.get(i, i);
            if piv == 0.0 {
                return Err(StatsError::Linalg(format!("zero pivot at row {i}")));
            }
            x[i] = sum / piv;
        }
        Ok(x)
    }

    /// Solve the SPD system `A x = b` via Cholesky.
    ///
    /// # Errors
    /// Propagates factorization/solve failures.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        let l = self.cholesky()?;
        let y = l.solve_lower(b)?;
        l.solve_lower_transpose(&y)
    }

    /// Log-determinant of an SPD matrix via Cholesky:
    /// `log det A = 2 Σ log L_ii`.
    ///
    /// # Errors
    /// Propagates factorization failures.
    pub fn logdet_spd(&self) -> Result<f64> {
        let l = self.cholesky()?;
        let mut s = 0.0;
        for i in 0..self.rows {
            s += l.get(i, i).ln();
        }
        Ok(2.0 * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with distinct entries => SPD.
        Matrix::from_rows(3, 3, vec![4.0, 2.0, 0.6, 2.0, 3.0, 0.4, 0.6, 0.4, 2.0]).unwrap()
    }

    #[test]
    fn from_rows_rejects_bad_length() {
        assert!(matches!(
            Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((back.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(m.cholesky(), Err(StatsError::Linalg(_))));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(Matrix::zeros(2, 3).cholesky().is_err());
    }

    #[test]
    fn solve_spd_round_trip() {
        let a = spd3();
        let x_true = vec![1.0, -1.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn logdet_matches_direct_2x2() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.3, 0.3, 1.0]).unwrap();
        let det: f64 = 2.0 * 1.0 - 0.09;
        assert!((a.logdet_spd().unwrap() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }
}
