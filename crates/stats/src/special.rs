//! Special functions: `erf`/`erfc`, the standard-normal CDF `Φ`, its
//! density `φ`, and the inverse CDF `Φ⁻¹`.
//!
//! These are the numerical workhorses behind the Gaussian kernel of
//! Equation (12) in the paper, the truncated-normal sampler, and the
//! quantile machinery of the 1-D Wasserstein barycentre.
//!
//! Accuracy notes:
//! * `erf` uses the Abramowitz–Stegun 7.1.26-style rational approximation
//!   with maximum absolute error ≈ 1.5e-7, then — because several callers
//!   need more — we provide [`erf`] via a higher-order series/continued
//!   fraction combination accurate to ~1e-15.
//! * [`inverse_normal_cdf`] uses Acklam's rational approximation refined by
//!   one step of Halley's method, giving ~1e-15 relative accuracy over
//!   `(0, 1)`.

/// 1/sqrt(2π), the normalizing constant of the standard normal density.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// sqrt(2π).
pub const SQRT_2PI: f64 = 2.506_628_274_631_000_5;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Implemented with the Taylor series for small `|x|` and the continued
/// fraction for the complementary function at large `|x|`; accurate to
/// about 1e-15 everywhere.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    let ax = x.abs();
    let v = if ax < 2.0 {
        erf_series(ax)
    } else {
        1.0 - erfc_cf(ax)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the continued-fraction expansion for large arguments to avoid the
/// catastrophic cancellation of computing `1 - erf(x)` directly.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax < 2.0 {
        1.0 - erf_series(ax)
    } else {
        erfc_cf(ax)
    };
    if x < 0.0 {
        2.0 - v
    } else {
        v
    }
}

/// Maclaurin series for `erf` on `|x| < 2`; converges quickly there.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^{2n+1} / (n! (2n+1))
    const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 1u32;
    loop {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs() || n > 200 {
            break;
        }
        n += 1;
    }
    TWO_OVER_SQRT_PI * sum
}

/// Modified-Lentz continued fraction for `erfc` on `x >= 2`:
/// `√π e^{x²} erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))`,
/// i.e. partial numerators `a_k = k/2` over constant partial denominators `x`.
fn erfc_cf(x: f64) -> f64 {
    const SQRT_PI: f64 = 1.772_453_850_905_516;
    let tiny = 1e-300;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0f64;
    for k in 1..300 {
        let a = k as f64 / 2.0;
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (SQRT_PI * f)
}

/// Standard normal probability density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Returns `-∞` for `p == 0` and `+∞` for `p == 1`, `NaN` outside `[0,1]`.
/// Acklam's rational approximation followed by one Halley refinement step.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley iteration: x <- x - f/(f' - f f''/(2 f')) with
    // f = Phi(x) - p, f' = phi(x), f'' = -x phi(x).
    let e = normal_cdf(x) - p;
    let u = e * SQRT_2PI * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_9),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-13, "erf odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.5f64, -1.0, -0.2, 0.0, 0.3, 1.7, 2.5, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erfc_large_argument_no_cancellation() {
        // erfc(6) ~ 2.1519736712498913e-17; naive 1-erf would round to 0.
        let v = erfc(6.0);
        assert!(v > 0.0);
        assert!((v / 2.151_973_671_249_891e-17 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-13);
        assert!((normal_cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-12);
        assert!((normal_cdf(3.0) - 0.998_650_101_968_369_9).abs() < 1e-13);
    }

    #[test]
    fn inverse_normal_cdf_round_trip() {
        for p in [
            1e-10,
            1e-6,
            0.01,
            0.1,
            0.25,
            0.5,
            0.75,
            0.9,
            0.99,
            1.0 - 1e-6,
        ] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!(
                (back - p).abs() < 1e-12 * p.max(1e-3),
                "p = {p}, x = {x}, back = {back}"
            );
        }
    }

    #[test]
    fn inverse_normal_cdf_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-14);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-10);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-10);
    }

    #[test]
    fn inverse_normal_cdf_edge_cases() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_nan());
        assert!(inverse_normal_cdf(1.1).is_nan());
        assert!(inverse_normal_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn normal_pdf_normalizes() {
        // Trapezoidal integral of phi over [-8, 8] should be ~1.
        let n = 4001;
        let (a, b) = (-8.0, 8.0);
        let h = (b - a) / (n - 1) as f64;
        let mut s = 0.0;
        for i in 0..n {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == n - 1 { 0.5 } else { 1.0 };
            s += w * normal_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-10);
    }

    #[test]
    fn erf_nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
