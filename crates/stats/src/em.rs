//! Two-component univariate Gaussian-mixture EM.
//!
//! Section IV of the paper notes that archival data usually arrive without
//! the protected attribute `S`, and that each `u`-conditional mixture
//! `F(x|u) = Σ_s F(x|s,u) Pr[s|u]` must be identified "via standard
//! methods" so that `ŝ|u` labels can be estimated. This module is that
//! standard method: EM for a two-component Gaussian mixture, with
//! research-data-informed initialization so the component indices align
//! with the true `s` labels (the `ablation_label_noise` experiment measures
//! the repair degradation caused by using `ŝ` instead of oracle labels).

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};
use crate::special::normal_pdf;

/// Configuration for [`GaussianMixtureEm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the mean absolute log-likelihood change.
    pub tol: f64,
    /// Variance floor preventing component collapse.
    pub var_floor: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 500,
            tol: 1e-9,
            var_floor: 1e-6,
        }
    }
}

/// A fitted two-component Gaussian mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmFit {
    /// Mixing weight of component 0 (`Pr[s=0]`).
    pub weight0: f64,
    /// Component means.
    pub means: [f64; 2],
    /// Component standard deviations.
    pub sds: [f64; 2],
    /// Final mean log-likelihood.
    pub log_likelihood: f64,
    /// Iterations actually used.
    pub iterations: usize,
}

impl GmmFit {
    /// Posterior probability that `x` belongs to component 0.
    pub fn posterior0(&self, x: f64) -> f64 {
        let p0 = self.weight0 * normal_pdf((x - self.means[0]) / self.sds[0]) / self.sds[0];
        let p1 = (1.0 - self.weight0) * normal_pdf((x - self.means[1]) / self.sds[1]) / self.sds[1];
        if p0 + p1 <= 0.0 {
            // Point in the far tails of both components: fall back to the
            // nearer mean measured in component SDs.
            let z0 = ((x - self.means[0]) / self.sds[0]).abs();
            let z1 = ((x - self.means[1]) / self.sds[1]).abs();
            return if z0 <= z1 { 1.0 } else { 0.0 };
        }
        p0 / (p0 + p1)
    }

    /// Maximum-a-posteriori component label for `x` (0 or 1).
    pub fn classify(&self, x: f64) -> u8 {
        u8::from(self.posterior0(x) < 0.5)
    }
}

/// Two-component Gaussian-mixture EM estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianMixtureEm {
    config: EmConfig,
}

impl GaussianMixtureEm {
    /// Create with custom configuration.
    pub fn with_config(config: EmConfig) -> Self {
        Self { config }
    }

    /// Fit with explicit initial parameters `(weight0, means, sds)` —
    /// typically moments of the labelled research data, which anchors the
    /// component identities to the true `s` labels.
    ///
    /// # Errors
    /// Requires at least 2 observations, finite data, a weight in `(0,1)`,
    /// and positive initial SDs.
    pub fn fit_with_init(
        &self,
        data: &[f64],
        weight0: f64,
        means: [f64; 2],
        sds: [f64; 2],
    ) -> Result<GmmFit> {
        if data.len() < 2 {
            return Err(StatsError::EmptyInput("EM data (need >= 2 points)"));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "data",
                reason: "contains non-finite values".into(),
            });
        }
        if !(0.0 < weight0 && weight0 < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "weight0",
                reason: format!("must be in (0,1), got {weight0}"),
            });
        }
        if sds.iter().any(|&s| !(s > 0.0)) {
            return Err(StatsError::InvalidParameter {
                name: "sds",
                reason: "initial SDs must be positive".into(),
            });
        }

        let n = data.len() as f64;
        let mut w0 = weight0;
        let mut mu = means;
        let mut sd = sds;
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut resp0 = vec![0.0f64; data.len()];

        for iter in 0..self.config.max_iters {
            iterations = iter + 1;
            // E-step.
            let mut ll = 0.0;
            for (i, &x) in data.iter().enumerate() {
                let d0 = w0 * normal_pdf((x - mu[0]) / sd[0]) / sd[0];
                let d1 = (1.0 - w0) * normal_pdf((x - mu[1]) / sd[1]) / sd[1];
                let tot = (d0 + d1).max(1e-300);
                resp0[i] = d0 / tot;
                ll += tot.ln();
            }
            ll /= n;

            // M-step.
            let r0: f64 = resp0.iter().sum();
            let r1 = n - r0;
            // Keep weights off the boundary so a component cannot die.
            w0 = (r0 / n).clamp(1e-6, 1.0 - 1e-6);
            if r0 > 1e-12 {
                mu[0] = data.iter().zip(&resp0).map(|(x, r)| r * x).sum::<f64>() / r0;
                let v0 = data
                    .iter()
                    .zip(&resp0)
                    .map(|(x, r)| r * (x - mu[0]) * (x - mu[0]))
                    .sum::<f64>()
                    / r0;
                sd[0] = v0.max(self.config.var_floor).sqrt();
            }
            if r1 > 1e-12 {
                mu[1] = data
                    .iter()
                    .zip(&resp0)
                    .map(|(x, r)| (1.0 - r) * x)
                    .sum::<f64>()
                    / r1;
                let v1 = data
                    .iter()
                    .zip(&resp0)
                    .map(|(x, r)| (1.0 - r) * (x - mu[1]) * (x - mu[1]))
                    .sum::<f64>()
                    / r1;
                sd[1] = v1.max(self.config.var_floor).sqrt();
            }

            if (ll - prev_ll).abs() < self.config.tol {
                prev_ll = ll;
                break;
            }
            prev_ll = ll;
        }

        Ok(GmmFit {
            weight0: w0,
            means: mu,
            sds: sd,
            log_likelihood: prev_ll,
            iterations,
        })
    }

    /// Fit with a moment-based automatic initialization: components seeded
    /// at the 25th/75th percentiles with half the overall SD each.
    ///
    /// # Errors
    /// Same as [`Self::fit_with_init`].
    pub fn fit(&self, data: &[f64]) -> Result<GmmFit> {
        let q25 = crate::quantile::empirical_quantile(data, 0.25)?;
        let q75 = crate::quantile::empirical_quantile(data, 0.75)?;
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (data.len() as f64 - 1.0).max(1.0);
        let sd = var.sqrt().max(1e-3);
        self.fit_with_init(data, 0.5, [q25, q75], [0.5 * sd + 1e-6, 0.5 * sd + 1e-6])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_group_sample(seed: u64, n0: usize, n1: usize) -> (Vec<f64>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c0 = Normal::new(-2.0, 0.8).unwrap();
        let c1 = Normal::new(2.0, 1.0).unwrap();
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n0 {
            xs.push(c0.sample(&mut rng));
            labels.push(0);
        }
        for _ in 0..n1 {
            xs.push(c1.sample(&mut rng));
            labels.push(1);
        }
        (xs, labels)
    }

    #[test]
    fn recovers_well_separated_components() {
        let (xs, _) = two_group_sample(1, 2000, 3000);
        let fit = GaussianMixtureEm::default().fit(&xs).unwrap();
        let (m0, m1) = (
            fit.means[0].min(fit.means[1]),
            fit.means[0].max(fit.means[1]),
        );
        assert!((m0 + 2.0).abs() < 0.1, "m0 = {m0}");
        assert!((m1 - 2.0).abs() < 0.1, "m1 = {m1}");
        let w_small = fit.weight0.min(1.0 - fit.weight0);
        assert!((w_small - 0.4).abs() < 0.05, "w = {w_small}");
    }

    #[test]
    fn classification_accuracy_high_when_separated() {
        let (xs, labels) = two_group_sample(2, 1500, 1500);
        let fit = GaussianMixtureEm::default()
            .fit_with_init(&xs, 0.5, [-2.0, 2.0], [1.0, 1.0])
            .unwrap();
        let correct = xs
            .iter()
            .zip(&labels)
            .filter(|(x, l)| fit.classify(**x) == **l)
            .count();
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.97, "accuracy = {acc}");
    }

    #[test]
    fn posterior_is_probability() {
        let (xs, _) = two_group_sample(3, 500, 500);
        let fit = GaussianMixtureEm::default().fit(&xs).unwrap();
        for &x in xs.iter().take(200) {
            let p = fit.posterior0(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn posterior_far_tail_falls_back_to_nearest() {
        let fit = GmmFit {
            weight0: 0.5,
            means: [0.0, 10.0],
            sds: [1.0, 1.0],
            log_likelihood: 0.0,
            iterations: 1,
        };
        // 1e4 sigmas away: both densities underflow to zero.
        assert_eq!(fit.classify(-1e4), 0);
        assert_eq!(fit.classify(1e4 + 10.0), 1);
    }

    #[test]
    fn rejects_degenerate_input() {
        let em = GaussianMixtureEm::default();
        assert!(em.fit(&[1.0]).is_err());
        assert!(em
            .fit_with_init(&[1.0, 2.0], 0.0, [0.0, 1.0], [1.0, 1.0])
            .is_err());
        assert!(em
            .fit_with_init(&[1.0, 2.0], 0.5, [0.0, 1.0], [0.0, 1.0])
            .is_err());
        assert!(em.fit(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // Many identical points at one location would collapse a component.
        let mut xs = vec![0.0; 50];
        xs.extend(vec![5.0; 50]);
        let fit = GaussianMixtureEm::default()
            .fit_with_init(&xs, 0.5, [0.0, 5.0], [1.0, 1.0])
            .unwrap();
        assert!(fit.sds[0] > 0.0);
        assert!(fit.sds[1] > 0.0);
    }

    #[test]
    fn log_likelihood_improves_over_bad_init() {
        let (xs, _) = two_group_sample(9, 1000, 1000);
        let em = GaussianMixtureEm::default();
        let bad = em.fit_with_init(&xs, 0.5, [-0.1, 0.1], [3.0, 3.0]).unwrap();
        // Even from a poor start, EM should land near the true means.
        let lo = bad.means[0].min(bad.means[1]);
        let hi = bad.means[0].max(bad.means[1]);
        assert!((lo + 2.0).abs() < 0.3, "lo = {lo}");
        assert!((hi - 2.0).abs() < 0.3, "hi = {hi}");
    }
}
