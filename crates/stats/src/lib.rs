//! # otr-stats — statistical substrate for `ot-fair-repair`
//!
//! Everything numerical that the optimal-transport fairness-repair pipeline
//! needs and that the thin Rust statistics ecosystem does not provide:
//!
//! * **Special functions** ([`special`]): `erf`, `erfc`, the standard-normal
//!   CDF and its inverse (Acklam's algorithm refined by Halley iteration).
//! * **Distributions** ([`dist`]): Gaussian (sampling via the Marsaglia polar
//!   method), truncated Gaussian, log-normal, Bernoulli, categorical (with an
//!   O(1) alias sampler), multinomial, multivariate Gaussian (via our own
//!   Cholesky factorization), and finite mixtures.
//! * **Dense linear algebra** ([`linalg`]): the small dense-matrix kernel and
//!   Cholesky / solve routines used by the multivariate normal and EM.
//! * **Kernel density estimation** ([`kde`]): Gaussian-kernel KDE with
//!   Silverman / Scott bandwidth rules — Equation (11)–(12) of the paper.
//! * **Histograms & empirical pmfs** ([`histogram`]).
//! * **Quantiles** ([`quantile`]): empirical quantiles and pmf quantile
//!   functions used by the 1-D Wasserstein barycentre.
//! * **Divergences** ([`divergence`]): KL, symmetrized KL (the paper's
//!   `E_u`, Definition 2.4), Jensen–Shannon, total variation, Hellinger.
//! * **Descriptive statistics** ([`describe`]): Welford accumulators and
//!   summary statistics.
//! * **Expectation–maximization** ([`em`]): two-component Gaussian-mixture
//!   EM used to estimate missing `s|u` labels of archival data (Section IV
//!   / VI of the paper).
//!
//! All sampling is generic over [`rand::Rng`] so that every experiment in
//! the workspace is reproducible from an explicit seed.
//!
//! ## Example
//!
//! KDE-interpolate a sample onto a grid pmf (the Equation 11 operation
//! behind every repair-plan marginal):
//!
//! ```
//! use otr_stats::{Bandwidth, GaussianKde};
//!
//! let sample = [0.1, 0.4, 0.5, 0.9, 1.2, 1.4];
//! let kde = GaussianKde::fit(&sample, Bandwidth::Silverman).unwrap();
//! let grid: Vec<f64> = (0..50).map(|i| i as f64 * 0.04).collect();
//! let pmf = kde.pmf_on_grid(&grid).unwrap();
//! let total: f64 = pmf.iter().sum();
//! assert!((total - 1.0).abs() < 1e-9, "pmf normalizes on the grid");
//! ```

pub mod describe;
pub mod dist;
pub mod divergence;
pub mod em;
pub mod error;
pub mod histogram;
pub mod kde;
pub mod kde2d;
pub mod kde_nd;
pub mod linalg;
pub mod quantile;
pub mod special;

pub use describe::{Summary, Welford};
pub use dist::{
    Bernoulli, Categorical, LogNormal, Mixture1d, Multinomial, MultivariateNormal, Normal,
    TruncatedNormal,
};
pub use divergence::{hellinger, js_divergence, kl_divergence, sym_kl_divergence, total_variation};
pub use em::{GaussianMixtureEm, GmmFit};
pub use error::StatsError;
pub use histogram::Histogram;
pub use kde::{Bandwidth, GaussianKde};
pub use kde2d::GaussianKde2d;
pub use kde_nd::GaussianKdeNd;
pub use linalg::Matrix;
pub use quantile::{empirical_quantile, pmf_quantile_fn};
