//! d-variate Gaussian kernel density estimation (product kernel,
//! per-dimension Silverman bandwidths).
//!
//! The joint repair lifts Algorithm 1 to a `d`-axis product support, and
//! needs joint `s|u`-conditional pmfs on that grid. This estimator is the
//! `d`-axis generalization of [`crate::GaussianKde2d`]: a Gaussian
//! product kernel with per-dimension Silverman bandwidths scaled to the
//! `d`-optimal `n^{-1/(d+4)}` rate. At `d = 2` every operation is
//! **bitwise identical** to `GaussianKde2d` (same bandwidth arithmetic,
//! same accumulation order, same `1e-300` prefix skip), so the 2-feature
//! joint design is byte-for-byte unchanged by routing through this type.

use crate::error::{Result, StatsError};
use crate::kde::silverman_bandwidth;

/// A d-variate Gaussian-product-kernel density estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKdeNd {
    /// One sample column per dimension, all the same length.
    cols: Vec<Vec<f64>>,
    /// Per-dimension bandwidths.
    bandwidth: Vec<f64>,
}

impl GaussianKdeNd {
    /// Fit to column-major observations (`cols[a][i]` = coordinate `a`
    /// of sample `i`) with per-dimension Silverman bandwidths, each
    /// scaled by `n^{-1/(d+4)}` instead of `n^{-1/5}` (the d-optimal
    /// rate; at `d = 2` this is the `n^{-1/6}` rule of
    /// [`crate::GaussianKde2d`], bitwise).
    ///
    /// # Errors
    /// Requires at least one dimension and non-empty, equal-length,
    /// finite columns with positive spread in every dimension.
    pub fn fit(cols: &[&[f64]]) -> Result<Self> {
        if cols.is_empty() {
            return Err(StatsError::EmptyInput("n-D KDE dimensions"));
        }
        if cols[0].is_empty() {
            return Err(StatsError::EmptyInput("n-D KDE sample"));
        }
        for c in cols {
            if c.len() != cols[0].len() {
                return Err(StatsError::LengthMismatch {
                    what: "n-D KDE coordinates",
                    left: cols[0].len(),
                    right: c.len(),
                });
            }
            if c.iter().any(|v| !v.is_finite()) {
                return Err(StatsError::InvalidParameter {
                    name: "sample",
                    reason: "contains non-finite values".into(),
                });
            }
        }
        let n = cols[0].len() as f64;
        let d = cols.len() as f64;
        // Convert the 1-D Silverman constant to the d-dimensional rate:
        // multiply the n^{-1/5} rule by n^{1/5 - 1/(d+4)}.
        let rate_fix = n.powf(0.2 - 1.0 / (d + 4.0));
        let mut bandwidth = Vec::with_capacity(cols.len());
        for (a, c) in cols.iter().enumerate() {
            let h = silverman_bandwidth(c) * rate_fix;
            if !(h > 0.0) {
                return Err(StatsError::InvalidParameter {
                    name: "bandwidth",
                    reason: format!("degenerate spread in dimension {a} (h={h})"),
                });
            }
            bandwidth.push(h);
        }
        Ok(Self {
            cols: cols.iter().map(|c| c.to_vec()).collect(),
            bandwidth,
        })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.cols.len()
    }

    /// Per-dimension bandwidths.
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// The `n · Πhₐ · (2π)^{d/2}` normalization denominator, built with
    /// the exact multiplication order `GaussianKde2d` uses at `d = 2`.
    fn norm_denominator(&self) -> f64 {
        let d = self.cols.len();
        let mut z = self.cols[0].len() as f64;
        for &h in &self.bandwidth {
            z *= h;
        }
        for _ in 0..d / 2 {
            z *= 2.0;
            z *= std::f64::consts::PI;
        }
        if d % 2 == 1 {
            z *= (2.0 * std::f64::consts::PI).sqrt();
        }
        z
    }

    /// Joint density estimate at `point` (one coordinate per dimension).
    ///
    /// # Errors
    /// Rejects a point of the wrong dimension.
    pub fn pdf(&self, point: &[f64]) -> Result<f64> {
        if point.len() != self.cols.len() {
            return Err(StatsError::LengthMismatch {
                what: "n-D KDE query point",
                left: self.cols.len(),
                right: point.len(),
            });
        }
        let n = self.cols[0].len();
        let mut acc = 0.0;
        for i in 0..n {
            let mut e = 0.0;
            for (a, &x) in point.iter().enumerate() {
                let z = (x - self.cols[a][i]) / self.bandwidth[a];
                e += z * z;
            }
            acc += (-0.5 * e).exp();
        }
        Ok(acc / self.norm_denominator())
    }

    /// Evaluate the density on the product grid `axes[0] × … ×
    /// axes[d−1]`, flattened row-major with the **last axis fastest**
    /// (at `d = 2`: `out[i * axes[1].len() + j] = pdf(axes[0][i],
    /// axes[1][j])`, matching [`crate::GaussianKde2d::evaluate_grid`]
    /// bitwise).
    ///
    /// Computed with separable kernel factorization — per-sample,
    /// per-axis kernel rows combined by outer product — so the cost is
    /// `O((n + Πgₐ)·Σgₐ)` instead of `O(n·Πgₐ·d)`. Accumulation is
    /// sample-major into row-major cells; prefixes below `1e-300`
    /// (underflowed mass) skip the cell block, exactly like the 2-D
    /// estimator.
    pub fn evaluate_grid(&self, axes: &[&[f64]]) -> Vec<f64> {
        let d = self.cols.len();
        assert_eq!(axes.len(), d, "n-D KDE grid: expected {d} axes");
        let n = self.cols[0].len();
        // Precompute per-sample kernel rows over each axis.
        let rows: Vec<Vec<f64>> = (0..d)
            .map(|a| {
                let g = axes[a];
                let h = self.bandwidth[a];
                let mut k = vec![0.0f64; n * g.len()];
                for (s, &xi) in self.cols[a].iter().enumerate() {
                    for (i, &gv) in g.iter().enumerate() {
                        let z = (gv - xi) / h;
                        k[s * g.len() + i] = (-0.5 * z * z).exp();
                    }
                }
                k
            })
            .collect();
        let total: usize = axes.iter().map(|g| g.len()).product();
        let last = axes[d - 1].len();
        let lead = total / last;
        let mut out = vec![0.0f64; total];
        let mut prefix = vec![0.0f64; lead];
        let mut next = vec![0.0f64; lead];
        let unit = [1.0f64];
        for s in 0..n {
            // Outer-product expansion of the first d−1 axes into
            // `prefix` (a single borrowed row when d = 2, the empty
            // product when d = 1).
            let row0 = &rows[0][s * axes[0].len()..(s + 1) * axes[0].len()];
            let prefix: &[f64] = if d == 1 {
                &unit
            } else if d == 2 {
                row0
            } else {
                let mut len = axes[0].len();
                prefix[..len].copy_from_slice(row0);
                for a in 1..d - 1 {
                    let ga = axes[a].len();
                    let row = &rows[a][s * ga..(s + 1) * ga];
                    for i in 0..len {
                        let v = prefix[i];
                        for (j, &w) in row.iter().enumerate() {
                            next[i * ga + j] = v * w;
                        }
                    }
                    len *= ga;
                    prefix[..len].copy_from_slice(&next[..len]);
                }
                &prefix[..len]
            };
            let row_last = &rows[d - 1][s * last..(s + 1) * last];
            for (i, &vp) in prefix.iter().enumerate() {
                if vp < 1e-300 {
                    continue;
                }
                let base = i * last;
                for (j, &vl) in row_last.iter().enumerate() {
                    out[base + j] += vp * vl;
                }
            }
        }
        let norm = 1.0 / self.norm_denominator();
        for v in &mut out {
            *v *= norm;
        }
        out
    }

    /// Evaluate on a product grid and normalize to a pmf (sums to 1).
    ///
    /// # Errors
    /// Fails on empty axes or when the grid carries no mass.
    pub fn pmf_on_grid(&self, axes: &[&[f64]]) -> Result<Vec<f64>> {
        if axes.iter().any(|g| g.is_empty()) {
            return Err(StatsError::EmptyInput("n-D KDE grid"));
        }
        let mut p = self.evaluate_grid(axes);
        let total: f64 = p.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(StatsError::InvalidProbabilities(format!(
                "n-D KDE mass on grid is {total}"
            )));
        }
        for v in &mut p {
            *v /= total;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Normal};
    use crate::kde2d::GaussianKde2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_cols(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = Normal::standard();
        (0..d)
            .map(|a| {
                (0..n)
                    .map(|_| std.sample(&mut rng) + 0.3 * a as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(GaussianKdeNd::fit(&[]).is_err());
        assert!(GaussianKdeNd::fit(&[&[]]).is_err());
        assert!(GaussianKdeNd::fit(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(GaussianKdeNd::fit(&[&[f64::NAN], &[0.0]]).is_err());
        let flat = [1.0; 8];
        let ok = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        assert!(GaussianKdeNd::fit(&[&flat, &ok]).is_err());
    }

    #[test]
    fn d2_is_bitwise_identical_to_gaussian_kde2d() {
        let cols = sample_cols(250, 2, 7);
        let nd = GaussianKdeNd::fit(&[&cols[0], &cols[1]]).unwrap();
        let k2 = GaussianKde2d::fit(&cols[0], &cols[1]).unwrap();
        let (hx, hy) = k2.bandwidth();
        assert_eq!(nd.bandwidth(), &[hx, hy]);
        let gx: Vec<f64> = (0..9).map(|i| -2.0 + 0.5 * i as f64).collect();
        let gy: Vec<f64> = (0..7).map(|i| -1.5 + 0.5 * i as f64).collect();
        // The grid evaluation, the pmf, and pointwise pdfs all match to
        // the bit: the n-d path must be a drop-in replacement for the
        // 2-D joint design.
        assert_eq!(nd.evaluate_grid(&[&gx, &gy]), k2.evaluate_grid(&gx, &gy));
        assert_eq!(
            nd.pmf_on_grid(&[&gx, &gy]).unwrap(),
            k2.pmf_on_grid(&gx, &gy).unwrap()
        );
        for &x in &gx {
            for &y in &gy {
                assert_eq!(nd.pdf(&[x, y]).unwrap().to_bits(), k2.pdf(x, y).to_bits());
            }
        }
    }

    #[test]
    fn evaluate_grid_matches_pointwise_pdf_at_d3() {
        let cols = sample_cols(120, 3, 2);
        let kde = GaussianKdeNd::fit(&[&cols[0], &cols[1], &cols[2]]).unwrap();
        let g0 = [-1.0, 0.0, 2.0];
        let g1 = [-2.0, 0.5];
        let g2 = [-0.5, 0.25, 0.75, 1.5];
        let grid = kde.evaluate_grid(&[&g0, &g1, &g2]);
        for (i, &x) in g0.iter().enumerate() {
            for (j, &y) in g1.iter().enumerate() {
                for (k, &z) in g2.iter().enumerate() {
                    let direct = kde.pdf(&[x, y, z]).unwrap();
                    let fast = grid[(i * g1.len() + j) * g2.len() + k];
                    assert!(
                        (direct - fast).abs() < 1e-12 * (1.0 + direct),
                        "mismatch at ({x},{y},{z}): {direct} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn pdf_integrates_to_one_at_d3() {
        let cols = sample_cols(200, 3, 4);
        let kde = GaussianKdeNd::fit(&[&cols[0], &cols[1], &cols[2]]).unwrap();
        let g: Vec<f64> = (0..40).map(|i| -5.0 + 10.0 * i as f64 / 39.0).collect();
        let cell = (10.0 / 39.0f64).powi(3);
        let total: f64 = kde.evaluate_grid(&[&g, &g, &g]).iter().sum::<f64>() * cell;
        assert!((total - 1.0).abs() < 0.05, "integral = {total}");
    }

    #[test]
    fn pmf_on_grid_is_probability_vector_at_d3() {
        let cols = sample_cols(150, 3, 5);
        let kde = GaussianKdeNd::fit(&[&cols[0], &cols[1], &cols[2]]).unwrap();
        let g: Vec<f64> = (0..10).map(|i| -3.0 + 6.0 * i as f64 / 9.0).collect();
        let pmf = kde.pmf_on_grid(&[&g, &g, &g]).unwrap();
        assert_eq!(pmf.len(), 1000);
        assert!(pmf.iter().all(|&p| p >= 0.0));
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(kde.pmf_on_grid(&[&g, &[], &g]).is_err());
    }
}
