//! Descriptive statistics: numerically stable streaming moments (Welford)
//! and batch summaries. The Monte-Carlo experiment harnesses aggregate the
//! `E` metric over 200 replicates with these accumulators.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long streams; merging two accumulators uses the
/// parallel-variance (Chan et al.) update, so Monte-Carlo shards computed on
/// different threads can be combined exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merge another accumulator into this one (exact parallel combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Batch summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (type-7 interpolated).
    pub median: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let mut w = Welford::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in sample {
            w.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        let median = crate::quantile::empirical_quantile(sample, 0.5).ok()?;
        Some(Self {
            n: sample.len(),
            mean: w.mean(),
            sd: w.sample_sd(),
            min,
            max,
            median,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-14);
        // Sum of squared deviations = 32; sample variance = 32/7.
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-13);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut w1 = Welford::new();
        for &x in &a {
            w1.push(x);
        }
        let mut w2 = Welford::new();
        for &x in &b {
            w2.push(x);
        }
        w1.merge(&w2);

        let mut w = Welford::new();
        for &x in a.iter().chain(&b) {
            w.push(x);
        }
        assert_eq!(w1.count(), w.count());
        assert!((w1.mean() - w.mean()).abs() < 1e-12);
        assert!((w1.sample_variance() - w.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-14);
        assert!((s.sd - 1.0).abs() < 1e-14);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }
}
