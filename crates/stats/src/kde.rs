//! Gaussian kernel density estimation — Equations (11)–(12) of the paper.
//!
//! Algorithm 1 interpolates each `(u,s)`-conditional empirical marginal
//! onto a uniform support `Q` by evaluating a Gaussian KDE at the grid
//! points and normalizing the result into a pmf. The bandwidth defaults to
//! Silverman's rule of thumb (reference \[31\] of the paper).

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};
use crate::special::FRAC_1_SQRT_2PI;

/// Bandwidth selection rule for [`GaussianKde`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// Silverman's rule of thumb:
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^{-1/5}` — the paper's choice.
    Silverman,
    /// Scott's rule: `h = 1.06 · σ̂ · n^{-1/5}`.
    Scott,
    /// A fixed, caller-chosen bandwidth (must be positive).
    Fixed(f64),
}

/// A univariate Gaussian kernel density estimator.
///
/// ```
/// use otr_stats::kde::{GaussianKde, Bandwidth};
///
/// let sample = vec![0.0, 0.1, -0.2, 0.05, 0.3, -0.1, 0.2];
/// let kde = GaussianKde::fit(&sample, Bandwidth::Silverman).unwrap();
/// // Density near the sample mass exceeds density far away.
/// assert!(kde.pdf(0.0) > kde.pdf(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fit a KDE to `sample` with the given bandwidth rule.
    ///
    /// # Errors
    /// Returns an error for an empty sample, non-finite data, or a
    /// non-positive fixed/derived bandwidth (which happens when all data
    /// points coincide — in that degenerate case callers should fall back
    /// to a point mass).
    pub fn fit(sample: &[f64], bandwidth: Bandwidth) -> Result<Self> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput("KDE sample"));
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "sample",
                reason: "contains non-finite values".into(),
            });
        }
        let h = match bandwidth {
            Bandwidth::Fixed(h) => h,
            Bandwidth::Silverman => silverman_bandwidth(sample),
            Bandwidth::Scott => scott_bandwidth(sample),
        };
        if !(h > 0.0) || !h.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "bandwidth",
                reason: format!("derived bandwidth {h} is not positive (degenerate sample?)"),
            });
        }
        Ok(Self {
            sample: sample.to_vec(),
            bandwidth: h,
        })
    }

    /// The bandwidth in use.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of observations behind the estimate.
    #[inline]
    pub fn n(&self) -> usize {
        self.sample.len()
    }

    /// Density estimate at `x`:
    /// `f̂(x) = (n h)⁻¹ Σᵢ K((x − xᵢ)/h)` with the Gaussian kernel `K`.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let mut acc = 0.0;
        for &xi in &self.sample {
            let z = (x - xi) / h;
            acc += (-0.5 * z * z).exp();
        }
        acc * FRAC_1_SQRT_2PI / (self.sample.len() as f64 * h)
    }

    /// Evaluate the density on an arbitrary grid.
    pub fn evaluate(&self, grid: &[f64]) -> Vec<f64> {
        grid.iter().map(|&x| self.pdf(x)).collect()
    }

    /// Evaluate on a grid and normalize the result to sum to one — the
    /// interpolated pmf `p_{s,q}` of Equation (11).
    ///
    /// # Errors
    /// Returns an error if the grid is empty or the total evaluated mass is
    /// zero (grid disjoint from the sample's support).
    pub fn pmf_on_grid(&self, grid: &[f64]) -> Result<Vec<f64>> {
        if grid.is_empty() {
            return Err(StatsError::EmptyInput("KDE grid"));
        }
        let mut p = self.evaluate(grid);
        let total: f64 = p.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(StatsError::InvalidProbabilities(format!(
                "KDE mass on grid is {total}"
            )));
        }
        for v in &mut p {
            *v /= total;
        }
        Ok(p)
    }
}

/// Silverman's rule-of-thumb bandwidth:
/// `0.9 · min(σ̂, IQR/1.34) · n^{-1/5}`.
///
/// Falls back to `σ̂` alone when the IQR is zero (heavily tied data), and
/// to a small positive floor when both spread measures vanish.
pub fn silverman_bandwidth(sample: &[f64]) -> f64 {
    let n = sample.len() as f64;
    let sd = sample_sd(sample);
    let iqr = interquartile_range(sample);
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    0.9 * spread * n.powf(-0.2)
}

/// Scott's rule bandwidth: `1.06 · σ̂ · n^{-1/5}`.
pub fn scott_bandwidth(sample: &[f64]) -> f64 {
    1.06 * sample_sd(sample) * (sample.len() as f64).powf(-0.2)
}

fn sample_sd(sample: &[f64]) -> f64 {
    let n = sample.len() as f64;
    if sample.len() < 2 {
        return 0.0;
    }
    let mean = sample.iter().sum::<f64>() / n;
    let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    var.sqrt()
}

fn interquartile_range(sample: &[f64]) -> f64 {
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let q = |p: f64| -> f64 {
        // Linear interpolation between order statistics (type-7 quantile).
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    q(0.75) - q(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(GaussianKde::fit(&[], Bandwidth::Silverman).is_err());
        assert!(GaussianKde::fit(&[1.0, f64::NAN], Bandwidth::Silverman).is_err());
        assert!(GaussianKde::fit(&[1.0, 2.0], Bandwidth::Fixed(0.0)).is_err());
        assert!(GaussianKde::fit(&[1.0, 2.0], Bandwidth::Fixed(-1.0)).is_err());
    }

    #[test]
    fn degenerate_sample_rejected_for_silverman() {
        // All points identical -> zero spread -> no valid bandwidth.
        assert!(GaussianKde::fit(&[2.0; 10], Bandwidth::Silverman).is_err());
        // But a fixed bandwidth still works.
        let kde = GaussianKde::fit(&[2.0; 10], Bandwidth::Fixed(0.5)).unwrap();
        assert!(kde.pdf(2.0) > kde.pdf(4.0));
    }

    #[test]
    fn kde_recovers_normal_density() {
        let tgt = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let sample = tgt.sample_n(&mut rng, 5_000);
        let kde = GaussianKde::fit(&sample, Bandwidth::Silverman).unwrap();
        for x in [-2.0, -1.0, 0.0, 0.5, 1.5] {
            let err = (kde.pdf(x) - tgt.pdf(x)).abs();
            assert!(err < 0.02, "x = {x}, err = {err}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let sample = vec![-1.0, -0.5, 0.0, 0.3, 0.9, 1.4];
        let kde = GaussianKde::fit(&sample, Bandwidth::Silverman).unwrap();
        let (a, b) = (-10.0, 10.0);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut s = 0.0;
        for i in 0..=steps {
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            s += w * kde.pdf(a + i as f64 * h);
        }
        assert!((s * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pmf_on_grid_sums_to_one() {
        let sample = vec![0.0, 1.0, 2.0, 3.0];
        let kde = GaussianKde::fit(&sample, Bandwidth::Silverman).unwrap();
        let grid: Vec<f64> = (0..=50).map(|i| -1.0 + 5.0 * i as f64 / 50.0).collect();
        let pmf = kde.pmf_on_grid(&grid).unwrap();
        assert_eq!(pmf.len(), grid.len());
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(pmf.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn pmf_on_grid_rejects_empty_grid() {
        let kde = GaussianKde::fit(&[0.0, 1.0], Bandwidth::Silverman).unwrap();
        assert!(kde.pmf_on_grid(&[]).is_err());
    }

    #[test]
    fn silverman_decreases_with_n() {
        let tgt = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let small = tgt.sample_n(&mut rng, 50);
        let large = tgt.sample_n(&mut rng, 5_000);
        assert!(silverman_bandwidth(&large) < silverman_bandwidth(&small));
    }

    #[test]
    fn scott_vs_silverman_same_order() {
        let sample: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let s1 = silverman_bandwidth(&sample);
        let s2 = scott_bandwidth(&sample);
        assert!(s1 > 0.0 && s2 > 0.0);
        assert!(s1 / s2 > 0.3 && s1 / s2 < 3.0);
    }
}
