//! Divergences between probability vectors on a shared support.
//!
//! The paper's fairness measure (Definition 2.4) is the **symmetrized
//! Kullback–Leibler divergence** between the two `s|u`-conditional feature
//! densities:
//! `E_u = ½ D(f₀‖f₁) + ½ D(f₁‖f₀)`.
//! All divergences below operate on (possibly unnormalized) non-negative
//! vectors evaluated on a common grid; they normalize internally and floor
//! probabilities at [`EPS_FLOOR`] so that empty tails do not produce
//! infinities (the standard KDE-plug-in estimator convention).

use crate::error::{Result, StatsError};

/// Probability floor applied before taking logarithms.
pub const EPS_FLOOR: f64 = 1e-12;

fn validate_pair(p: &[f64], q: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
    if p.is_empty() {
        return Err(StatsError::EmptyInput("divergence input p"));
    }
    if p.len() != q.len() {
        return Err(StatsError::LengthMismatch {
            what: "divergence inputs",
            left: p.len(),
            right: q.len(),
        });
    }
    let norm = |v: &[f64], name: &str| -> Result<Vec<f64>> {
        let mut total = 0.0;
        for &x in v {
            if x < 0.0 || x.is_nan() {
                return Err(StatsError::InvalidProbabilities(format!(
                    "{name} contains negative or NaN mass"
                )));
            }
            total += x;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(StatsError::InvalidProbabilities(format!(
                "{name} has total mass {total}"
            )));
        }
        Ok(v.iter().map(|x| (x / total).max(EPS_FLOOR)).collect())
    };
    Ok((norm(p, "p")?, norm(q, "q")?))
}

/// Kullback–Leibler divergence `D(p‖q) = Σ p log(p/q)` (nats).
///
/// # Errors
/// Returns an error on empty input, length mismatch, or invalid mass.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    let (p, q) = validate_pair(p, q)?;
    let mut acc = 0.0;
    for (pi, qi) in p.iter().zip(&q) {
        acc += pi * (pi / qi).ln();
    }
    Ok(acc.max(0.0))
}

/// Symmetrized KL divergence `½ D(p‖q) + ½ D(q‖p)` — the paper's `E_u`
/// (Definition 2.4).
///
/// # Errors
/// Same as [`kl_divergence`].
pub fn sym_kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    Ok(0.5 * kl_divergence(p, q)? + 0.5 * kl_divergence(q, p)?)
}

/// Jensen–Shannon divergence (bounded by `ln 2`).
///
/// # Errors
/// Same as [`kl_divergence`].
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    let (p, q) = validate_pair(p, q)?;
    let m: Vec<f64> = p.iter().zip(&q).map(|(a, b)| 0.5 * (a + b)).collect();
    Ok(0.5 * kl_divergence(&p, &m)? + 0.5 * kl_divergence(&q, &m)?)
}

/// Total variation distance `½ Σ |p − q| ∈ [0, 1]`.
///
/// # Errors
/// Same as [`kl_divergence`].
pub fn total_variation(p: &[f64], q: &[f64]) -> Result<f64> {
    let (p, q) = validate_pair(p, q)?;
    Ok(0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>())
}

/// Hellinger distance `√(½ Σ (√p − √q)²) ∈ [0, 1]`.
///
/// # Errors
/// Same as [`kl_divergence`].
pub fn hellinger(p: &[f64], q: &[f64]) -> Result<f64> {
    let (p, q) = validate_pair(p, q)?;
    let s: f64 = p
        .iter()
        .zip(&q)
        .map(|(a, b)| {
            let d = a.sqrt() - b.sqrt();
            d * d
        })
        .sum();
    Ok((0.5 * s).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).unwrap() < 1e-12);
        assert!(sym_kl_divergence(&p, &p).unwrap() < 1e-12);
        assert!(js_divergence(&p, &p).unwrap() < 1e-12);
        assert!(total_variation(&p, &p).unwrap() < 1e-15);
        assert!(hellinger(&p, &p).unwrap() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric_sym_kl_is_not() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let dpq = kl_divergence(&p, &q).unwrap();
        let dqp = kl_divergence(&q, &p).unwrap();
        assert!((dpq - dqp).abs() > 1e-3);
        let s1 = sym_kl_divergence(&p, &q).unwrap();
        let s2 = sym_kl_divergence(&q, &p).unwrap();
        assert!((s1 - s2).abs() < 1e-14);
        assert!((s1 - 0.5 * (dpq + dqp)).abs() < 1e-14);
    }

    #[test]
    fn kl_hand_computed() {
        // D([1,0] || [0.5,0.5]) = 1*ln(2) with the zero floored.
        let d = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]).unwrap();
        assert!((d - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn js_bounded_by_ln2() {
        // Maximally separated distributions.
        let d = js_divergence(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!(d <= std::f64::consts::LN_2 + 1e-12);
        assert!(d > std::f64::consts::LN_2 - 1e-6);
    }

    #[test]
    fn tv_and_hellinger_bounds() {
        let d = total_variation(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((d - 1.0).abs() < 1e-10);
        let h = hellinger(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((h - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        let d1 = kl_divergence(&[2.0, 6.0], &[4.0, 4.0]).unwrap();
        let d2 = kl_divergence(&[0.25, 0.75], &[0.5, 0.5]).unwrap();
        assert!((d1 - d2).abs() < 1e-14);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(kl_divergence(&[], &[]).is_err());
        assert!(kl_divergence(&[0.5], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[-1.0, 2.0], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[0.0, 0.0], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[f64::NAN, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn gaussian_grid_sym_kl_close_to_analytic() {
        // For two unit-variance Gaussians the analytic symmetrized KL is
        // (mu0-mu1)^2 / 2 + ... for equal variances it's exactly
        // (mu0-mu1)^2/2 per direction => sym KL = (mu0-mu1)^2/2... check:
        // D(N(a,1)||N(b,1)) = (a-b)^2/2, so sym KL = (a-b)^2/2.
        use crate::dist::{ContinuousDistribution, Normal};
        let n0 = Normal::new(0.0, 1.0).unwrap();
        let n1 = Normal::new(1.0, 1.0).unwrap();
        let grid: Vec<f64> = (0..2000).map(|i| -6.0 + 13.0 * i as f64 / 1999.0).collect();
        let p: Vec<f64> = grid.iter().map(|&x| n0.pdf(x)).collect();
        let q: Vec<f64> = grid.iter().map(|&x| n1.pdf(x)).collect();
        let d = sym_kl_divergence(&p, &q).unwrap();
        assert!((d - 0.5).abs() < 0.01, "d = {d}");
    }
}
