//! Bivariate Gaussian kernel density estimation (product kernel,
//! per-dimension Silverman bandwidths).
//!
//! The paper's repair is stratified per feature (Section IV-A), which
//! ignores intra-feature correlation (Section VI). Quantifying what that
//! leaves behind requires estimating *joint* `s|u`-conditional densities;
//! this estimator provides them for the `d = 2` experimental settings.

use crate::error::{Result, StatsError};
use crate::kde::silverman_bandwidth;

/// A bivariate Gaussian-product-kernel density estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKde2d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Per-dimension bandwidths.
    bandwidth: (f64, f64),
}

impl GaussianKde2d {
    /// Fit to paired observations `(xs[i], ys[i])` with per-dimension
    /// Silverman bandwidths (each scaled by `n^{-1/6}` instead of
    /// `n^{-1/5}`, the 2-D-optimal rate).
    ///
    /// # Errors
    /// Requires non-empty, equal-length, finite inputs with positive
    /// spread in both dimensions.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::EmptyInput("2-D KDE sample"));
        }
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                what: "2-D KDE coordinates",
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "sample",
                reason: "contains non-finite values".into(),
            });
        }
        let n = xs.len() as f64;
        // Convert the 1-D Silverman constant to the d=2 rate: multiply the
        // n^{-1/5} rule by n^{1/5 - 1/6}.
        let rate_fix = n.powf(0.2 - 1.0 / 6.0);
        let hx = silverman_bandwidth(xs) * rate_fix;
        let hy = silverman_bandwidth(ys) * rate_fix;
        if !(hx > 0.0) || !(hy > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "bandwidth",
                reason: format!("degenerate spread (hx={hx}, hy={hy})"),
            });
        }
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            bandwidth: (hx, hy),
        })
    }

    /// Per-dimension bandwidths `(hx, hy)`.
    pub fn bandwidth(&self) -> (f64, f64) {
        self.bandwidth
    }

    /// Joint density estimate at `(x, y)`.
    pub fn pdf(&self, x: f64, y: f64) -> f64 {
        let (hx, hy) = self.bandwidth;
        let mut acc = 0.0;
        for (&xi, &yi) in self.xs.iter().zip(&self.ys) {
            let zx = (x - xi) / hx;
            let zy = (y - yi) / hy;
            acc += (-0.5 * (zx * zx + zy * zy)).exp();
        }
        acc / (self.xs.len() as f64 * hx * hy * 2.0 * std::f64::consts::PI)
    }

    /// Evaluate the density on the product grid `gx × gy`, row-major in
    /// `gx` (i.e. `out[i * gy.len() + j] = pdf(gx[i], gy[j])`).
    ///
    /// Computed with separable kernel factorization: O((n + gx·gy)·(gx+gy))
    /// instead of O(n·gx·gy).
    pub fn evaluate_grid(&self, gx: &[f64], gy: &[f64]) -> Vec<f64> {
        let (hx, hy) = self.bandwidth;
        let n = self.xs.len();
        // Precompute per-sample kernel columns over each axis.
        let mut kx = vec![0.0f64; n * gx.len()];
        for (s, &xi) in self.xs.iter().enumerate() {
            for (i, &g) in gx.iter().enumerate() {
                let z = (g - xi) / hx;
                kx[s * gx.len() + i] = (-0.5 * z * z).exp();
            }
        }
        let mut ky = vec![0.0f64; n * gy.len()];
        for (s, &yi) in self.ys.iter().enumerate() {
            for (j, &g) in gy.iter().enumerate() {
                let z = (g - yi) / hy;
                ky[s * gy.len() + j] = (-0.5 * z * z).exp();
            }
        }
        let norm = 1.0 / (n as f64 * hx * hy * 2.0 * std::f64::consts::PI);
        let mut out = vec![0.0f64; gx.len() * gy.len()];
        for s in 0..n {
            let row_x = &kx[s * gx.len()..(s + 1) * gx.len()];
            let row_y = &ky[s * gy.len()..(s + 1) * gy.len()];
            for (i, &vx) in row_x.iter().enumerate() {
                if vx < 1e-300 {
                    continue;
                }
                let base = i * gy.len();
                for (j, &vy) in row_y.iter().enumerate() {
                    out[base + j] += vx * vy;
                }
            }
        }
        for v in &mut out {
            *v *= norm;
        }
        out
    }

    /// Evaluate on a grid and normalize to a pmf (sums to 1).
    ///
    /// # Errors
    /// Fails when the grid carries no mass.
    pub fn pmf_on_grid(&self, gx: &[f64], gy: &[f64]) -> Result<Vec<f64>> {
        if gx.is_empty() || gy.is_empty() {
            return Err(StatsError::EmptyInput("2-D KDE grid"));
        }
        let mut p = self.evaluate_grid(gx, gy);
        let total: f64 = p.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(StatsError::InvalidProbabilities(format!(
                "2-D KDE mass on grid is {total}"
            )));
        }
        for v in &mut p {
            *v /= total;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_bivariate(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = Normal::standard();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = std.sample(&mut rng);
            let b = std.sample(&mut rng);
            xs.push(a);
            ys.push(rho * a + (1.0 - rho * rho).sqrt() * b);
        }
        (xs, ys)
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(GaussianKde2d::fit(&[], &[]).is_err());
        assert!(GaussianKde2d::fit(&[1.0], &[1.0, 2.0]).is_err());
        assert!(GaussianKde2d::fit(&[f64::NAN], &[0.0]).is_err());
        assert!(GaussianKde2d::fit(&[1.0; 8], &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let (xs, ys) = sample_bivariate(400, 0.0, 1);
        let kde = GaussianKde2d::fit(&xs, &ys).unwrap();
        let g: Vec<f64> = (0..60).map(|i| -5.0 + 10.0 * i as f64 / 59.0).collect();
        let cell = (10.0 / 59.0) * (10.0 / 59.0);
        let total: f64 = kde.evaluate_grid(&g, &g).iter().sum::<f64>() * cell;
        assert!((total - 1.0).abs() < 0.02, "integral = {total}");
    }

    #[test]
    fn evaluate_grid_matches_pointwise_pdf() {
        let (xs, ys) = sample_bivariate(100, 0.5, 2);
        let kde = GaussianKde2d::fit(&xs, &ys).unwrap();
        let gx = [-1.0, 0.0, 2.0];
        let gy = [-2.0, 0.5];
        let grid = kde.evaluate_grid(&gx, &gy);
        for (i, &x) in gx.iter().enumerate() {
            for (j, &y) in gy.iter().enumerate() {
                let direct = kde.pdf(x, y);
                let fast = grid[i * gy.len() + j];
                assert!(
                    (direct - fast).abs() < 1e-12 * (1.0 + direct),
                    "mismatch at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn captures_correlation_sign() {
        // Density at (1,1) vs (1,-1) distinguishes rho = +0.8 from -0.8.
        let (xs, ys) = sample_bivariate(2_000, 0.8, 3);
        let kde = GaussianKde2d::fit(&xs, &ys).unwrap();
        assert!(kde.pdf(1.0, 1.0) > 2.0 * kde.pdf(1.0, -1.0));
        let (xs, ys) = sample_bivariate(2_000, -0.8, 4);
        let kde = GaussianKde2d::fit(&xs, &ys).unwrap();
        assert!(kde.pdf(1.0, -1.0) > 2.0 * kde.pdf(1.0, 1.0));
    }

    #[test]
    fn pmf_on_grid_is_probability_vector() {
        let (xs, ys) = sample_bivariate(300, 0.3, 5);
        let kde = GaussianKde2d::fit(&xs, &ys).unwrap();
        let g: Vec<f64> = (0..20).map(|i| -4.0 + 8.0 * i as f64 / 19.0).collect();
        let pmf = kde.pmf_on_grid(&g, &g).unwrap();
        assert_eq!(pmf.len(), 400);
        assert!(pmf.iter().all(|&p| p >= 0.0));
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(kde.pmf_on_grid(&[], &g).is_err());
    }
}
