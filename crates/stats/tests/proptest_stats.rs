//! Property-based tests of the statistical substrate's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_stats::dist::{Categorical, ContinuousDistribution, Normal};
use otr_stats::kde::{Bandwidth, GaussianKde};
use otr_stats::{
    empirical_quantile, hellinger, js_divergence, kl_divergence, pmf_quantile_fn,
    sym_kl_divergence, total_variation, Welford,
};

fn arb_pmf(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 2..=max_n)
        .prop_filter("needs positive total", |v| v.iter().sum::<f64>() > 0.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All divergences are non-negative and vanish on identical inputs.
    #[test]
    fn divergences_nonnegative_and_zero_on_self(p in arb_pmf(16)) {
        prop_assert!(kl_divergence(&p, &p).unwrap() < 1e-10);
        prop_assert!(sym_kl_divergence(&p, &p).unwrap() < 1e-10);
        prop_assert!(js_divergence(&p, &p).unwrap() < 1e-10);
        prop_assert!(total_variation(&p, &p).unwrap() < 1e-12);
        prop_assert!(hellinger(&p, &p).unwrap() < 1e-10);
    }

    /// Symmetric divergences are symmetric; JS ≤ ln 2; TV, Hellinger ≤ 1.
    #[test]
    fn divergence_bounds_and_symmetry(p in arb_pmf(12), q in arb_pmf(12)) {
        prop_assume!(p.len() == q.len());
        let s1 = sym_kl_divergence(&p, &q).unwrap();
        let s2 = sym_kl_divergence(&q, &p).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-10);
        prop_assert!(s1 >= 0.0);
        let js = js_divergence(&p, &q).unwrap();
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-9).contains(&js));
        let tv = total_variation(&p, &q).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
        let h = hellinger(&p, &q).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&h));
        // Pinsker-type ordering between TV and JS is not universal, but
        // Hellinger² ≤ TV always holds.
        prop_assert!(h * h <= tv + 1e-9);
    }

    /// Welford merging is exactly equivalent to sequential accumulation.
    #[test]
    fn welford_merge_equals_sequential(
        a in proptest::collection::vec(-1e3f64..1e3, 0..40),
        b in proptest::collection::vec(-1e3f64..1e3, 0..40),
    ) {
        let mut wa = Welford::new();
        for &x in &a { wa.push(x); }
        let mut wb = Welford::new();
        for &x in &b { wb.push(x); }
        wa.merge(&wb);
        let mut seq = Welford::new();
        for &x in a.iter().chain(&b) { seq.push(x); }
        prop_assert_eq!(wa.count(), seq.count());
        prop_assert!((wa.mean() - seq.mean()).abs() < 1e-9 * (1.0 + seq.mean().abs()));
        prop_assert!(
            (wa.sample_variance() - seq.sample_variance()).abs()
                < 1e-7 * (1.0 + seq.sample_variance())
        );
    }

    /// Empirical quantiles are monotone in p and bounded by the extremes.
    #[test]
    fn empirical_quantiles_monotone(
        sample in proptest::collection::vec(-1e3f64..1e3, 1..50),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let qlo = empirical_quantile(&sample, lo).unwrap();
        let qhi = empirical_quantile(&sample, hi).unwrap();
        prop_assert!(qlo <= qhi + 1e-12);
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qlo >= min - 1e-12);
        prop_assert!(qhi <= max + 1e-12);
    }

    /// pmf quantile functions are monotone and land in the support hull.
    #[test]
    fn pmf_quantile_fn_monotone_in_hull(masses in arb_pmf(14)) {
        let support: Vec<f64> = (0..masses.len()).map(|i| i as f64 * 0.7 - 2.0).collect();
        let q = pmf_quantile_fn(&support, &masses).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=50 {
            let v = q(i as f64 / 50.0);
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v >= support[0] - 1e-12);
            prop_assert!(v <= support[support.len() - 1] + 1e-12);
            prev = v;
        }
    }

    /// KDE pmfs on grids are valid probability vectors.
    #[test]
    fn kde_pmf_is_probability_vector(
        sample in proptest::collection::vec(-10.0f64..10.0, 3..60),
        grid_n in 8usize..100,
    ) {
        prop_assume!(
            sample.iter().copied().fold(f64::INFINITY, f64::min)
                < sample.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
        let kde = match GaussianKde::fit(&sample, Bandwidth::Silverman) {
            Ok(k) => k,
            Err(_) => return Ok(()), // degenerate spread is a legal refusal
        };
        let grid: Vec<f64> = (0..grid_n).map(|i| -12.0 + 24.0 * i as f64 / (grid_n - 1) as f64).collect();
        let pmf = kde.pmf_on_grid(&grid).unwrap();
        prop_assert_eq!(pmf.len(), grid_n);
        prop_assert!(pmf.iter().all(|&p| p >= 0.0));
        prop_assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Normal CDF/quantile are inverse on random parameterizations.
    #[test]
    fn normal_cdf_quantile_inverse(
        mean in -100.0f64..100.0,
        sd in 0.01f64..50.0,
        p in 0.001f64..0.999,
    ) {
        let n = Normal::new(mean, sd).unwrap();
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    /// Alias-table categorical matches its pmf in expectation.
    #[test]
    fn categorical_mean_index_matches_pmf(weights in arb_pmf(8), seed in 0u64..1_000) {
        let cat = Categorical::new(&weights).unwrap();
        let expected: f64 = cat
            .probs()
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| cat.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        // 5-sigma tolerance on the sample mean of a bounded variable.
        let var: f64 = cat
            .probs()
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64 - expected).powi(2) * p)
            .sum();
        let tol = 5.0 * (var / n as f64).sqrt() + 1e-9;
        prop_assert!(
            (mean - expected).abs() < tol,
            "mean {} vs expected {} (tol {})", mean, expected, tol
        );
    }
}
