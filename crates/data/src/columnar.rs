//! Column-major (struct-of-arrays) storage of a labelled data set.
//!
//! [`crate::Dataset`] stores one heap-allocated `x: Vec<f64>` per row —
//! the natural shape for point-wise algorithms, but the worst possible
//! one for archival-scale repair, where every hot loop walks a single
//! feature across millions of rows: each access chases a fresh pointer,
//! so the memory system (not compute) sets the throughput ceiling.
//!
//! [`ColumnarDataset`] flips the layout: one contiguous `Vec<f64>` per
//! feature, packed `s`/`u` byte columns, and precomputed per-[`GroupKey`]
//! row-index lists. A repair kernel then reads one cache-line-friendly
//! column slice at a time and the compiler can autovectorize the pure
//! arithmetic passes (see `docs/performance.md`, "Columnar layout").
//!
//! Conversions to and from [`Dataset`] are lossless: both directions
//! preserve row order, labels, and exact `f64` bits, so the two layouts
//! are interchangeable representations of the same data set — the
//! byte-identity contract of the columnar repair kernels rests on it.

use crate::dataset::{Dataset, GroupKey, LabelledPoint};
use crate::error::{DataError, Result};

/// A labelled data set in column-major (struct-of-arrays) layout.
///
/// Invariants (enforced by every constructor):
/// * exactly `dim ≥ 1` feature columns, all of equal length;
/// * every feature value is finite;
/// * `s`/`u` labels are binary;
/// * the four group-index lists partition `0..len` in ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarDataset {
    dim: usize,
    /// One contiguous column per feature, each of length `len()`.
    features: Vec<Vec<f64>>,
    /// Protected attribute per row.
    s: Vec<u8>,
    /// Unprotected attribute per row.
    u: Vec<u8>,
    /// Row indices per `(u, s)` group, slot-indexed `u * 2 + s`, each
    /// ascending (insertion order).
    groups: [Vec<usize>; 4],
}

impl ColumnarDataset {
    /// Create an empty columnar data set of feature dimension `dim ≥ 1`.
    ///
    /// # Errors
    /// Rejects `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(DataError::Shape("feature dimension must be >= 1".into()));
        }
        Ok(Self {
            dim,
            features: vec![Vec::new(); dim],
            s: Vec::new(),
            u: Vec::new(),
            groups: Default::default(),
        })
    }

    /// Build from raw columns, validating every invariant.
    ///
    /// # Errors
    /// Rejects zero feature columns, length mismatches between any two
    /// columns, non-finite feature values, and labels outside `{0, 1}`.
    pub fn from_columns(features: Vec<Vec<f64>>, s: Vec<u8>, u: Vec<u8>) -> Result<Self> {
        if features.is_empty() {
            return Err(DataError::Shape("feature dimension must be >= 1".into()));
        }
        let len = s.len();
        if u.len() != len {
            return Err(DataError::Shape(format!(
                "label columns disagree: s has {len} rows, u has {}",
                u.len()
            )));
        }
        for (k, col) in features.iter().enumerate() {
            if col.len() != len {
                return Err(DataError::Shape(format!(
                    "feature column {k} has {} rows (expected {len})",
                    col.len()
                )));
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(DataError::Shape(format!(
                    "feature column {k} has non-finite values"
                )));
            }
        }
        let mut groups: [Vec<usize>; 4] = Default::default();
        for i in 0..len {
            match (GroupKey { u: u[i], s: s[i] }).slot() {
                Some(slot) => groups[slot].push(i),
                None => {
                    return Err(DataError::Shape(format!(
                        "row {i} has labels (s={}, u={}) outside {{0,1}}",
                        s[i], u[i]
                    )))
                }
            }
        }
        Ok(Self {
            dim: features.len(),
            features,
            s,
            u,
            groups,
        })
    }

    /// Transpose a row-major [`Dataset`] into columnar layout. Lossless:
    /// row order, labels, and exact `f64` bits are preserved.
    pub fn from_dataset(data: &Dataset) -> Self {
        let dim = data.dim();
        let n = data.len();
        let mut features = vec![Vec::with_capacity(n); dim];
        let mut s = Vec::with_capacity(n);
        let mut u = Vec::with_capacity(n);
        let mut groups: [Vec<usize>; 4] = Default::default();
        for (i, p) in data.points().iter().enumerate() {
            for (col, &v) in features.iter_mut().zip(&p.x) {
                col.push(v);
            }
            s.push(p.s);
            u.push(p.u);
            if let Some(slot) = (GroupKey { u: p.u, s: p.s }).slot() {
                groups[slot].push(i);
            }
        }
        Self {
            dim,
            features,
            s,
            u,
            groups,
        }
    }

    /// Transpose back to the row-major [`Dataset`] layout. Lossless
    /// inverse of [`Self::from_dataset`].
    pub fn to_dataset(&self) -> Dataset {
        let points = (0..self.len()).map(|i| self.row(i)).collect();
        Dataset::from_validated(self.dim, points)
    }

    /// Feature dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True when there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// The full feature-`k` column as a contiguous slice — zero-copy,
    /// unlike the gathering [`Dataset::feature_column`].
    ///
    /// # Errors
    /// Rejects `k >= dim`.
    pub fn feature_column(&self, k: usize) -> Result<&[f64]> {
        self.features.get(k).map(Vec::as_slice).ok_or_else(|| {
            DataError::Shape(format!("feature index {k} out of range (dim {})", self.dim))
        })
    }

    /// All feature columns (indexed by feature).
    #[inline]
    pub fn feature_columns(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Packed protected-attribute column.
    #[inline]
    pub fn s(&self) -> &[u8] {
        &self.s
    }

    /// Packed unprotected-attribute column.
    #[inline]
    pub fn u(&self) -> &[u8] {
        &self.u
    }

    /// Row indices of the `(u, s)` group, ascending. Labels outside
    /// `{0, 1}` name no group and yield an empty slice.
    #[inline]
    pub fn group_indices(&self, key: GroupKey) -> &[usize] {
        match key.slot() {
            Some(slot) => &self.groups[slot],
            None => &[],
        }
    }

    /// Number of rows in the `(u, s)` group — O(1).
    pub fn group_len(&self, key: GroupKey) -> usize {
        self.group_indices(key).len()
    }

    /// Feature-`k` values of the `(u, s)` group, gathered through the
    /// precomputed index list (row-layout parity with
    /// [`Dataset::feature_column`]).
    ///
    /// # Errors
    /// Rejects `k >= dim`.
    pub fn group_feature_column(&self, key: GroupKey, k: usize) -> Result<Vec<f64>> {
        let col = self.feature_column(k)?;
        Ok(self.group_indices(key).iter().map(|&i| col[i]).collect())
    }

    /// Materialize row `i` as a [`LabelledPoint`] (allocates; meant for
    /// interop and tests, not hot loops).
    ///
    /// # Panics
    /// `i` must be a valid row index.
    pub fn row(&self, i: usize) -> LabelledPoint {
        LabelledPoint {
            x: self.features.iter().map(|col| col[i]).collect(),
            s: self.s[i],
            u: self.u[i],
        }
    }

    /// Append one row, validating dimension, finiteness, and labels —
    /// the streaming-ingest entry point (CSV parses straight into the
    /// columns through this, never materializing row structs).
    ///
    /// # Errors
    /// Mirrors [`Dataset::push`].
    pub fn push_row(&mut self, x: &[f64], s: u8, u: u8) -> Result<()> {
        if x.len() != self.dim {
            return Err(DataError::Shape(format!(
                "row has dimension {} (expected {})",
                x.len(),
                self.dim
            )));
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(DataError::Shape("row has non-finite features".into()));
        }
        let Some(slot) = (GroupKey { u, s }).slot() else {
            return Err(DataError::Shape("labels must be in {0,1}".into()));
        };
        let i = self.len();
        for (col, &v) in self.features.iter_mut().zip(x) {
            col.push(v);
        }
        self.s.push(s);
        self.u.push(u);
        self.groups[slot].push(i);
        Ok(())
    }

    /// A new data set with the same rows, labels, and group structure
    /// but replacement feature columns — how the columnar repair kernels
    /// assemble their output without re-deriving the (unchanged) label
    /// bookkeeping.
    ///
    /// # Errors
    /// Rejects a wrong column count, length mismatches against `len()`,
    /// and non-finite values.
    pub fn with_feature_columns(&self, features: Vec<Vec<f64>>) -> Result<Self> {
        if features.len() != self.dim {
            return Err(DataError::Shape(format!(
                "expected {} feature columns, got {}",
                self.dim,
                features.len()
            )));
        }
        for (k, col) in features.iter().enumerate() {
            if col.len() != self.len() {
                return Err(DataError::Shape(format!(
                    "feature column {k} has {} rows (expected {})",
                    col.len(),
                    self.len()
                )));
            }
            if col.iter().any(|v| !v.is_finite()) {
                return Err(DataError::Shape(format!(
                    "feature column {k} has non-finite values"
                )));
            }
        }
        Ok(Self {
            dim: self.dim,
            features,
            s: self.s.clone(),
            u: self.u.clone(),
            groups: self.groups.clone(),
        })
    }

    /// Copy out the contiguous row range `range` as its own data set —
    /// the sharding primitive of the repair service: a server splits an
    /// incoming archive into contiguous row shards with this, repairs
    /// each shard keyed by its absolute start row, and reassembles in
    /// index order. Row order, labels, and exact `f64` bits are
    /// preserved; group-index lists are rebuilt shard-local (indices
    /// relative to `range.start`).
    ///
    /// # Errors
    /// Rejects ranges that are descending or extend past `len()`.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Result<Self> {
        if range.start > range.end || range.end > self.len() {
            return Err(DataError::Shape(format!(
                "row range {}..{} out of bounds for {} rows",
                range.start,
                range.end,
                self.len()
            )));
        }
        let features = self
            .features
            .iter()
            .map(|col| col[range.clone()].to_vec())
            .collect();
        let s = self.s[range.clone()].to_vec();
        let u = self.u[range.clone()].to_vec();
        let mut groups: [Vec<usize>; 4] = Default::default();
        for (local, i) in range.enumerate() {
            // Invariant: every stored row has binary labels.
            if let Some(slot) = (GroupKey {
                u: self.u[i],
                s: self.s[i],
            })
            .slot()
            {
                groups[slot].push(local);
            }
        }
        Ok(Self {
            dim: self.dim,
            features,
            s,
            u,
            groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: &[f64], s: u8, u: u8) -> LabelledPoint {
        LabelledPoint {
            x: x.to_vec(),
            s,
            u,
        }
    }

    fn small() -> Dataset {
        Dataset::from_points(vec![
            pt(&[0.0, 1.0], 0, 0),
            pt(&[1.0, 2.0], 1, 0),
            pt(&[2.0, 3.0], 0, 1),
            pt(&[3.0, 4.0], 1, 1),
            pt(&[4.0, 5.0], 1, 1),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let d = small();
        let c = ColumnarDataset::from_dataset(&d);
        assert_eq!(c.dim(), d.dim());
        assert_eq!(c.len(), d.len());
        assert_eq!(c.to_dataset(), d);
        // Columns carry the exact bits in row order.
        assert_eq!(c.feature_column(0).unwrap(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.feature_column(1).unwrap(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(c.feature_column(2).is_err());
        assert_eq!(c.s(), &[0, 1, 0, 1, 1]);
        assert_eq!(c.u(), &[0, 0, 1, 1, 1]);
    }

    #[test]
    fn group_indices_agree_with_dataset() {
        let d = small();
        let c = ColumnarDataset::from_dataset(&d);
        for key in GroupKey::all() {
            assert_eq!(c.group_indices(key), d.group_indices(key));
            assert_eq!(c.group_len(key), d.group_len(key));
            assert_eq!(
                c.group_feature_column(key, 0).unwrap(),
                d.feature_column(key, 0).unwrap()
            );
        }
        assert!(c.group_indices(GroupKey { u: 3, s: 0 }).is_empty());
    }

    #[test]
    fn push_row_matches_dataset_push() {
        let mut c = ColumnarDataset::new(2).unwrap();
        let mut d = Dataset::new(2).unwrap();
        for p in small().points() {
            c.push_row(&p.x, p.s, p.u).unwrap();
            d.push(p.clone()).unwrap();
        }
        assert_eq!(c.to_dataset(), d);
        assert_eq!(c, ColumnarDataset::from_dataset(&d));
        // Validation mirrors Dataset::push; a rejected row changes nothing.
        assert!(c.push_row(&[1.0], 0, 0).is_err());
        assert!(c.push_row(&[1.0, f64::NAN], 0, 0).is_err());
        assert!(c.push_row(&[1.0, 2.0], 2, 0).is_err());
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn from_columns_validates() {
        assert!(ColumnarDataset::new(0).is_err());
        assert!(ColumnarDataset::from_columns(vec![], vec![], vec![]).is_err());
        assert!(
            ColumnarDataset::from_columns(vec![vec![1.0], vec![1.0, 2.0]], vec![0], vec![0])
                .is_err()
        );
        assert!(ColumnarDataset::from_columns(vec![vec![1.0]], vec![0], vec![0, 1]).is_err());
        assert!(
            ColumnarDataset::from_columns(vec![vec![f64::INFINITY]], vec![0], vec![0]).is_err()
        );
        assert!(ColumnarDataset::from_columns(vec![vec![1.0]], vec![2], vec![0]).is_err());
        let ok =
            ColumnarDataset::from_columns(vec![vec![1.0, 2.0]], vec![0, 1], vec![1, 0]).unwrap();
        assert_eq!(ok.group_indices(GroupKey { u: 1, s: 0 }), &[0]);
        assert_eq!(ok.group_indices(GroupKey { u: 0, s: 1 }), &[1]);
    }

    #[test]
    fn with_feature_columns_swaps_values_only() {
        let c = ColumnarDataset::from_dataset(&small());
        let swapped = c
            .with_feature_columns(vec![vec![9.0; 5], vec![-1.0; 5]])
            .unwrap();
        assert_eq!(swapped.s(), c.s());
        assert_eq!(swapped.u(), c.u());
        for key in GroupKey::all() {
            assert_eq!(swapped.group_indices(key), c.group_indices(key));
        }
        assert_eq!(swapped.feature_column(0).unwrap(), &[9.0; 5]);
        assert!(c.with_feature_columns(vec![vec![0.0; 5]]).is_err());
        assert!(c
            .with_feature_columns(vec![vec![0.0; 4], vec![0.0; 5]])
            .is_err());
        assert!(c
            .with_feature_columns(vec![vec![0.0; 5], vec![f64::NAN; 5]])
            .is_err());
    }

    #[test]
    fn slice_rows_preserves_bits_and_rebuilds_groups() {
        let c = ColumnarDataset::from_dataset(&small());
        let mid = c.slice_rows(1..4).unwrap();
        assert_eq!(mid.len(), 3);
        assert_eq!(mid.feature_column(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(mid.s(), &[1, 0, 1]);
        assert_eq!(mid.u(), &[0, 1, 1]);
        // Group lists are shard-local (relative to the slice start).
        assert_eq!(mid.group_indices(GroupKey { u: 0, s: 1 }), &[0]);
        assert_eq!(mid.group_indices(GroupKey { u: 1, s: 0 }), &[1]);
        assert_eq!(mid.group_indices(GroupKey { u: 1, s: 1 }), &[2]);
        // A slice is a self-consistent data set (round trips).
        assert_eq!(ColumnarDataset::from_dataset(&mid.to_dataset()), mid);
        // Whole-range and empty slices are fine; overruns are not.
        assert_eq!(c.slice_rows(0..c.len()).unwrap(), c);
        assert!(c.slice_rows(2..2).unwrap().is_empty());
        assert!(c.slice_rows(3..6).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(c.slice_rows(3..2).is_err());
        }
    }

    #[test]
    fn empty_round_trip() {
        let c = ColumnarDataset::new(3).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.to_dataset().dim(), 3);
        assert_eq!(ColumnarDataset::from_dataset(&c.to_dataset()), c);
    }
}
