//! The paper's simulation study generator (Section V-A): four bivariate
//! Gaussian components `x_{u,s} ~ N(µ_{u,s}, Σ)` with
//! `Pr[u=0] = 0.5`, `Pr[s=0|u=0] = 0.3`, `Pr[s=0|u=1] = 0.1`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use otr_stats::dist::Bernoulli;
use otr_stats::linalg::Matrix;
use otr_stats::MultivariateNormal;

use crate::dataset::{Dataset, LabelledPoint, SplitData};
use crate::error::{DataError, Result};

/// Specification of the `(u, s)`-conditional Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationSpec {
    /// Component means indexed `[u][s]`.
    pub means: [[Vec<f64>; 2]; 2],
    /// Shared isotropic standard deviation (used when `covs` is `None`).
    pub sigma: f64,
    /// Optional full per-`(u, s)` covariance matrices, indexed `[u][s]`.
    /// When present they override `sigma`, enabling group-dependent
    /// correlation structure (the Section VI intra-feature-correlation
    /// study in `ablation_joint`).
    #[serde(default)]
    pub covs: Option<[[Matrix; 2]; 2]>,
    /// `Pr[u = 0]`.
    pub pr_u0: f64,
    /// `Pr[s = 0 | u]`, indexed by `u`.
    pub pr_s0_given_u: [f64; 2],
}

impl SimulationSpec {
    /// The exact parameters of Section V-A:
    /// `µ₀,₀ = (−1,−1)`, `µ₀,₁ = (0,0)`, `µ₁,₀ = (1,1)`, `µ₁,₁ = (0,0)`,
    /// `Σ = I₂`, `Pr[u=0]=0.5`, `Pr[s=0|u=0]=0.3`, `Pr[s=0|u=1]=0.1`.
    pub fn paper_defaults() -> Self {
        Self {
            means: [
                [vec![-1.0, -1.0], vec![0.0, 0.0]],
                [vec![1.0, 1.0], vec![0.0, 0.0]],
            ],
            sigma: 1.0,
            covs: None,
            pr_u0: 0.5,
            pr_s0_given_u: [0.3, 0.1],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means[0][0].len()
    }

    /// Covariance for component `(u, s)`: the explicit matrix when `covs`
    /// is set, otherwise `sigma² I`.
    fn cov_for(&self, u: usize, s: usize) -> Matrix {
        if let Some(covs) = &self.covs {
            return covs[u][s].clone();
        }
        let d = self.dim();
        let mut cov = Matrix::zeros(d, d);
        for i in 0..d {
            cov.set(i, i, self.sigma * self.sigma);
        }
        cov
    }

    /// Validate the specification.
    ///
    /// # Errors
    /// Rejects inconsistent mean dimensions, non-positive `sigma`, and
    /// probabilities outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        let d = self.dim();
        if d == 0 {
            return Err(DataError::Shape("means must be non-empty".into()));
        }
        for u in 0..2 {
            for s in 0..2 {
                if self.means[u][s].len() != d {
                    return Err(DataError::Shape(format!(
                        "mean[u={u}][s={s}] has dim {} (expected {d})",
                        self.means[u][s].len()
                    )));
                }
            }
        }
        if !(self.sigma > 0.0) {
            return Err(DataError::InvalidParameter {
                name: "sigma",
                reason: format!("must be positive, got {}", self.sigma),
            });
        }
        if let Some(covs) = &self.covs {
            for (u, row) in covs.iter().enumerate() {
                for (s, cov) in row.iter().enumerate() {
                    if cov.rows() != d || cov.cols() != d {
                        return Err(DataError::Shape(format!(
                            "cov[u={u}][s={s}] is {}x{} (expected {d}x{d})",
                            cov.rows(),
                            cov.cols()
                        )));
                    }
                    if cov.cholesky().is_err() {
                        return Err(DataError::InvalidParameter {
                            name: "covs",
                            reason: format!("cov[u={u}][s={s}] is not positive definite"),
                        });
                    }
                }
            }
        }
        for (name, p) in [("pr_u0", self.pr_u0)]
            .into_iter()
            .chain([("pr_s0_given_u[0]", self.pr_s0_given_u[0])])
            .chain([("pr_s0_given_u[1]", self.pr_s0_given_u[1])])
        {
            if !(0.0 < p && p < 1.0) {
                return Err(DataError::InvalidParameter {
                    name: "probability",
                    reason: format!("{name} must be in (0,1), got {p}"),
                });
            }
        }
        Ok(())
    }

    /// Draw one labelled observation from the hierarchical model
    /// `u ~ Bern(1 − pr_u0)`, `s|u ~ Bern(1 − pr_s0_given_u[u])`,
    /// `x|s,u ~ N(µ_{u,s}, σ²I)`.
    ///
    /// # Errors
    /// Propagates validation failures.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<LabelledPoint> {
        self.validate()?;
        let u = u8::from(!Bernoulli::new(self.pr_u0)?.sample(rng));
        let s = u8::from(!Bernoulli::new(self.pr_s0_given_u[u as usize])?.sample(rng));
        let cov = self.cov_for(u as usize, s as usize);
        let mvn = MultivariateNormal::new(self.means[u as usize][s as usize].clone(), cov)?;
        Ok(LabelledPoint {
            x: mvn.sample(rng),
            s,
            u,
        })
    }

    /// Generate a full data set of `n` observations.
    ///
    /// # Errors
    /// Requires `n ≥ 1`; propagates validation failures.
    pub fn sample_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Dataset> {
        self.validate()?;
        if n == 0 {
            return Err(DataError::InvalidParameter {
                name: "n",
                reason: "must be at least 1".into(),
            });
        }
        // Build the four component samplers once.
        let mut comps: Vec<MultivariateNormal> = Vec::with_capacity(4);
        for u in 0..2 {
            for s in 0..2 {
                comps.push(MultivariateNormal::new(
                    self.means[u][s].clone(),
                    self.cov_for(u, s),
                )?);
            }
        }
        let b_u = Bernoulli::new(self.pr_u0)?;
        let b_s = [
            Bernoulli::new(self.pr_s0_given_u[0])?,
            Bernoulli::new(self.pr_s0_given_u[1])?,
        ];
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            let u = u8::from(!b_u.sample(rng));
            let s = u8::from(!b_s[u as usize].sample(rng));
            let comp = &comps[(u as usize) * 2 + s as usize];
            points.push(LabelledPoint {
                x: comp.sample(rng),
                s,
                u,
            });
        }
        Dataset::from_points(points)
    }

    /// Generate the composite experiment data: `n_research + n_archive`
    /// i.i.d. observations split into research and archive parts (the
    /// paper's `n ≡ n_R + n_A`).
    ///
    /// # Errors
    /// Requires both sizes ≥ 1.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n_research: usize,
        n_archive: usize,
        rng: &mut R,
    ) -> Result<SplitData> {
        if n_research == 0 || n_archive == 0 {
            return Err(DataError::InvalidParameter {
                name: "n_research/n_archive",
                reason: "both must be at least 1".into(),
            });
        }
        let all = self.sample_dataset(n_research + n_archive, rng)?;
        all.split_research_archive(n_research, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_are_valid() {
        let spec = SimulationSpec::paper_defaults();
        spec.validate().unwrap();
        assert_eq!(spec.dim(), 2);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = SimulationSpec::paper_defaults();
        spec.sigma = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = SimulationSpec::paper_defaults();
        spec.pr_u0 = 1.0;
        assert!(spec.validate().is_err());
        let mut spec = SimulationSpec::paper_defaults();
        spec.means[1][0] = vec![1.0];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn group_proportions_match_spec() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(42);
        let data = spec.sample_dataset(50_000, &mut rng).unwrap();
        assert!((data.prob_u1() - 0.5).abs() < 0.01);
        assert!((data.prob_s0_given_u(0) - 0.3).abs() < 0.01);
        assert!((data.prob_s0_given_u(1) - 0.1).abs() < 0.01);
    }

    #[test]
    fn component_means_match_spec() {
        use crate::dataset::GroupKey;
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(7);
        let data = spec.sample_dataset(80_000, &mut rng).unwrap();
        for (key, want) in [
            (GroupKey { u: 0, s: 0 }, -1.0),
            (GroupKey { u: 0, s: 1 }, 0.0),
            (GroupKey { u: 1, s: 0 }, 1.0),
            (GroupKey { u: 1, s: 1 }, 0.0),
        ] {
            let col = data.feature_column(key, 0).unwrap();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            assert!(
                (mean - want).abs() < 0.06,
                "group {key:?}: mean {mean} vs {want}"
            );
        }
    }

    #[test]
    fn generate_splits_sizes() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let split = spec.generate(500, 5000, &mut rng).unwrap();
        assert_eq!(split.research.len(), 500);
        assert_eq!(split.archive.len(), 5000);
        assert!(spec.generate(0, 10, &mut rng).is_err());
    }

    #[test]
    fn sample_point_labels_in_range() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = spec.sample_point(&mut rng).unwrap();
            assert!(p.s <= 1 && p.u <= 1);
            assert_eq!(p.x.len(), 2);
        }
    }

    #[test]
    fn reproducible_from_seed() {
        let spec = SimulationSpec::paper_defaults();
        let a = spec
            .sample_dataset(100, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let b = spec
            .sample_dataset(100, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(a, b);
    }
}
