//! Distribution-shift injectors.
//!
//! The paper's off-sample repair leans on a stationarity assumption
//! (Section IV, requirement 2) and observes degraded repair under real
//! non-stationarity (Section V-B). These injectors synthesize controlled
//! violations of that assumption so the degradation can be measured.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::Result;

/// A feature-space drift applied to every point of a data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Drift {
    /// Add a constant shift per feature.
    MeanShift(Vec<f64>),
    /// Scale each feature's deviation from a centre: `x ← c + k (x − c)`.
    VarianceScale {
        /// Per-feature centres.
        centre: Vec<f64>,
        /// Per-feature scale factors (must be positive).
        factors: Vec<f64>,
    },
    /// Apply a shift only to points with the given protected label —
    /// shifts one subgroup, changing the `s|u` dependence structure.
    GroupShift {
        /// Affected protected label.
        s: u8,
        /// Per-feature shift.
        shift: Vec<f64>,
    },
}

impl Drift {
    /// Apply the drift to a data set, returning a new one.
    ///
    /// # Errors
    /// Rejects dimension mismatches or non-finite outputs.
    pub fn apply(&self, data: &Dataset) -> Result<Dataset> {
        match self {
            Drift::MeanShift(shift) => data.map_features(|p| {
                p.x.iter()
                    .zip(shift.iter().cycle())
                    .map(|(x, d)| x + d)
                    .collect()
            }),
            Drift::VarianceScale { centre, factors } => data.map_features(|p| {
                p.x.iter()
                    .zip(centre.iter().cycle())
                    .zip(factors.iter().cycle())
                    .map(|((x, c), k)| c + k * (x - c))
                    .collect()
            }),
            Drift::GroupShift { s, shift } => data.map_features(|p| {
                if p.s == *s {
                    p.x.iter()
                        .zip(shift.iter().cycle())
                        .map(|(x, d)| x + d)
                        .collect()
                } else {
                    p.x.clone()
                }
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabelledPoint;

    fn data() -> Dataset {
        Dataset::from_points(vec![
            LabelledPoint {
                x: vec![1.0, 10.0],
                s: 0,
                u: 0,
            },
            LabelledPoint {
                x: vec![2.0, 20.0],
                s: 1,
                u: 1,
            },
        ])
        .unwrap()
    }

    #[test]
    fn mean_shift() {
        let out = Drift::MeanShift(vec![1.0, -1.0]).apply(&data()).unwrap();
        assert_eq!(out.points()[0].x, vec![2.0, 9.0]);
        assert_eq!(out.points()[1].x, vec![3.0, 19.0]);
    }

    #[test]
    fn variance_scale_contracts_toward_centre() {
        let out = Drift::VarianceScale {
            centre: vec![0.0, 0.0],
            factors: vec![0.5, 2.0],
        }
        .apply(&data())
        .unwrap();
        assert_eq!(out.points()[0].x, vec![0.5, 20.0]);
    }

    #[test]
    fn group_shift_only_affects_matching_s() {
        let out = Drift::GroupShift {
            s: 1,
            shift: vec![100.0, 0.0],
        }
        .apply(&data())
        .unwrap();
        assert_eq!(out.points()[0].x, vec![1.0, 10.0]);
        assert_eq!(out.points()[1].x, vec![102.0, 20.0]);
    }

    #[test]
    fn labels_preserved() {
        let out = Drift::MeanShift(vec![0.0, 0.0]).apply(&data()).unwrap();
        for (a, b) in out.points().iter().zip(data().points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }
}
