//! A dependency-free CSV reader/writer sufficient for the Adult data file
//! and for exporting experiment results.
//!
//! Supports quoted fields with embedded commas and doubled quotes, CRLF
//! and LF line endings, and optional surrounding whitespace trimming. It
//! deliberately does not support embedded newlines inside quoted fields —
//! the Adult file has none, and rejecting them keeps the reader O(1) in
//! lookahead.

use std::io::{BufRead, Write};

use crate::error::{DataError, Result};

/// Parse one CSV line into fields.
///
/// # Errors
/// Returns [`DataError::Csv`] for unterminated quotes; `line_no` is used
/// only for error reporting.
pub fn parse_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let n = parse_line_into(line, line_no, &mut fields)?;
    fields.truncate(n);
    Ok(fields)
}

/// Parse one CSV line into a reusable field buffer, returning the number
/// of fields written. Slots beyond the returned count keep stale content;
/// callers read `&fields[..n]`. Reusing the buffer keeps a streaming
/// reader at zero per-line `String` allocations once capacities settle.
///
/// # Errors
/// Returns [`DataError::Csv`] for unterminated quotes; `line_no` is used
/// only for error reporting.
pub fn parse_line_into(line: &str, line_no: usize, fields: &mut Vec<String>) -> Result<usize> {
    // Hand out the next reusable field slot, cleared.
    fn open_slot(fields: &mut Vec<String>, n: &mut usize) {
        if *n == fields.len() {
            fields.push(String::new());
        }
        fields[*n].clear();
        *n += 1;
    }
    let mut n = 0usize;
    open_slot(fields, &mut n);
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        fields[n - 1].push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => fields[n - 1].push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => open_slot(fields, &mut n),
                '\r' => {} // tolerate CR before LF
                _ => fields[n - 1].push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: line_no,
            reason: "unterminated quoted field".into(),
        });
    }
    Ok(n)
}

/// Stream rows from a reader, invoking `visit(line_no, fields)` for each
/// non-blank line (1-based `line_no`). Line and field buffers are reused
/// across rows, so memory stays O(widest row) no matter how large the
/// archive is — the ingest path for columnar data sets and the streaming
/// repair service.
///
/// # Errors
/// Propagates I/O and parse failures, and whatever the visitor returns.
pub fn for_each_row<R, F>(mut reader: R, mut visit: F) -> Result<()>
where
    R: BufRead,
    F: FnMut(usize, &[String]) -> Result<()>,
{
    let mut line = String::new();
    let mut fields: Vec<String> = Vec::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.trim().is_empty() {
            continue;
        }
        let n = parse_line_into(trimmed, line_no, &mut fields)?;
        visit(line_no, &fields[..n])?;
    }
}

/// Read all rows from a reader; empty lines are skipped.
///
/// # Errors
/// Propagates I/O and parse failures.
pub fn read_rows<R: BufRead>(reader: R) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    for_each_row(reader, |_, fields| {
        rows.push(fields.to_vec());
        Ok(())
    })?;
    Ok(rows)
}

/// Escape a field for CSV output (quotes it when it contains a comma,
/// quote, or leading/trailing space).
pub fn escape_field(field: &str) -> String {
    let needs_quotes = field.contains(',')
        || field.contains('"')
        || field.starts_with(' ')
        || field.ends_with(' ');
    if needs_quotes {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write rows to a writer as CSV.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_rows<W: Write>(mut writer: W, rows: &[Vec<String>]) -> Result<()> {
    for row in rows {
        let encoded: Vec<String> = row.iter().map(|f| escape_field(f)).collect();
        writeln!(writer, "{}", encoded.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_fields() {
        assert_eq!(
            parse_line("a,b,c", 1).unwrap(),
            vec!["a".to_string(), "b".into(), "c".into()]
        );
    }

    #[test]
    fn quoted_with_commas_and_quotes() {
        assert_eq!(
            parse_line(r#""a,b","say ""hi""",c"#, 1).unwrap(),
            vec!["a,b".to_string(), r#"say "hi""#.into(), "c".into()]
        );
    }

    #[test]
    fn empty_fields_preserved() {
        assert_eq!(
            parse_line("a,,c,", 1).unwrap(),
            vec!["a".to_string(), String::new(), "c".into(), String::new()]
        );
    }

    #[test]
    fn crlf_tolerated() {
        assert_eq!(
            parse_line("a,b\r", 1).unwrap(),
            vec!["a".to_string(), "b".into()]
        );
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            parse_line("\"abc", 7),
            Err(DataError::Csv { line: 7, .. })
        ));
    }

    #[test]
    fn read_rows_skips_blank_lines() {
        let input = "a,b\n\n c,d\n";
        let rows = read_rows(input.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![" c".to_string(), "d".into()]);
    }

    #[test]
    fn round_trip() {
        let rows = vec![
            vec![
                "plain".to_string(),
                "with,comma".into(),
                "with\"quote".into(),
            ],
            vec![" leading".to_string(), String::new()],
        ];
        let mut buf = Vec::new();
        write_rows(&mut buf, &rows).unwrap();
        let back = read_rows(buf.as_slice()).unwrap();
        assert_eq!(back, rows);
    }
}
