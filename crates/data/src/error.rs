//! Error type for the data substrate.

use std::fmt;

/// Errors produced by data loading, generation, and manipulation.
#[derive(Debug)]
pub enum DataError {
    /// A dimension/shape requirement was violated.
    Shape(String),
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violation description.
        reason: String,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A statistical subroutine failed.
    Stats(otr_stats::StatsError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Shape(msg) => write!(f, "shape error: {msg}"),
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::Csv { line, reason } => write!(f, "CSV error at line {line}: {reason}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<otr_stats::StatsError> for DataError {
    fn from(e: otr_stats::StatsError) -> Self {
        DataError::Stats(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::Csv {
            line: 3,
            reason: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let io = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
