//! The Adult-income study data (Section V-B of the paper).
//!
//! The UCI Adult file cannot be downloaded in this offline environment, so
//! the default source is [`AdultSynth`]: a calibrated synthetic generator
//! reproducing the group-conditional structure the paper's Table II
//! depends on (see DESIGN.md §4 for the substitution argument):
//!
//! * `s = 1` for males (≈ 67% of the population, as in Adult);
//! * `u = 1` for college-level education or above (more common among
//!   males, the paper's "structural unfairness" which repair must NOT
//!   touch);
//! * `age` — truncated-normal group conditionals with a modest gender gap;
//! * `hours/week` — a 40-hour heap plus group-dependent spread, with a
//!   pronounced gender gap (males work longer hours in Adult), making it
//!   the more `s`-dependent feature exactly as in Table II.
//!
//! When a real `adult.data` CSV is available, [`load_adult_csv`] parses it
//! into the same `Dataset` shape, so every experiment can be re-run on the
//! genuine file without code changes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use otr_stats::dist::{Bernoulli, Categorical, ContinuousDistribution, TruncatedNormal};

use crate::dataset::{Dataset, LabelledPoint, SplitData};
use crate::error::{DataError, Result};

/// Calibrated synthetic Adult-like generator.
///
/// Feature layout of the produced [`Dataset`]: `x[0] = age`,
/// `x[1] = hours/week`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultSynth {
    /// `Pr[s = 1]` (male fraction). Adult: ≈ 0.67.
    pub pr_male: f64,
    /// `Pr[u = 1 | s]` (college-educated fraction), indexed by `s`.
    pub pr_college_given_s: [f64; 2],
    /// Age mean by `[u][s]`.
    pub age_mean: [[f64; 2]; 2],
    /// Age SD by `[u][s]`.
    pub age_sd: [[f64; 2]; 2],
    /// Hours mean (the non-heap component) by `[u][s]`.
    pub hours_mean: [[f64; 2]; 2],
    /// Hours SD (the non-heap component) by `[u][s]`.
    pub hours_sd: [[f64; 2]; 2],
    /// Probability of the 40-hour heap component, indexed by `s`. In the
    /// real file the exactly-40 atom is notably heavier for women (~0.45)
    /// than men (~0.28) — this asymmetry is what defeats the point-wise
    /// geometric repair on hours (paper Table II, observation iii).
    pub pr_forty_hour_heap: [f64; 2],
    /// Fractional shrink of group-mean gaps applied to archival data to
    /// emulate the non-stationarity the paper observes between its
    /// research and archive splits (0 = fully stationary).
    pub archive_drift: f64,
    /// Round features to whole numbers, as in the real Adult file (age and
    /// hours/week are integers there). Heavy ties — especially the 40-hour
    /// atom — are what break the point-wise geometric repair on hours in
    /// the paper's Table II.
    pub integer_features: bool,
}

impl Default for AdultSynth {
    fn default() -> Self {
        Self {
            pr_male: 0.67,
            pr_college_given_s: [0.22, 0.28],
            // [u][s]: rows u=0 (no college), u=1 (college+); cols s=0
            // (female), s=1 (male).
            age_mean: [[36.0, 37.5], [38.5, 41.5]],
            age_sd: [[14.0, 13.5], [11.0, 11.5]],
            hours_mean: [[35.0, 43.0], [40.0, 46.5]],
            hours_sd: [[10.0, 11.0], [9.0, 10.0]],
            pr_forty_hour_heap: [0.45, 0.28],
            archive_drift: 0.3,
            integer_features: true,
        }
    }
}

/// Age truncation bounds matching the Adult file.
pub const AGE_RANGE: (f64, f64) = (17.0, 90.0);
/// Hours-per-week truncation bounds matching the Adult file.
pub const HOURS_RANGE: (f64, f64) = (1.0, 99.0);

impl AdultSynth {
    /// Validate parameter domains.
    ///
    /// # Errors
    /// Rejects probabilities outside `(0,1)`, non-positive SDs, drift
    /// outside `[0,1)`.
    pub fn validate(&self) -> Result<()> {
        let probs = [
            self.pr_male,
            self.pr_college_given_s[0],
            self.pr_college_given_s[1],
            self.pr_forty_hour_heap[0],
            self.pr_forty_hour_heap[1],
        ];
        if probs.iter().any(|p| !(0.0 < *p && *p < 1.0)) {
            return Err(DataError::InvalidParameter {
                name: "probabilities",
                reason: "all probabilities must be in (0,1)".into(),
            });
        }
        for u in 0..2 {
            for s in 0..2 {
                if !(self.age_sd[u][s] > 0.0) || !(self.hours_sd[u][s] > 0.0) {
                    return Err(DataError::InvalidParameter {
                        name: "sd",
                        reason: format!("sd[u={u}][s={s}] must be positive"),
                    });
                }
            }
        }
        if !(0.0..1.0).contains(&self.archive_drift) {
            return Err(DataError::InvalidParameter {
                name: "archive_drift",
                reason: format!("must be in [0,1), got {}", self.archive_drift),
            });
        }
        Ok(())
    }

    /// Group-conditional means after applying a drift `gamma` that shrinks
    /// each group mean toward the `u`-conditional pooled mean (the archive
    /// population is "less gender-divided" than the research snapshot).
    fn drifted_mean(&self, base: &[[f64; 2]; 2], u: usize, s: usize, gamma: f64) -> f64 {
        let pooled = 0.5 * (base[u][0] + base[u][1]);
        base[u][s] * (1.0 - gamma) + pooled * gamma
    }

    fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R, gamma: f64) -> Result<LabelledPoint> {
        let s = u8::from(Bernoulli::new(self.pr_male)?.sample(rng));
        let u = u8::from(Bernoulli::new(self.pr_college_given_s[s as usize])?.sample(rng));
        let (ui, si) = (u as usize, s as usize);

        let age_mean = self.drifted_mean(&self.age_mean, ui, si, gamma);
        let age = TruncatedNormal::new(age_mean, self.age_sd[ui][si], AGE_RANGE.0, AGE_RANGE.1)?
            .sample(rng);

        let hours_mean = self.drifted_mean(&self.hours_mean, ui, si, gamma);
        // Mixture: a 40-hour heap (tight component) and the group-specific
        // spread component.
        let heap_p = self.pr_forty_hour_heap[si];
        let heap = Categorical::new(&[heap_p, 1.0 - heap_p])?;
        let hours = if heap.sample(rng) == 0 {
            // The 40-hour heap: a tight bump that integer rounding turns
            // into heavy ties at 39/40/41. We deliberately do NOT emit the
            // real file's exact single-value atom: a pure atom makes the
            // KDE-plug-in E estimator non-comparable across repair methods
            // (see EXPERIMENTS.md, Table II deviations).
            TruncatedNormal::new(40.0, 2.0, HOURS_RANGE.0, HOURS_RANGE.1)?.sample(rng)
        } else {
            TruncatedNormal::new(
                hours_mean,
                self.hours_sd[ui][si],
                HOURS_RANGE.0,
                HOURS_RANGE.1,
            )?
            .sample(rng)
        };

        let (age, hours) = if self.integer_features {
            (age.round(), hours.round())
        } else {
            (age, hours)
        };
        Ok(LabelledPoint {
            x: vec![age, hours],
            s,
            u,
        })
    }

    /// Generate a stationary sample of `n` observations (no drift).
    ///
    /// # Errors
    /// Requires `n ≥ 1` and valid parameters.
    pub fn sample_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Dataset> {
        self.validate()?;
        if n == 0 {
            return Err(DataError::InvalidParameter {
                name: "n",
                reason: "must be at least 1".into(),
            });
        }
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(self.sample_point(rng, 0.0)?);
        }
        Dataset::from_points(points)
    }

    /// Generate the paper's Table II split: `n_research` stationary
    /// research observations plus `n_archive` archival observations whose
    /// group gaps are shrunk by [`AdultSynth::archive_drift`] — the mild
    /// non-stationarity Section V-B attributes the research/archive `E`
    /// difference to.
    ///
    /// # Errors
    /// Requires both sizes ≥ 1 and valid parameters.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n_research: usize,
        n_archive: usize,
        rng: &mut R,
    ) -> Result<SplitData> {
        self.validate()?;
        if n_research == 0 || n_archive == 0 {
            return Err(DataError::InvalidParameter {
                name: "n_research/n_archive",
                reason: "both must be at least 1".into(),
            });
        }
        let mut research = Vec::with_capacity(n_research);
        for _ in 0..n_research {
            research.push(self.sample_point(rng, 0.0)?);
        }
        let mut archive = Vec::with_capacity(n_archive);
        for _ in 0..n_archive {
            archive.push(self.sample_point(rng, self.archive_drift)?);
        }
        Ok(SplitData {
            research: Dataset::from_points(research)?,
            archive: Dataset::from_points(archive)?,
        })
    }
}

/// Column indices in the raw UCI `adult.data` file.
mod col {
    pub const AGE: usize = 0;
    pub const EDUCATION_NUM: usize = 4;
    pub const SEX: usize = 9;
    pub const HOURS: usize = 12;
    pub const MIN_COLUMNS: usize = 15;
}

/// `education-num` threshold for "college level or above" (10 =
/// some-college in the UCI coding).
pub const COLLEGE_EDUCATION_NUM: f64 = 10.0;

/// Load the real UCI `adult.data` CSV into the `(age, hours)`-feature
/// `Dataset` used by the Table II experiment: `s = 1` ⇔ male,
/// `u = 1` ⇔ `education-num ≥ 10`.
///
/// Rows with missing fields (`?`) in the used columns are skipped, as the
/// paper's preprocessing drops NA rows.
///
/// # Errors
/// Propagates I/O and parse failures; requires at least one usable row.
pub fn load_adult_csv<R: std::io::BufRead>(reader: R) -> Result<Dataset> {
    let rows = crate::csv::read_rows(reader)?;
    let mut points = Vec::new();
    for (idx, row) in rows.iter().enumerate() {
        if row.len() < col::MIN_COLUMNS {
            continue; // trailing junk line in the UCI file
        }
        let get = |i: usize| row[i].trim();
        if [col::AGE, col::EDUCATION_NUM, col::SEX, col::HOURS]
            .iter()
            .any(|&i| get(i) == "?")
        {
            continue;
        }
        let age: f64 = get(col::AGE).parse().map_err(|_| DataError::Csv {
            line: idx + 1,
            reason: format!("bad age {:?}", get(col::AGE)),
        })?;
        let edu: f64 = get(col::EDUCATION_NUM)
            .parse()
            .map_err(|_| DataError::Csv {
                line: idx + 1,
                reason: format!("bad education-num {:?}", get(col::EDUCATION_NUM)),
            })?;
        let hours: f64 = get(col::HOURS).parse().map_err(|_| DataError::Csv {
            line: idx + 1,
            reason: format!("bad hours {:?}", get(col::HOURS)),
        })?;
        let s = u8::from(get(col::SEX).eq_ignore_ascii_case("male"));
        let u = u8::from(edu >= COLLEGE_EDUCATION_NUM);
        points.push(LabelledPoint {
            x: vec![age, hours],
            s,
            u,
        });
    }
    if points.is_empty() {
        return Err(DataError::Shape("no usable rows in adult CSV".into()));
    }
    Dataset::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_validate() {
        AdultSynth::default().validate().unwrap();
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut g = AdultSynth::default();
        g.pr_male = 1.0;
        assert!(g.validate().is_err());
        let mut g = AdultSynth::default();
        g.age_sd[0][0] = 0.0;
        assert!(g.validate().is_err());
        let mut g = AdultSynth::default();
        g.archive_drift = 1.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn feature_ranges_respected() {
        let g = AdultSynth::default();
        let mut rng = StdRng::seed_from_u64(1);
        let d = g.sample_dataset(5_000, &mut rng).unwrap();
        for p in d.points() {
            assert!(
                (AGE_RANGE.0..=AGE_RANGE.1).contains(&p.x[0]),
                "age {}",
                p.x[0]
            );
            assert!(
                (HOURS_RANGE.0..=HOURS_RANGE.1).contains(&p.x[1]),
                "hours {}",
                p.x[1]
            );
        }
    }

    #[test]
    fn gender_hours_gap_present() {
        let g = AdultSynth::default();
        let mut rng = StdRng::seed_from_u64(2);
        let d = g.sample_dataset(30_000, &mut rng).unwrap();
        for u in 0..2u8 {
            let f = d.feature_column(GroupKey { u, s: 0 }, 1).unwrap();
            let m = d.feature_column(GroupKey { u, s: 1 }, 1).unwrap();
            let mf: f64 = f.iter().sum::<f64>() / f.len() as f64;
            let mm: f64 = m.iter().sum::<f64>() / m.len() as f64;
            assert!(
                mm - mf > 2.0,
                "u={u}: male hours {mm} vs female {mf} — gap too small"
            );
        }
    }

    #[test]
    fn male_fraction_matches() {
        let g = AdultSynth::default();
        let mut rng = StdRng::seed_from_u64(3);
        let d = g.sample_dataset(30_000, &mut rng).unwrap();
        let male = d.points().iter().filter(|p| p.s == 1).count() as f64 / d.len() as f64;
        assert!((male - 0.67).abs() < 0.02, "male fraction {male}");
    }

    #[test]
    fn archive_drift_shrinks_gap() {
        let g = AdultSynth::default();
        let mut rng = StdRng::seed_from_u64(4);
        let split = g.generate(20_000, 20_000, &mut rng).unwrap();
        let gap = |d: &Dataset| {
            let f = d.feature_column(GroupKey { u: 0, s: 0 }, 1).unwrap();
            let m = d.feature_column(GroupKey { u: 0, s: 1 }, 1).unwrap();
            m.iter().sum::<f64>() / m.len() as f64 - f.iter().sum::<f64>() / f.len() as f64
        };
        let research_gap = gap(&split.research);
        let archive_gap = gap(&split.archive);
        assert!(
            archive_gap < research_gap * 0.9,
            "drift should shrink the gap: research {research_gap}, archive {archive_gap}"
        );
    }

    #[test]
    fn load_adult_csv_happy_path() {
        let content = "\
39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K
38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Female, 0, 0, 40, United-States, <=50K
";
        let d = load_adult_csv(content.as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.points()[0].x, vec![39.0, 40.0]);
        assert_eq!(d.points()[0].s, 1);
        assert_eq!(d.points()[0].u, 1); // education-num 13 >= 10
        assert_eq!(d.points()[2].s, 0);
        assert_eq!(d.points()[2].u, 0); // HS-grad, education-num 9
    }

    #[test]
    fn load_adult_csv_skips_missing_and_short_rows() {
        let content = "\
39, ?, 77516, Bachelors, 13, Never-married, ?, Not-in-family, White, Male, 0, 0, 40, United-States, <=50K
?, Private, 1, HS-grad, 9, Divorced, X, N, White, Female, 0, 0, 40, United-States, <=50K
junk
25, Private, 226802, 11th, 7, Never-married, Machine-op-inspct, Own-child, Black, Male, 0, 0, 40, United-States, <=50K
";
        let d = load_adult_csv(content.as_bytes()).unwrap();
        // Row 1 keeps (its '?' fields are not in the used columns), row 2
        // drops (age missing), row 'junk' drops (too short), row 4 keeps.
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn load_adult_csv_rejects_garbage_numbers() {
        let content = "x, A, 1, B, 13, C, D, E, F, Male, 0, 0, 40, G, H";
        assert!(load_adult_csv(content.as_bytes()).is_err());
    }

    #[test]
    fn load_adult_csv_rejects_empty() {
        assert!(load_adult_csv("".as_bytes()).is_err());
    }
}
