//! The labelled data-set container: observations `z = {x, s, u}` of the
//! paper's Equation (1), with the group bookkeeping that Algorithms 1 and 2
//! stratify over.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};

use crate::error::{DataError, Result};

/// A `(u, s)` group identifier — the paper's `u`-indexed population and
/// `s`-indexed subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey {
    /// Unprotected-attribute state `u ∈ {0, 1}`.
    pub u: u8,
    /// Protected-attribute state `s ∈ {0, 1}`.
    pub s: u8,
}

impl GroupKey {
    /// All four `(u, s)` groups in deterministic order.
    pub fn all() -> [GroupKey; 4] {
        [
            GroupKey { u: 0, s: 0 },
            GroupKey { u: 0, s: 1 },
            GroupKey { u: 1, s: 0 },
            GroupKey { u: 1, s: 1 },
        ]
    }

    /// The cache slot (`u * 2 + s`) of a valid binary key; `None` for
    /// labels outside `{0, 1}` (which belong to no group).
    #[inline]
    pub(crate) fn slot(self) -> Option<usize> {
        (self.u <= 1 && self.s <= 1).then(|| usize::from(self.u) * 2 + usize::from(self.s))
    }
}

/// One labelled observation: features `x ∈ ℝᵈ`, protected attribute `s`,
/// unprotected attribute `u`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelledPoint {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Protected attribute (0/1).
    pub s: u8,
    /// Unprotected attribute (0/1).
    pub u: u8,
}

/// An in-memory data set of labelled points with a fixed feature dimension.
///
/// Alongside the row store, the data set maintains per-`(u, s)`
/// **group-index caches** (row indices in insertion order), built once at
/// construction and kept current by [`Dataset::push`], so
/// [`Dataset::group`] / [`Dataset::feature_column`] never rescan all
/// points. The caches are derived state: serialization writes only
/// `{dim, points}` and deserialization rebuilds them.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    points: Vec<LabelledPoint>,
    /// Row indices per `(u, s)` group, slot-indexed `u * 2 + s`, each
    /// ascending (insertion order).
    groups: [Vec<usize>; 4],
}

impl Serialize for Dataset {
    fn to_value(&self) -> Value {
        // Same shape the derive produced before the group caches existed;
        // the caches are derived state and must not travel.
        Value::Obj(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("points".to_string(), self.points.to_value()),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let dim = usize::from_value(
            value
                .get("dim")
                .ok_or_else(|| serde::Error::missing_field("dim", "Dataset"))?,
        )?;
        let points = Vec::<LabelledPoint>::from_value(
            value
                .get("points")
                .ok_or_else(|| serde::Error::missing_field("points", "Dataset"))?,
        )?;
        Ok(Self::from_validated(dim, points))
    }
}

impl Dataset {
    /// Create an empty data set of feature dimension `dim ≥ 1`.
    ///
    /// # Errors
    /// Rejects `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(DataError::Shape("feature dimension must be >= 1".into()));
        }
        Ok(Self {
            dim,
            points: Vec::new(),
            groups: Default::default(),
        })
    }

    /// Assemble a data set from already-validated points, (re)building
    /// the group-index caches. Points with labels outside `{0, 1}` (only
    /// reachable through deserialization of foreign JSON) land in no
    /// group — the same observable behaviour the old scan-per-call
    /// accessors had.
    pub(crate) fn from_validated(dim: usize, points: Vec<LabelledPoint>) -> Self {
        let mut groups: [Vec<usize>; 4] = Default::default();
        for (i, p) in points.iter().enumerate() {
            if let Some(slot) = (GroupKey { u: p.u, s: p.s }).slot() {
                groups[slot].push(i);
            }
        }
        Self {
            dim,
            points,
            groups,
        }
    }

    /// Build from points, validating dimensions and label ranges.
    ///
    /// # Errors
    /// Rejects empty input, inconsistent dimensions, non-finite features,
    /// and labels outside `{0, 1}`.
    pub fn from_points(points: Vec<LabelledPoint>) -> Result<Self> {
        let Some(first) = points.first() else {
            return Err(DataError::Shape("cannot build an empty dataset".into()));
        };
        let dim = first.x.len();
        if dim == 0 {
            return Err(DataError::Shape("feature dimension must be >= 1".into()));
        }
        for (i, p) in points.iter().enumerate() {
            if p.x.len() != dim {
                return Err(DataError::Shape(format!(
                    "point {i} has dimension {} (expected {dim})",
                    p.x.len()
                )));
            }
            if p.x.iter().any(|v| !v.is_finite()) {
                return Err(DataError::Shape(format!(
                    "point {i} has non-finite features"
                )));
            }
            if p.s > 1 || p.u > 1 {
                return Err(DataError::Shape(format!(
                    "point {i} has labels (s={}, u={}) outside {{0,1}}",
                    p.s, p.u
                )));
            }
        }
        Ok(Self::from_validated(dim, points))
    }

    /// Feature dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when there are no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points.
    #[inline]
    pub fn points(&self) -> &[LabelledPoint] {
        &self.points
    }

    /// Append a point.
    ///
    /// # Errors
    /// Validates dimension, finiteness, and label range.
    pub fn push(&mut self, p: LabelledPoint) -> Result<()> {
        if p.x.len() != self.dim {
            return Err(DataError::Shape(format!(
                "point has dimension {} (expected {})",
                p.x.len(),
                self.dim
            )));
        }
        if p.x.iter().any(|v| !v.is_finite()) {
            return Err(DataError::Shape("point has non-finite features".into()));
        }
        if p.s > 1 || p.u > 1 {
            return Err(DataError::Shape("labels must be in {0,1}".into()));
        }
        if let Some(slot) = (GroupKey { u: p.u, s: p.s }).slot() {
            self.groups[slot].push(self.points.len());
        }
        self.points.push(p);
        Ok(())
    }

    /// Row indices of the `(u, s)` group, in insertion order — the
    /// precomputed cache behind [`Self::group`] and
    /// [`Self::feature_column`]. Labels outside `{0, 1}` name no group
    /// and yield an empty slice.
    #[inline]
    pub fn group_indices(&self, key: GroupKey) -> &[usize] {
        match key.slot() {
            Some(slot) => &self.groups[slot],
            None => &[],
        }
    }

    /// Iterator over points in the `(u, s)` group (cached indices; no
    /// full scan).
    pub fn group(&self, key: GroupKey) -> impl Iterator<Item = &LabelledPoint> {
        self.group_indices(key)
            .iter()
            .map(move |&i| &self.points[i])
    }

    /// Number of points in the `(u, s)` group — O(1) via the cache.
    pub fn group_len(&self, key: GroupKey) -> usize {
        self.group_indices(key).len()
    }

    /// Feature-`k` column of a `(u, s)` group — the `x_{R,u,s,k}` input of
    /// Algorithm 1. A gather through the cached group indices; no scan.
    ///
    /// # Errors
    /// Rejects `k >= dim`.
    pub fn feature_column(&self, key: GroupKey, k: usize) -> Result<Vec<f64>> {
        if k >= self.dim {
            return Err(DataError::Shape(format!(
                "feature index {k} out of range (dim {})",
                self.dim
            )));
        }
        Ok(self
            .group_indices(key)
            .iter()
            .map(|&i| self.points[i].x[k])
            .collect())
    }

    /// Feature-`k` column of all points with unprotected attribute `u`
    /// (both `s` groups pooled).
    ///
    /// # Errors
    /// Rejects `k >= dim`.
    pub fn feature_column_u(&self, u: u8, k: usize) -> Result<Vec<f64>> {
        if k >= self.dim {
            return Err(DataError::Shape(format!(
                "feature index {k} out of range (dim {})",
                self.dim
            )));
        }
        Ok(self
            .points
            .iter()
            .filter(|p| p.u == u)
            .map(|p| p.x[k])
            .collect())
    }

    /// Empirical `Pr[u = 1]`.
    pub fn prob_u1(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.u == 1).count() as f64 / self.points.len() as f64
    }

    /// Empirical `Pr[s = 0 | u]`.
    pub fn prob_s0_given_u(&self, u: u8) -> f64 {
        let in_u: Vec<_> = self.points.iter().filter(|p| p.u == u).collect();
        if in_u.is_empty() {
            return 0.0;
        }
        in_u.iter().filter(|p| p.s == 0).count() as f64 / in_u.len() as f64
    }

    /// Randomly split into `(research, archive)` with `n_research` points
    /// in the research part (shuffled with `rng`).
    ///
    /// # Errors
    /// Requires `0 < n_research < len`.
    pub fn split_research_archive<R: Rng + ?Sized>(
        &self,
        n_research: usize,
        rng: &mut R,
    ) -> Result<SplitData> {
        if n_research == 0 || n_research >= self.len() {
            return Err(DataError::InvalidParameter {
                name: "n_research",
                reason: format!(
                    "must be in (0, {}) for a dataset of {} points, got {n_research}",
                    self.len(),
                    self.len()
                ),
            });
        }
        let mut shuffled = self.points.clone();
        shuffled.shuffle(rng);
        let archive_points = shuffled.split_off(n_research);
        Ok(SplitData {
            research: Dataset::from_validated(self.dim, shuffled),
            archive: Dataset::from_validated(self.dim, archive_points),
        })
    }

    /// Concatenate with another data set of the same dimension (the
    /// composite `X = X_R ∪ X_A` used in Figure 4).
    ///
    /// # Errors
    /// Rejects dimension mismatch.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.dim != other.dim {
            return Err(DataError::Shape(format!(
                "cannot concat dims {} and {}",
                self.dim, other.dim
            )));
        }
        let mut points = self.points.clone();
        points.extend(other.points.iter().cloned());
        Ok(Dataset::from_validated(self.dim, points))
    }

    /// Map all feature vectors through `f`, preserving labels (used by
    /// drift injection and repair application).
    ///
    /// # Errors
    /// Rejects outputs of a different dimension or with non-finite values.
    pub fn map_features(&self, mut f: impl FnMut(&LabelledPoint) -> Vec<f64>) -> Result<Dataset> {
        let mut points = Vec::with_capacity(self.points.len());
        for p in &self.points {
            let x = f(p);
            if x.len() != self.dim || x.iter().any(|v| !v.is_finite()) {
                return Err(DataError::Shape(
                    "mapped features must keep dimension and be finite".into(),
                ));
            }
            points.push(LabelledPoint { x, s: p.s, u: p.u });
        }
        Ok(Dataset::from_validated(self.dim, points))
    }
}

/// A research/archive split — the paper's `X_R` (small, fully labelled,
/// used to design the repair) and `X_A` (large, repaired off-sample).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitData {
    /// The on-sample research data `X_R`.
    pub research: Dataset,
    /// The off-sample archival data `X_A`.
    pub archive: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pt(x: &[f64], s: u8, u: u8) -> LabelledPoint {
        LabelledPoint {
            x: x.to_vec(),
            s,
            u,
        }
    }

    fn small() -> Dataset {
        Dataset::from_points(vec![
            pt(&[0.0, 1.0], 0, 0),
            pt(&[1.0, 2.0], 1, 0),
            pt(&[2.0, 3.0], 0, 1),
            pt(&[3.0, 4.0], 1, 1),
            pt(&[4.0, 5.0], 1, 1),
        ])
        .unwrap()
    }

    #[test]
    fn from_points_validates() {
        assert!(Dataset::from_points(vec![]).is_err());
        assert!(Dataset::from_points(vec![pt(&[], 0, 0)]).is_err());
        assert!(Dataset::from_points(vec![pt(&[1.0], 0, 0), pt(&[1.0, 2.0], 0, 0)]).is_err());
        assert!(Dataset::from_points(vec![pt(&[f64::NAN], 0, 0)]).is_err());
        assert!(Dataset::from_points(vec![pt(&[1.0], 2, 0)]).is_err());
        assert!(Dataset::from_points(vec![pt(&[1.0], 0, 3)]).is_err());
    }

    #[test]
    fn group_slicing() {
        let d = small();
        assert_eq!(d.group_len(GroupKey { u: 1, s: 1 }), 2);
        assert_eq!(d.group_len(GroupKey { u: 0, s: 0 }), 1);
        let col = d.feature_column(GroupKey { u: 1, s: 1 }, 0).unwrap();
        assert_eq!(col, vec![3.0, 4.0]);
        assert!(d.feature_column(GroupKey { u: 1, s: 1 }, 5).is_err());
    }

    #[test]
    fn feature_column_u_pools_s() {
        let d = small();
        let col = d.feature_column_u(1, 1).unwrap();
        assert_eq!(col, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn empirical_probabilities() {
        let d = small();
        assert!((d.prob_u1() - 3.0 / 5.0).abs() < 1e-15);
        assert!((d.prob_s0_given_u(0) - 0.5).abs() < 1e-15);
        assert!((d.prob_s0_given_u(1) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn split_partitions_everything() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(1);
        let split = d.split_research_archive(2, &mut rng).unwrap();
        assert_eq!(split.research.len(), 2);
        assert_eq!(split.archive.len(), 3);
        // Multiset equality: rebuild and compare sorted feature sums.
        let mut all: Vec<f64> = split
            .research
            .points()
            .iter()
            .chain(split.archive.points())
            .map(|p| p.x[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn split_rejects_degenerate_sizes() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.split_research_archive(0, &mut rng).is_err());
        assert!(d.split_research_archive(5, &mut rng).is_err());
    }

    #[test]
    fn concat_and_dim_check() {
        let d = small();
        let both = d.concat(&d).unwrap();
        assert_eq!(both.len(), 10);
        let other = Dataset::from_points(vec![pt(&[1.0], 0, 0)]).unwrap();
        assert!(d.concat(&other).is_err());
    }

    #[test]
    fn push_validates() {
        let mut d = Dataset::new(2).unwrap();
        assert!(d.push(pt(&[1.0, 2.0], 0, 1)).is_ok());
        assert!(d.push(pt(&[1.0], 0, 1)).is_err());
        assert!(d.push(pt(&[1.0, f64::INFINITY], 0, 1)).is_err());
        assert!(d.push(pt(&[1.0, 2.0], 9, 1)).is_err());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn map_features_preserves_labels() {
        let d = small();
        let shifted = d
            .map_features(|p| p.x.iter().map(|v| v + 10.0).collect())
            .unwrap();
        assert_eq!(shifted.len(), d.len());
        for (a, b) in shifted.points().iter().zip(d.points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
            assert!((a.x[0] - b.x[0] - 10.0).abs() < 1e-15);
        }
        assert!(d.map_features(|_| vec![f64::NAN, 0.0]).is_err());
        assert!(d.map_features(|_| vec![0.0]).is_err());
    }

    #[test]
    fn group_cache_tracks_constructors_and_push() {
        let mut d = small();
        assert_eq!(d.group_indices(GroupKey { u: 1, s: 1 }), &[3, 4]);
        assert_eq!(d.group_indices(GroupKey { u: 0, s: 1 }), &[1]);
        // Labels outside {0,1} name no group.
        assert!(d.group_indices(GroupKey { u: 2, s: 0 }).is_empty());
        d.push(pt(&[9.0, 9.0], 1, 1)).unwrap();
        assert_eq!(d.group_indices(GroupKey { u: 1, s: 1 }), &[3, 4, 5]);
        // A rejected push must not grow the cache.
        assert!(d.push(pt(&[9.0], 1, 1)).is_err());
        assert_eq!(d.group_len(GroupKey { u: 1, s: 1 }), 3);
        // Derived constructors rebuild the cache consistently.
        let both = d.concat(&d).unwrap();
        for key in GroupKey::all() {
            assert_eq!(both.group_len(key), 2 * d.group_len(key));
            for (&i, p) in both.group_indices(key).iter().zip(both.group(key)) {
                assert_eq!(&both.points()[i], p);
            }
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_group_cache() {
        use serde::{Deserialize as _, Serialize as _};
        let d = small();
        let back = Dataset::from_value(&d.to_value()).unwrap();
        assert_eq!(back, d);
        for key in GroupKey::all() {
            assert_eq!(back.group_indices(key), d.group_indices(key));
        }
    }

    #[test]
    fn group_key_all_is_exhaustive() {
        let keys = GroupKey::all();
        assert_eq!(keys.len(), 4);
        let d = small();
        let total: usize = keys.iter().map(|&k| d.group_len(k)).sum();
        assert_eq!(total, d.len());
    }
}
