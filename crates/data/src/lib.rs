//! # otr-data — data substrate for `ot-fair-repair`
//!
//! In-memory labelled data sets and the generators behind both of the
//! paper's test beds:
//!
//! * [`dataset`] — the [`Dataset`] container of `(x ∈ ℝᵈ, s, u)`
//!   observations (`Z = {X, S, U}`, Equation 1), with `(u,s)`-group
//!   slicing, feature-column extraction, and research/archive splitting.
//! * [`columnar`] — the same data in column-major (struct-of-arrays)
//!   layout ([`ColumnarDataset`]): one contiguous column per feature,
//!   packed label bytes, precomputed group indices. The cache-friendly
//!   substrate of the batch repair kernels; conversions both ways are
//!   lossless.
//! * [`synth`] — the bivariate-Gaussian simulation of Section V-A
//!   ([`SimulationSpec`]).
//! * [`adult`] — the Adult-income study (Section V-B): a calibrated
//!   synthetic generator ([`adult::AdultSynth`]) standing in for the UCI
//!   file (unavailable offline; see DESIGN.md §4), plus a loader for the
//!   real `adult.data` CSV when present.
//! * [`csv`] — a dependency-free CSV reader/writer.
//! * [`drift`] — distribution-shift injectors used to stress the paper's
//!   stationarity assumption (Section V-A2a discussion).
//!
//! ## Example
//!
//! Simulate the paper's Section V-A population and split it into the
//! small research set and the archival torrent:
//!
//! ```
//! use otr_data::SimulationSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let split = SimulationSpec::paper_defaults()
//!     .generate(200, 500, &mut rng)
//!     .unwrap();
//! assert_eq!(split.research.len(), 200);
//! assert_eq!(split.archive.len(), 500);
//! assert_eq!(split.archive.dim(), 2);
//! ```

pub mod adult;
pub mod columnar;
pub mod csv;
pub mod dataset;
pub mod drift;
pub mod error;
pub mod labelled_csv;
pub mod synth;

pub use adult::AdultSynth;
pub use columnar::ColumnarDataset;
pub use dataset::{Dataset, GroupKey, LabelledPoint, SplitData};
pub use drift::Drift;
pub use error::DataError;
pub use labelled_csv::{
    read_labelled_csv, read_labelled_csv_columnar, write_labelled_csv, write_labelled_csv_columnar,
};
pub use synth::SimulationSpec;
