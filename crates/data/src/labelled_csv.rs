//! Labelled-dataset CSV interchange: the on-disk format of the `otrepair`
//! CLI.
//!
//! Layout: a header row `s,u,x0,x1,…` followed by one row per
//! observation. `s` and `u` must be `0`/`1`; features are finite floats.
//! Column order is fixed (`s`, `u`, then features) so that plans and data
//! sets exchanged between the design and deployment sides cannot be
//! silently misaligned.

use std::io::{BufRead, Write};

use crate::csv::{parse_line, write_rows};
use crate::dataset::{Dataset, LabelledPoint};
use crate::error::{DataError, Result};

/// Read a labelled data set from CSV (header required).
///
/// # Errors
/// Reports malformed headers, label values outside `{0,1}`, non-numeric
/// or non-finite features, and inconsistent row widths with line numbers.
pub fn read_labelled_csv<R: BufRead>(reader: R) -> Result<Dataset> {
    let mut lines = reader.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                break parse_line(&line, idx + 1)?;
            }
            None => {
                return Err(DataError::Csv {
                    line: 0,
                    reason: "empty file (expected a header row)".into(),
                })
            }
        }
    };
    if header.len() < 3
        || header[0].trim() != "s"
        || header[1].trim() != "u"
        || !header[2..]
            .iter()
            .enumerate()
            .all(|(k, name)| name.trim() == format!("x{k}"))
    {
        return Err(DataError::Csv {
            line: 1,
            reason: format!("header must be `s,u,x0,x1,…`, got {:?}", header.join(",")),
        });
    }
    let d = header.len() - 2;

    let mut points = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(&line, idx + 1)?;
        if fields.len() != d + 2 {
            return Err(DataError::Csv {
                line: idx + 1,
                reason: format!("expected {} fields, found {}", d + 2, fields.len()),
            });
        }
        let parse_label = |raw: &str, name: &str| -> Result<u8> {
            match raw.trim() {
                "0" => Ok(0),
                "1" => Ok(1),
                other => Err(DataError::Csv {
                    line: idx + 1,
                    reason: format!("{name} must be 0 or 1, got {other:?}"),
                }),
            }
        };
        let s = parse_label(&fields[0], "s")?;
        let u = parse_label(&fields[1], "u")?;
        let mut x = Vec::with_capacity(d);
        for (k, raw) in fields[2..].iter().enumerate() {
            let v: f64 = raw.trim().parse().map_err(|_| DataError::Csv {
                line: idx + 1,
                reason: format!("x{k} is not a number: {raw:?}"),
            })?;
            if !v.is_finite() {
                return Err(DataError::Csv {
                    line: idx + 1,
                    reason: format!("x{k} is not finite: {v}"),
                });
            }
            x.push(v);
        }
        points.push(LabelledPoint { x, s, u });
    }
    Dataset::from_points(points)
}

/// Write a labelled data set as CSV (with header).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_labelled_csv<W: Write>(writer: W, data: &Dataset) -> Result<()> {
    let mut rows = Vec::with_capacity(data.len() + 1);
    let mut header = vec!["s".to_string(), "u".to_string()];
    header.extend((0..data.dim()).map(|k| format!("x{k}")));
    rows.push(header);
    for p in data.points() {
        let mut row = vec![p.s.to_string(), p.u.to_string()];
        row.extend(p.x.iter().map(|v| format!("{v}")));
        rows.push(row);
    }
    write_rows(writer, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_points(vec![
            LabelledPoint {
                x: vec![1.5, -2.0],
                s: 0,
                u: 1,
            },
            LabelledPoint {
                x: vec![0.25, 100.0],
                s: 1,
                u: 0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let data = sample();
        let mut buf = Vec::new();
        write_labelled_csv(&mut buf, &data).unwrap();
        let back = read_labelled_csv(buf.as_slice()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_missing_or_bad_header() {
        assert!(read_labelled_csv("".as_bytes()).is_err());
        assert!(read_labelled_csv("a,b,c\n0,1,2".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u\n0,1".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x1\n0,1,2".as_bytes()).is_err()); // must start at x0
    }

    #[test]
    fn rejects_bad_rows_with_line_numbers() {
        let err = read_labelled_csv("s,u,x0\n0,1,1.0\n2,0,1.0".as_bytes());
        match err {
            Err(DataError::Csv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected CSV error, got {other:?}"),
        }
        assert!(read_labelled_csv("s,u,x0\n0,1".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x0\n0,1,abc".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x0\n0,1,inf".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = read_labelled_csv("s,u,x0\n\n0,1,3.5\n\n1,0,2.5\n".as_bytes()).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.points()[0].x, vec![3.5]);
    }
}
