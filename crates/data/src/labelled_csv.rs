//! Labelled-dataset CSV interchange: the on-disk format of the `otrepair`
//! CLI.
//!
//! Layout: a header row `s,u,x0,x1,…` followed by one row per
//! observation. `s` and `u` must be `0`/`1`; features are finite floats.
//! Column order is fixed (`s`, `u`, then features) so that plans and data
//! sets exchanged between the design and deployment sides cannot be
//! silently misaligned.

use std::io::{BufRead, Write};

use crate::columnar::ColumnarDataset;
use crate::csv::{for_each_row, write_rows};
use crate::dataset::{Dataset, LabelledPoint};
use crate::error::{DataError, Result};

/// Validate the fixed `s,u,x0,x1,…` header; returns the feature count.
fn validate_header(header: &[String]) -> Result<usize> {
    if header.len() < 3
        || header[0].trim() != "s"
        || header[1].trim() != "u"
        || !header[2..]
            .iter()
            .enumerate()
            .all(|(k, name)| name.trim() == format!("x{k}"))
    {
        return Err(DataError::Csv {
            line: 1,
            reason: format!("header must be `s,u,x0,x1,…`, got {:?}", header.join(",")),
        });
    }
    Ok(header.len() - 2)
}

fn parse_label(raw: &str, name: &str, line: usize) -> Result<u8> {
    match raw.trim() {
        "0" => Ok(0),
        "1" => Ok(1),
        other => Err(DataError::Csv {
            line,
            reason: format!("{name} must be 0 or 1, got {other:?}"),
        }),
    }
}

fn parse_feature(raw: &str, k: usize, line: usize) -> Result<f64> {
    let v: f64 = raw.trim().parse().map_err(|_| DataError::Csv {
        line,
        reason: format!("x{k} is not a number: {raw:?}"),
    })?;
    if !v.is_finite() {
        return Err(DataError::Csv {
            line,
            reason: format!("x{k} is not finite: {v}"),
        });
    }
    Ok(v)
}

/// Read a labelled data set from CSV (header required).
///
/// # Errors
/// Reports malformed headers, label values outside `{0,1}`, non-numeric
/// or non-finite features, and inconsistent row widths with line numbers.
pub fn read_labelled_csv<R: BufRead>(reader: R) -> Result<Dataset> {
    let mut dim: Option<usize> = None;
    let mut points = Vec::new();
    for_each_row(reader, |line_no, fields| {
        let Some(d) = dim else {
            dim = Some(validate_header(fields)?);
            return Ok(());
        };
        let (s, u, x) = parse_data_row(fields, d, line_no, Vec::with_capacity(d))?;
        points.push(LabelledPoint { x, s, u });
        Ok(())
    })?;
    if dim.is_none() {
        return Err(DataError::Csv {
            line: 0,
            reason: "empty file (expected a header row)".into(),
        });
    }
    Dataset::from_points(points)
}

/// Parse one data row against the expected width; features are appended
/// to `x` (passed in so streaming callers can reuse the buffer).
fn parse_data_row(
    fields: &[String],
    d: usize,
    line_no: usize,
    mut x: Vec<f64>,
) -> Result<(u8, u8, Vec<f64>)> {
    if fields.len() != d + 2 {
        return Err(DataError::Csv {
            line: line_no,
            reason: format!("expected {} fields, found {}", d + 2, fields.len()),
        });
    }
    let s = parse_label(&fields[0], "s", line_no)?;
    let u = parse_label(&fields[1], "u", line_no)?;
    for (k, raw) in fields[2..].iter().enumerate() {
        x.push(parse_feature(raw, k, line_no)?);
    }
    Ok((s, u, x))
}

/// Read a labelled data set straight into columnar (struct-of-arrays)
/// layout: each row's fields are parsed and appended to the per-feature
/// columns without ever materializing `LabelledPoint` rows, and the line
/// and field buffers are reused, so peak memory beyond the columns
/// themselves is O(widest row). Accepts exactly the inputs
/// [`read_labelled_csv`] accepts and produces the columnar image of the
/// same data set.
///
/// # Errors
/// Same conditions (and messages) as [`read_labelled_csv`].
pub fn read_labelled_csv_columnar<R: BufRead>(reader: R) -> Result<ColumnarDataset> {
    let mut data: Option<ColumnarDataset> = None;
    let mut x: Vec<f64> = Vec::new();
    for_each_row(reader, |line_no, fields| {
        let Some(cols) = data.as_mut() else {
            data = Some(ColumnarDataset::new(validate_header(fields)?)?);
            return Ok(());
        };
        let mut buf = std::mem::take(&mut x);
        buf.clear();
        let (s, u, buf) = parse_data_row(fields, cols.dim(), line_no, buf)?;
        let res = cols.push_row(&buf, s, u);
        x = buf;
        res
    })?;
    match data {
        Some(cols) if !cols.is_empty() => Ok(cols),
        // Match the row path: a header with zero data rows is rejected
        // (`Dataset::from_points` refuses an empty point set).
        Some(_) => Err(DataError::Shape("cannot build an empty dataset".into())),
        None => Err(DataError::Csv {
            line: 0,
            reason: "empty file (expected a header row)".into(),
        }),
    }
}

/// Write a labelled data set as CSV (with header).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_labelled_csv<W: Write>(writer: W, data: &Dataset) -> Result<()> {
    let mut rows = Vec::with_capacity(data.len() + 1);
    let mut header = vec!["s".to_string(), "u".to_string()];
    header.extend((0..data.dim()).map(|k| format!("x{k}")));
    rows.push(header);
    for p in data.points() {
        let mut row = vec![p.s.to_string(), p.u.to_string()];
        row.extend(p.x.iter().map(|v| format!("{v}")));
        rows.push(row);
    }
    write_rows(writer, &rows)
}

/// Write a columnar data set as CSV (with header), streaming row by row
/// without materializing the row-major image. Labels and finite floats
/// never need CSV escaping, so the output is byte-identical to
/// [`write_labelled_csv`] on the equivalent [`Dataset`].
///
/// # Errors
/// Propagates I/O failures.
pub fn write_labelled_csv_columnar<W: Write>(mut writer: W, data: &ColumnarDataset) -> Result<()> {
    write!(writer, "s,u")?;
    for k in 0..data.dim() {
        write!(writer, ",x{k}")?;
    }
    writeln!(writer)?;
    let (s, u, cols) = (data.s(), data.u(), data.feature_columns());
    for i in 0..data.len() {
        write!(writer, "{},{}", s[i], u[i])?;
        for col in cols {
            write!(writer, ",{}", col[i])?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_points(vec![
            LabelledPoint {
                x: vec![1.5, -2.0],
                s: 0,
                u: 1,
            },
            LabelledPoint {
                x: vec![0.25, 100.0],
                s: 1,
                u: 0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let data = sample();
        let mut buf = Vec::new();
        write_labelled_csv(&mut buf, &data).unwrap();
        let back = read_labelled_csv(buf.as_slice()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_missing_or_bad_header() {
        assert!(read_labelled_csv("".as_bytes()).is_err());
        assert!(read_labelled_csv("a,b,c\n0,1,2".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u\n0,1".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x1\n0,1,2".as_bytes()).is_err()); // must start at x0
    }

    #[test]
    fn rejects_bad_rows_with_line_numbers() {
        let err = read_labelled_csv("s,u,x0\n0,1,1.0\n2,0,1.0".as_bytes());
        match err {
            Err(DataError::Csv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected CSV error, got {other:?}"),
        }
        assert!(read_labelled_csv("s,u,x0\n0,1".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x0\n0,1,abc".as_bytes()).is_err());
        assert!(read_labelled_csv("s,u,x0\n0,1,inf".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = read_labelled_csv("s,u,x0\n\n0,1,3.5\n\n1,0,2.5\n".as_bytes()).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.points()[0].x, vec![3.5]);
    }

    #[test]
    fn columnar_ingest_matches_row_path() {
        let input = "s,u,x0,x1\n\n0,1,3.5,-2\n1,0,2.5,1e3\n\n1,1,0.125,7\n";
        let rows = read_labelled_csv(input.as_bytes()).unwrap();
        let cols = read_labelled_csv_columnar(input.as_bytes()).unwrap();
        assert_eq!(cols.to_dataset(), rows);
        assert_eq!(cols, ColumnarDataset::from_dataset(&rows));
    }

    #[test]
    fn columnar_ingest_rejects_what_row_path_rejects() {
        for bad in [
            "",
            "a,b,c\n0,1,2",
            "s,u,x1\n0,1,2",
            "s,u,x0\n",        // header but zero data rows
            "s,u,x0\n0,1",     // short row
            "s,u,x0\n2,0,1.0", // bad label
            "s,u,x0\n0,1,abc", // non-numeric
            "s,u,x0\n0,1,inf", // non-finite
        ] {
            assert!(
                read_labelled_csv(bad.as_bytes()).is_err(),
                "row path accepted {bad:?}"
            );
            assert!(
                read_labelled_csv_columnar(bad.as_bytes()).is_err(),
                "columnar path accepted {bad:?}"
            );
        }
    }

    #[test]
    fn columnar_write_is_byte_identical_to_row_write() {
        let data = sample();
        let cols = ColumnarDataset::from_dataset(&data);
        let mut row_buf = Vec::new();
        write_labelled_csv(&mut row_buf, &data).unwrap();
        let mut col_buf = Vec::new();
        write_labelled_csv_columnar(&mut col_buf, &cols).unwrap();
        assert_eq!(row_buf, col_buf);
        let back = read_labelled_csv_columnar(col_buf.as_slice()).unwrap();
        assert_eq!(back, cols);
    }
}
