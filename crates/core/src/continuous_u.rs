//! Repair with a **continuous unprotected attribute** `u ∈ ℝ` — the
//! generalization the paper's Section VI singles out ("the important
//! generalization to continuous unprotected attributes, u ∈ ℝ^{n_u}").
//!
//! The conditional-independence target `(X ⊥ S) | U` now conditions on a
//! real-valued `U` (e.g. years of education instead of a college flag).
//! We discretize `U` into `B` **quantile bins** on the research data —
//! equal-mass bins keep every stratum estimable, unlike equal-width ones —
//! and design one per-feature Algorithm-1 plan per bin, reusing the binary
//! planner's stratum machinery verbatim. Repair routes each archival point
//! through its `u`-bin's plans.
//!
//! As `B → ∞` this approaches true continuous conditioning; in practice
//! `B` is capped by the research budget (each bin needs both `s` groups
//! populated), the same small-`nR` trade-off as Figure 3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use otr_par::{splitmix_seed, try_par_map_indexed};

use crate::config::RepairConfig;
use crate::error::{RepairError, Result};
use crate::plan::{FeaturePlan, RepairPlanner};

/// An observation with a continuous unprotected attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousUPoint {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Protected attribute (0/1).
    pub s: u8,
    /// Continuous unprotected attribute.
    pub u: f64,
}

/// A repair plan stratified over quantile bins of a continuous `u`.
#[derive(Debug, Clone)]
pub struct ContinuousURepairer {
    /// Interior bin edges (length `bins − 1`), strictly non-decreasing.
    edges: Vec<f64>,
    /// Plans indexed `[bin][feature]`.
    plans: Vec<Vec<FeaturePlan>>,
    dim: usize,
    /// Worker threads for [`Self::repair_batch_par`], captured from the
    /// design config (`0` = auto / `OTR_THREADS`); retune with
    /// [`Self::set_threads`]. Runtime policy — never changes output.
    threads: usize,
}

impl ContinuousURepairer {
    /// Design per-bin plans from `s`-labelled research data with
    /// continuous `u`.
    ///
    /// # Errors
    /// * Requires `bins ≥ 2`, consistent dimensions, finite `u`.
    /// * Propagates per-stratum design failures (e.g. a bin missing one
    ///   `s` group) — choose `bins` so that `nR / (2·bins)` comfortably
    ///   exceeds `config.min_group_size` for the rarer group.
    pub fn design(
        research: &[ContinuousUPoint],
        bins: usize,
        config: RepairConfig,
    ) -> Result<Self> {
        config.validate()?;
        if bins < 2 {
            return Err(RepairError::InvalidParameter {
                name: "bins",
                reason: format!("need at least 2 bins, got {bins}"),
            });
        }
        let Some(first) = research.first() else {
            return Err(RepairError::InvalidParameter {
                name: "research",
                reason: "empty research data".into(),
            });
        };
        let dim = first.x.len();
        if dim == 0 {
            return Err(RepairError::InvalidParameter {
                name: "research",
                reason: "zero-dimensional features".into(),
            });
        }
        for (i, p) in research.iter().enumerate() {
            if p.x.len() != dim || p.x.iter().any(|v| !v.is_finite()) {
                return Err(RepairError::InvalidParameter {
                    name: "research",
                    reason: format!("point {i} has invalid features"),
                });
            }
            if !p.u.is_finite() {
                return Err(RepairError::InvalidParameter {
                    name: "research",
                    reason: format!("point {i} has non-finite u"),
                });
            }
            if p.s > 1 {
                return Err(RepairError::InvalidParameter {
                    name: "research",
                    reason: format!("point {i} has s = {} outside {{0,1}}", p.s),
                });
            }
        }

        // Quantile bin edges on the research u values (type-7).
        let mut us: Vec<f64> = research.iter().map(|p| p.u).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("finite u"));
        let edges: Vec<f64> = (1..bins)
            .map(|b| {
                let q = b as f64 / bins as f64;
                let idx = q * (us.len() - 1) as f64;
                let lo = idx.floor() as usize;
                let hi = idx.ceil() as usize;
                let frac = idx - lo as f64;
                us[lo] * (1.0 - frac) + us[hi] * frac
            })
            .collect();

        // Assign points to bins and design each stratum.
        let bin_of = |u: f64| -> usize { edges.iter().take_while(|&&e| u >= e).count() };
        let planner = RepairPlanner::new(config);
        let mut plans = Vec::with_capacity(bins);
        for b in 0..bins {
            let mut feature_plans = Vec::with_capacity(dim);
            for k in 0..dim {
                let mut xs: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
                for p in research {
                    if bin_of(p.u) == b {
                        xs[p.s as usize].push(p.x[k]);
                    }
                }
                // The binary planner reports bin identity through the u
                // slot; clamp to u8 range for readability of errors.
                feature_plans.push(planner.design_feature_columns(xs, b.min(1) as u8, k)?);
            }
            plans.push(feature_plans);
        }
        Ok(Self {
            edges,
            plans,
            dim,
            threads: config.threads,
        })
    }

    /// Retune the worker-thread count used by [`Self::repair_batch_par`]
    /// (`0` = auto). Wall-clock only; repaired bytes never change.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Number of `u` bins.
    pub fn bins(&self) -> usize {
        self.plans.len()
    }

    /// The interior bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Bin index for a `u` value (clamped to the designed range).
    pub fn bin_of(&self, u: f64) -> usize {
        self.edges.iter().take_while(|&&e| u >= e).count()
    }

    /// Repair one observation through its bin's plans (Algorithm 2 per
    /// feature).
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point<R: Rng + ?Sized>(
        &self,
        point: &ContinuousUPoint,
        rng: &mut R,
    ) -> Result<ContinuousUPoint> {
        if point.x.len() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "point dimension {} vs design dimension {}",
                point.x.len(),
                self.dim
            )));
        }
        if point.s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "label s = {} outside {{0,1}}",
                point.s
            )));
        }
        let b = self.bin_of(point.u);
        let mut x = Vec::with_capacity(self.dim);
        for (k, &v) in point.x.iter().enumerate() {
            x.push(self.plans[b][k].repair_value(point.s, v, rng)?);
        }
        Ok(ContinuousUPoint {
            x,
            s: point.s,
            u: point.u,
        })
    }

    /// Repair a batch of observations.
    ///
    /// # Errors
    /// Fails on the first invalid point.
    pub fn repair_batch<R: Rng + ?Sized>(
        &self,
        points: &[ContinuousUPoint],
        rng: &mut R,
    ) -> Result<Vec<ContinuousUPoint>> {
        points.iter().map(|p| self.repair_point(p, rng)).collect()
    }

    /// Row-parallel batch repair with per-row SplitMix64 RNG streams
    /// derived from `seed` — the continuous-`u` analogue of
    /// [`crate::RepairPlan::repair_dataset_par`]. Row `i` draws from
    /// `StdRng::seed_from_u64(splitmix_seed(seed, i))` whatever thread
    /// executes it, so the output is **bit-identical for any thread
    /// count** (set at design time from `config.threads`, retunable via
    /// [`Self::set_threads`]).
    ///
    /// # Errors
    /// Reports the lowest-index invalid point, as a sequential sweep
    /// would.
    pub fn repair_batch_par(
        &self,
        points: &[ContinuousUPoint],
        seed: u64,
    ) -> Result<Vec<ContinuousUPoint>> {
        try_par_map_indexed(points.len(), self.threads, |i| {
            let mut rng = StdRng::seed_from_u64(splitmix_seed(seed, i as u64));
            self.repair_point(&points[i], &mut rng)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_ot::wasserstein::w2;
    use otr_ot::DiscreteDistribution;
    use otr_stats::dist::{ContinuousDistribution, Normal};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Population with continuous u ~ Uniform(0,1): the s-shift grows
    /// with u — `x | s,u ~ N(u + s·(0.5 + u), 0.5²)` — so no single
    /// binary split captures the dependence.
    fn population(n: usize, seed: u64) -> Vec<ContinuousUPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0, 0.5).unwrap();
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let s = u8::from(rng.gen::<f64>() < 0.6);
                let shift = if s == 1 { 0.5 + u } else { 0.0 };
                let x0 = u + shift + noise.sample(&mut rng);
                let x1 = -u + 0.5 * shift + noise.sample(&mut rng);
                ContinuousUPoint {
                    x: vec![x0, x1],
                    s,
                    u,
                }
            })
            .collect()
    }

    /// Mean per-bin W2 between the s-conditional empirical feature
    /// distributions — the dependence proxy for continuous u.
    fn per_bin_dependence(repairer: &ContinuousURepairer, points: &[ContinuousUPoint]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for b in 0..repairer.bins() {
            for k in 0..2usize {
                let xs0: Vec<f64> = points
                    .iter()
                    .filter(|p| p.s == 0 && repairer.bin_of(p.u) == b)
                    .map(|p| p.x[k])
                    .collect();
                let xs1: Vec<f64> = points
                    .iter()
                    .filter(|p| p.s == 1 && repairer.bin_of(p.u) == b)
                    .map(|p| p.x[k])
                    .collect();
                if xs0.len() < 5 || xs1.len() < 5 {
                    continue;
                }
                let mu = DiscreteDistribution::empirical(&xs0).unwrap();
                let nu = DiscreteDistribution::empirical(&xs1).unwrap();
                total += w2(&mu, &nu).unwrap();
                count += 1;
            }
        }
        total / count as f64
    }

    #[test]
    fn quantile_bins_are_equal_mass() {
        let research = population(4_000, 1);
        let repairer =
            ContinuousURepairer::design(&research, 5, RepairConfig::with_n_q(30)).unwrap();
        assert_eq!(repairer.bins(), 5);
        assert_eq!(repairer.edges().len(), 4);
        let mut counts = vec![0usize; 5];
        for p in &research {
            counts[repairer.bin_of(p.u)] += 1;
        }
        for c in counts {
            let frac = c as f64 / research.len() as f64;
            assert!((frac - 0.2).abs() < 0.02, "bin fraction {frac}");
        }
    }

    #[test]
    fn repair_reduces_per_bin_dependence() {
        let research = population(3_000, 2);
        let archive = population(6_000, 3);
        let repairer =
            ContinuousURepairer::design(&research, 4, RepairConfig::with_n_q(40)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let repaired = repairer.repair_batch(&archive, &mut rng).unwrap();

        let before = per_bin_dependence(&repairer, &archive);
        let after = per_bin_dependence(&repairer, &repaired);
        assert!(before > 0.4, "unrepaired dependence {before}");
        assert!(
            after < before / 3.0,
            "continuous-u repair must quench per-bin dependence: {before} -> {after}"
        );
    }

    #[test]
    fn u_and_s_pass_through_unchanged() {
        let research = population(2_000, 4);
        let repairer =
            ContinuousURepairer::design(&research, 3, RepairConfig::with_n_q(25)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let batch = population(200, 5);
        let repaired = repairer.repair_batch(&batch, &mut rng).unwrap();
        for (a, b) in repaired.iter().zip(&batch) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn out_of_range_u_clamps_to_boundary_bins() {
        let research = population(2_000, 6);
        let repairer =
            ContinuousURepairer::design(&research, 4, RepairConfig::with_n_q(25)).unwrap();
        assert_eq!(repairer.bin_of(-100.0), 0);
        assert_eq!(repairer.bin_of(100.0), repairer.bins() - 1);
    }

    #[test]
    fn design_rejects_bad_inputs() {
        let research = population(500, 7);
        assert!(ContinuousURepairer::design(&research, 1, RepairConfig::with_n_q(20)).is_err());
        assert!(ContinuousURepairer::design(&[], 3, RepairConfig::with_n_q(20)).is_err());
        let mut bad = research.clone();
        bad[0].u = f64::NAN;
        assert!(ContinuousURepairer::design(&bad, 3, RepairConfig::with_n_q(20)).is_err());
        let mut bad = research.clone();
        bad[0].s = 2;
        assert!(ContinuousURepairer::design(&bad, 3, RepairConfig::with_n_q(20)).is_err());
        // Too many bins for the data: some bin loses an s-group.
        assert!(
            ContinuousURepairer::design(&research[..40], 20, RepairConfig::with_n_q(20)).is_err()
        );
    }

    #[test]
    fn parallel_batch_identical_across_thread_counts() {
        let research = population(2_000, 11);
        let mut repairer =
            ContinuousURepairer::design(&research, 3, RepairConfig::with_n_q(25)).unwrap();
        let batch = population(600, 12);
        let mut reference: Option<Vec<ContinuousUPoint>> = None;
        for threads in [1usize, 2, 7] {
            repairer.set_threads(threads);
            let out = repairer.repair_batch_par(&batch, 31).unwrap();
            for (a, b) in out.iter().zip(&batch) {
                assert_eq!(a.s, b.s);
                assert_eq!(a.u, b.u);
            }
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads = {threads}"),
            }
        }
        // The lowest-index invalid point is reported, as sequentially.
        let mut bad = batch.clone();
        bad[5].s = 2;
        bad[100].s = 3;
        let err = repairer.repair_batch_par(&bad, 31).unwrap_err();
        assert!(err.to_string().contains("s = 2"), "got: {err}");
    }

    #[test]
    fn repair_point_rejects_mismatches() {
        let research = population(1_000, 9);
        let repairer =
            ContinuousURepairer::design(&research, 3, RepairConfig::with_n_q(20)).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let bad_dim = ContinuousUPoint {
            x: vec![0.0],
            s: 0,
            u: 0.5,
        };
        assert!(repairer.repair_point(&bad_dim, &mut rng).is_err());
        let bad_s = ContinuousUPoint {
            x: vec![0.0, 0.0],
            s: 2,
            u: 0.5,
        };
        assert!(repairer.repair_point(&bad_s, &mut rng).is_err());
    }
}
