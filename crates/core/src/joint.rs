//! Joint (bivariate) distributional repair — the extension the paper's
//! Section VI anticipates for intra-feature correlation structure.
//!
//! Algorithm 1's per-feature stratification cannot repair dependence that
//! lives in the correlation between features: if the `s`-conditionals
//! share all marginals but differ in correlation sign, every per-feature
//! plan is (near) the identity. This module lifts Algorithm 1 to the 2-D
//! product support:
//!
//! 1. product grid `Q² = Q_x × Q_y` over the pooled research range;
//! 2. bivariate-KDE pmfs `µ_{u,s}` on `Q²` (Equation 11 in 2-D);
//! 3. entropic fixed-support `W₂` barycentre `ν` on `Q²`
//!    (iterative Bregman projections — the quantile construction has no
//!    2-D analogue);
//! 4. Sinkhorn plans `π*_{u,s} : µ_{u,s} → ν` under squared Euclidean
//!    cost on `ℝ²`, rounded to exact feasibility;
//! 5. repair by nearest-cell lookup + the same multinomial row draw as
//!    Algorithm 2 (Equation 15), now over joint grid states.
//!
//! Cost: the supports grow from `nQ` to `nQ²` states, so this is
//! practical only at coarse resolutions — exactly the curse-of-dimension
//! trade-off the paper cites for its per-feature design. The
//! `ablation_joint` experiment measures both sides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use otr_data::{Dataset, GroupKey, LabelledPoint};
use otr_ot::{
    entropic_barycentre_points2d, BarycentreConfig, CostMatrix, OtPlan, Solver1d as _,
    SolverBackend,
};
use otr_par::{splitmix_seed, try_par_map_indexed};
use otr_stats::dist::Categorical;
use otr_stats::GaussianKde2d;

use crate::error::{RepairError, Result};

/// Configuration of the joint repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointRepairConfig {
    /// Grid points **per dimension** (total support = `n_q²` states).
    pub n_q: usize,
    /// Entropic regularization of the fixed-support barycentre (the
    /// iterative-Bregman construction is inherently entropic, whatever
    /// solver designs the plans).
    pub epsilon: f64,
    /// Geodesic position of the repair target.
    pub t: f64,
    /// Minimum research observations per `(u, s)` group.
    pub min_group_size: usize,
    /// OT solver backend for the plans `π*_{u,s} : µ_{u,s} → ν`.
    /// `None` (the default) means entropic Sinkhorn at this config's
    /// [`epsilon`](Self::epsilon), so tuning `epsilon` alone keeps
    /// governing both barycentre and plans as it always did.
    /// [`SolverBackend::ExactMonotone`] is rejected at design time: the
    /// product support has no 1-D order.
    pub solver: Option<SolverBackend>,
    /// Worker threads for stratum design and parallel dataset repair
    /// (`0` = auto: `OTR_THREADS` env or available parallelism).
    pub threads: usize,
}

impl Default for JointRepairConfig {
    fn default() -> Self {
        Self {
            n_q: 16,
            epsilon: 0.05,
            t: 0.5,
            min_group_size: 10,
            solver: None,
            threads: 0,
        }
    }
}

impl JointRepairConfig {
    /// The backend that will design the plans: the explicit override, or
    /// Sinkhorn at [`epsilon`](Self::epsilon).
    pub fn plan_solver(&self) -> SolverBackend {
        self.solver.unwrap_or(SolverBackend::Sinkhorn {
            epsilon: self.epsilon,
        })
    }
}

/// One `u`-stratum of the joint plan.
#[derive(Debug, Clone)]
struct JointStratum {
    /// Axis grids.
    gx: Vec<f64>,
    gy: Vec<f64>,
    /// Flattened grid points `(x_i, y_j)` in row-major order.
    points: Vec<(f64, f64)>,
    /// Per-`s` plans onto the barycentre.
    plans: [OtPlan; 2],
    /// Per-row alias samplers.
    samplers: [Vec<Categorical>; 2],
}

/// A designed joint repair for 2-feature data.
#[derive(Debug, Clone)]
pub struct JointRepairPlan {
    config: JointRepairConfig,
    strata: Vec<JointStratum>, // indexed by u
}

impl JointRepairPlan {
    /// Design the joint plan from research data (2-D Algorithm 1).
    ///
    /// # Errors
    /// Requires `dim == 2`, valid config, adequately sized groups, and
    /// non-degenerate feature spreads.
    pub fn design(research: &Dataset, config: JointRepairConfig) -> Result<Self> {
        if research.dim() != 2 {
            return Err(RepairError::PlanMismatch(format!(
                "joint repair needs d = 2, got d = {}",
                research.dim()
            )));
        }
        if config.n_q < 4 {
            return Err(RepairError::InvalidParameter {
                name: "n_q",
                reason: format!("must be at least 4, got {}", config.n_q),
            });
        }
        if !(config.epsilon > 0.0) {
            return Err(RepairError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be positive, got {}", config.epsilon),
            });
        }
        if !(0.0..=1.0).contains(&config.t) {
            return Err(RepairError::InvalidParameter {
                name: "t",
                reason: format!("must be in [0,1], got {}", config.t),
            });
        }
        let solver = config.plan_solver();
        solver.validate()?;
        // Reject 1-D-only backends before the expensive KDE and
        // barycentre stages run, not at the final solve.
        if solver == SolverBackend::ExactMonotone {
            return Err(RepairError::InvalidParameter {
                name: "solver",
                reason: "the exact monotone backend requires 1-D ordered supports; \
                         joint repair needs `Simplex` or `Sinkhorn`"
                    .into(),
            });
        }

        // The two u-strata are independent (separate KDEs, barycentres,
        // and Sinkhorn solves — the expensive part of joint design);
        // design them concurrently with a deterministic error order.
        let strata = try_par_map_indexed(2, config.threads, |u| {
            Self::design_stratum(research, u as u8, &config)
        })?;
        Ok(Self { config, strata })
    }

    fn design_stratum(
        research: &Dataset,
        u: u8,
        config: &JointRepairConfig,
    ) -> Result<JointStratum> {
        let mut cols: [[Vec<f64>; 2]; 2] = Default::default();
        for s in 0..2u8 {
            for k in 0..2usize {
                cols[s as usize][k] = research.feature_column(GroupKey { u, s }, k)?;
            }
            if cols[s as usize][0].len() < config.min_group_size {
                return Err(RepairError::InsufficientResearchData {
                    u,
                    s,
                    found: cols[s as usize][0].len(),
                    needed: config.min_group_size,
                });
            }
        }
        let axis = |k: usize| -> Result<Vec<f64>> {
            let lo = cols[0][k]
                .iter()
                .chain(&cols[1][k])
                .copied()
                .fold(f64::INFINITY, f64::min);
            let hi = cols[0][k]
                .iter()
                .chain(&cols[1][k])
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            if !(lo < hi) {
                return Err(RepairError::InvalidParameter {
                    name: "research data",
                    reason: format!("feature {k} of group u={u} has zero spread"),
                });
            }
            Ok((0..config.n_q)
                .map(|i| lo + (hi - lo) * i as f64 / (config.n_q - 1) as f64)
                .collect())
        };
        let gx = axis(0)?;
        let gy = axis(1)?;
        let points: Vec<(f64, f64)> = gx
            .iter()
            .flat_map(|&x| gy.iter().map(move |&y| (x, y)))
            .collect();

        // 2-D KDE pmfs with a positivity floor (cf. plan.rs).
        let mut pmfs: Vec<Vec<f64>> = Vec::with_capacity(2);
        for s in 0..2usize {
            let kde = GaussianKde2d::fit(&cols[s][0], &cols[s][1])?;
            let mut pmf = kde.pmf_on_grid(&gx, &gy)?;
            let floor = pmf.iter().copied().fold(0.0, f64::max) * 1e-12;
            for p in &mut pmf {
                *p = p.max(floor);
            }
            let total: f64 = pmf.iter().sum();
            for p in &mut pmf {
                *p /= total;
            }
            pmfs.push(pmf);
        }

        // Entropic W2 barycentre on the fixed product support (iterative
        // Bregman projections with the 2-D Gibbs kernel, O(nQ⁴) matvecs
        // chunked over config.threads — see otr_ot::barycentre).
        let (bary, _diagnostics) = entropic_barycentre_points2d(
            &[&pmfs[0], &pmfs[1]],
            &[1.0 - config.t, config.t],
            &points,
            &BarycentreConfig {
                eps: config.epsilon,
                max_iters: 5_000,
                tol: 1e-9,
                threads: config.threads,
                parallel_min_cells: None,
            },
        )?;

        // Plans µ_s -> ν under squared Euclidean cost on R², through the
        // configured backend (the seam rejects backends that need 1-D
        // structure and owns the Sinkhorn fallback policy); the solver's
        // in-kernel scaling updates ride the same thread setting.
        let cost = CostMatrix::from_fn(&points, &points, |a, b| {
            let dx = a.0 - b.0;
            let dy = a.1 - b.1;
            dx * dx + dy * dy
        })?;
        let mut plans: Vec<OtPlan> = Vec::with_capacity(2);
        for pmf in &pmfs {
            plans.push(config.plan_solver().solve_with_cost_threads(
                pmf,
                &bary,
                &cost,
                config.threads,
            )?);
        }
        let plans: [OtPlan; 2] = [plans.remove(0), plans.remove(0)];

        let mut samplers: [Vec<Categorical>; 2] = [Vec::new(), Vec::new()];
        for s in 0..2usize {
            for i in 0..plans[s].rows() {
                samplers[s].push(Categorical::new(plans[s].row(i)).map_err(|e| {
                    RepairError::InvalidParameter {
                        name: "joint plan row",
                        reason: format!("(u={u}, s={s}) row {i}: {e}"),
                    }
                })?);
            }
        }

        Ok(JointStratum {
            gx,
            gy,
            points,
            plans,
            samplers,
        })
    }

    /// The per-dimension grid size.
    pub fn n_q(&self) -> usize {
        self.config.n_q
    }

    /// Retune the worker-thread count of a designed plan (deployment
    /// knob; `0` = auto). Has no effect on repair output, only on
    /// wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Expected squared-Euclidean transport cost of the `(u, s)` plan —
    /// the design-time estimate of how far that subgroup's mass moves
    /// (a joint-repair damage diagnostic).
    ///
    /// # Errors
    /// Rejects labels outside `{0, 1}`.
    pub fn expected_transport_cost(&self, u: u8, s: u8) -> Result<f64> {
        if u > 1 || s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "no joint plan for (u={u}, s={s})"
            )));
        }
        let stratum = &self.strata[u as usize];
        let cost = CostMatrix::from_fn(&stratum.points, &stratum.points, |a, b| {
            let dx = a.0 - b.0;
            let dy = a.1 - b.1;
            dx * dx + dy * dy
        })?;
        Ok(stratum.plans[s as usize].transport_cost(&cost)?)
    }

    /// Repair one labelled point jointly.
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point<R: Rng + ?Sized>(
        &self,
        point: &LabelledPoint,
        rng: &mut R,
    ) -> Result<LabelledPoint> {
        if point.x.len() != 2 {
            return Err(RepairError::PlanMismatch(format!(
                "joint repair needs d = 2, got d = {}",
                point.x.len()
            )));
        }
        let stratum = &self.strata[point.u as usize];
        let cell = |grid: &[f64], v: f64| -> usize {
            let n = grid.len();
            if v <= grid[0] {
                return 0;
            }
            if v >= grid[n - 1] {
                return n - 1;
            }
            let step = (grid[n - 1] - grid[0]) / (n - 1) as f64;
            (((v - grid[0]) / step) + 0.5).floor() as usize % n
        };
        let i = cell(&stratum.gx, point.x[0]);
        let j = cell(&stratum.gy, point.x[1]);
        let row = i * stratum.gy.len() + j;
        let target = stratum.samplers[point.s as usize][row].sample(rng);
        let (x, y) = stratum.points[target];
        Ok(LabelledPoint {
            x: vec![x, y],
            s: point.s,
            u: point.u,
        })
    }

    /// Repair an entire data set jointly.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Result<Dataset> {
        let points = data
            .points()
            .iter()
            .map(|p| self.repair_point(p, rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(Dataset::from_points(points)?)
    }

    /// Repair an entire data set jointly, in parallel, with per-row
    /// SplitMix64 RNG streams derived from `seed` — the joint analogue
    /// of [`crate::RepairPlan::repair_dataset_par`], bit-identical for
    /// any `config.threads` setting.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_par(&self, data: &Dataset, seed: u64) -> Result<Dataset> {
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), self.config.threads, |i| {
            let mut rng = StdRng::seed_from_u64(splitmix_seed(seed, i as u64));
            self.repair_point(&pts[i], &mut rng)
        })?;
        Ok(Dataset::from_points(points)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::SimulationSpec;
    use otr_fairness::JointDependence;
    use otr_stats::linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlation_spec() -> SimulationSpec {
        let cov = |rho: f64| Matrix::from_rows(2, 2, vec![1.0, rho, rho, 1.0]).unwrap();
        SimulationSpec {
            means: [
                [vec![0.0, 0.0], vec![0.0, 0.0]],
                [vec![0.0, 0.0], vec![0.0, 0.0]],
            ],
            sigma: 1.0,
            covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
            pr_u0: 0.5,
            pr_s0_given_u: [0.4, 0.4],
        }
    }

    #[test]
    fn joint_repair_quenches_correlation_dependence() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(1);
        let split = spec.generate(1_500, 3_000, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&split.research, JointRepairConfig::default()).unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

        let jd = JointDependence::default();
        let before = jd.evaluate(&split.archive).unwrap();
        let after = jd.evaluate(&repaired).unwrap();
        assert!(
            after < before * 0.5,
            "joint repair must reduce joint E: {before} -> {after}"
        );
    }

    #[test]
    fn per_feature_repair_misses_correlation_dependence() {
        use crate::{RepairConfig, RepairPlanner};
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(2);
        let split = spec.generate(1_500, 3_000, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
            .design(&split.research)
            .unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        let jd = JointDependence::default();
        let before = jd.evaluate(&split.archive).unwrap();
        let after = jd.evaluate(&repaired).unwrap();
        // The marginal repair cannot remove correlation-borne dependence.
        assert!(
            after > before * 0.4,
            "per-feature repair unexpectedly removed joint dependence: {before} -> {after}"
        );
    }

    #[test]
    fn repaired_points_live_on_product_grid() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(3);
        let split = spec.generate(800, 500, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&split.research, JointRepairConfig::default()).unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        assert_eq!(repaired.len(), split.archive.len());
        for p in repaired.points().iter().take(100) {
            let stratum = &plan.strata[p.u as usize];
            assert!(stratum.gx.iter().any(|&g| (g - p.x[0]).abs() < 1e-9));
            assert!(stratum.gy.iter().any(|&g| (g - p.x[1]).abs() < 1e-9));
        }
    }

    #[test]
    fn expected_transport_cost_positive_and_bounded() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(5);
        let research = spec.sample_dataset(900, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&research, JointRepairConfig::default()).unwrap();
        for u in 0..2u8 {
            for s in 0..2u8 {
                let c = plan.expected_transport_cost(u, s).unwrap();
                // Rotating correlation by 90 degrees moves mass about one
                // unit on average; the cost must be positive but far below
                // the grid diameter squared.
                assert!(c > 0.0, "(u={u}, s={s}): {c}");
                assert!(c < 20.0, "(u={u}, s={s}): {c}");
            }
        }
        assert!(plan.expected_transport_cost(2, 0).is_err());
    }

    #[test]
    fn respects_configured_backend() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(6);
        let research = spec.sample_dataset(600, &mut rng).unwrap();

        // Without an override, the plans follow the config's epsilon.
        let cfg = JointRepairConfig::default();
        assert_eq!(
            cfg.plan_solver(),
            SolverBackend::Sinkhorn {
                epsilon: cfg.epsilon
            }
        );

        // The exact simplex is a valid joint backend (coarse grid: the
        // simplex is O(n³)-class on n_q² states).
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 6;
        cfg.solver = Some(SolverBackend::Simplex);
        let plan = JointRepairPlan::design(&research, cfg).unwrap();
        let repaired = plan.repair_dataset(&research, &mut rng).unwrap();
        assert_eq!(repaired.len(), research.len());

        // A backend needing 1-D structure is rejected, not ignored.
        let mut cfg = JointRepairConfig::default();
        cfg.solver = Some(SolverBackend::ExactMonotone);
        assert!(JointRepairPlan::design(&research, cfg).is_err());

        // Invalid Sinkhorn epsilon is caught by the seam's validation.
        let mut cfg = JointRepairConfig::default();
        cfg.solver = Some(SolverBackend::Sinkhorn { epsilon: -0.5 });
        assert!(JointRepairPlan::design(&research, cfg).is_err());
    }

    #[test]
    fn parallel_joint_repair_identical_across_thread_counts() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(7);
        let split = spec.generate(400, 600, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8; // keep the n_q² Sinkhorn solves cheap
        let mut plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let mut reference: Option<Dataset> = None;
        for threads in [1usize, 2, 7] {
            plan.set_threads(threads);
            let out = plan.repair_dataset_par(&split.archive, 11).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(out.points(), r.points(), "threads = {threads}"),
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(4);
        let research = spec.sample_dataset(800, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 2;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.epsilon = 0.0;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.t = 2.0;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.min_group_size = 10_000;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
    }
}
