//! Joint (multivariate) distributional repair — the extension the
//! paper's Section VI anticipates for intra-feature correlation
//! structure.
//!
//! Algorithm 1's per-feature stratification cannot repair dependence that
//! lives in the correlation between features: if the `s`-conditionals
//! share all marginals but differ in correlation sign, every per-feature
//! plan is (near) the identity. This module lifts Algorithm 1 to the
//! `d`-axis product support (`d ≥ 2`; the paper's bivariate setting is
//! the `d = 2` special case and its designs are byte-for-byte
//! unchanged):
//!
//! 1. product grid `Q^d = Q_1 × … × Q_d` over the pooled research range;
//! 2. `d`-variate-KDE pmfs `µ_{u,s}` on `Q^d` (Equation 11 in `d`
//!    dimensions);
//! 3. entropic fixed-support `W₂` barycentre `ν` on `Q^d`
//!    (iterative Bregman projections — the quantile construction has no
//!    multivariate analogue);
//! 4. Sinkhorn plans `π*_{u,s} : µ_{u,s} → ν` under squared Euclidean
//!    cost on `ℝ^d`, rounded to exact feasibility;
//! 5. repair by nearest-cell lookup + the same multinomial row draw as
//!    Algorithm 2 (Equation 15), now over joint grid states.
//!
//! Cost: the support grows from `nQ` to `nQ^d` states, so the **dense**
//! design is practical only at coarse resolutions — exactly the
//! curse-of-dimension trade-off the paper cites for its per-feature
//! design. The squared-Euclidean cost on a product grid factorizes,
//! though, so the default (`KernelChoice::Auto`) runs every entropic
//! matvec as `d` axis passes — `O(nQ^d · d·nQ)` work against the dense
//! `O(nQ^{2d})` — which is what makes a 3-feature `nQ = 16` design
//! (16.8M-cell dense kernel) tractable. The `ablation_joint` experiment
//! measures both sides of the marginal-vs-joint trade.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use otr_data::{Dataset, GroupKey, LabelledPoint};
use otr_ot::{
    entropic_barycentre_grid_nd, BarycentreConfig, BarycentreDiagnostics, CostMatrix, EpsSchedule,
    KernelChoice, OtPlan, SinkhornDuals, Solver1d as _, SolverBackend,
};
use otr_par::{splitmix_seed, try_par_map_indexed};
use otr_stats::dist::Categorical;
use otr_stats::GaussianKdeNd;

use crate::error::{RepairError, Result};

/// Configuration of the joint repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointRepairConfig {
    /// Grid points **per dimension** (total support = `n_q^d` states
    /// for `d`-feature data).
    pub n_q: usize,
    /// Entropic regularization of the fixed-support barycentre (the
    /// iterative-Bregman construction is inherently entropic, whatever
    /// solver designs the plans).
    pub epsilon: f64,
    /// Geodesic position of the repair target.
    pub t: f64,
    /// Minimum research observations per `(u, s)` group.
    pub min_group_size: usize,
    /// OT solver backend for the plans `π*_{u,s} : µ_{u,s} → ν`.
    /// `None` (the default) means entropic Sinkhorn at this config's
    /// [`epsilon`](Self::epsilon) (annealed along
    /// [`eps_scaling`](Self::eps_scaling)), so tuning `epsilon` alone
    /// keeps governing both barycentre and plans as it always did.
    /// [`SolverBackend::ExactMonotone`] is rejected at design time: the
    /// product support has no 1-D order.
    #[serde(default)]
    pub solver: Option<SolverBackend>,
    /// ε-annealing schedule for the design's `nQ^{2d}`-cell kernels: drives
    /// the entropic barycentre *and* (when [`solver`](Self::solver) is
    /// `None`) the Sinkhorn plans, warm-starting duals across stages.
    /// **On by default** — at the paper's `ε = 0.05` it cuts joint
    /// design time severalfold; set `None` for the cold single-ε solve.
    /// The schedule is a pure function of this config, so it never
    /// affects the thread-count byte-identity of the design.
    #[serde(default)]
    pub eps_scaling: Option<EpsSchedule>,
    /// Gibbs-kernel representation of the design's entropic solves
    /// (barycentre + Sinkhorn plans). The joint cost is squared
    /// Euclidean on the `d`-axis self-product grid, so it factorizes
    /// as `K₁ ⊗ … ⊗ K_d`: `Auto` (the default; the `OTR_KERNEL`
    /// environment variable can override it) runs every kernel matvec
    /// as `d` `O(nQ^d · nQ)` axis passes instead of the `O(nQ^{2d})`
    /// dense sweep — the joint design's dominant cost after ε-scaling,
    /// and the only representation that fits in memory beyond coarse
    /// `d = 3` grids. Either representation stays byte-identical across
    /// thread counts; the two representations group sums differently,
    /// so they agree to solver tolerance, not bitwise.
    #[serde(default)]
    pub kernel: KernelChoice,
    /// Worker threads for stratum design and parallel dataset repair
    /// (`0` = auto: `OTR_THREADS` env or available parallelism).
    #[serde(skip)]
    pub threads: usize,
}

impl Default for JointRepairConfig {
    fn default() -> Self {
        Self {
            n_q: 16,
            epsilon: 0.05,
            t: 0.5,
            min_group_size: 10,
            solver: None,
            eps_scaling: Some(EpsSchedule::default()),
            kernel: KernelChoice::Auto,
            threads: 0,
        }
    }
}

impl JointRepairConfig {
    /// The backend that will design the plans: the explicit override, or
    /// Sinkhorn at [`epsilon`](Self::epsilon) annealed along
    /// [`eps_scaling`](Self::eps_scaling).
    pub fn plan_solver(&self) -> SolverBackend {
        self.solver.unwrap_or(SolverBackend::Sinkhorn {
            epsilon: self.epsilon,
            eps_scaling: self.eps_scaling,
        })
    }
}

/// One `u`-stratum of the joint plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JointStratum {
    /// Legacy 2-feature axis-grid fields. Still written (and read) for
    /// `d = 2` plans so artifacts keep round-tripping with older
    /// readers; empty for `d ≥ 3`. [`JointStratum::compile`] folds them
    /// into [`axes`](Self::axes) when only they are present.
    #[serde(default)]
    gx: Vec<f64>,
    #[serde(default)]
    gy: Vec<f64>,
    /// Axis grids, one per feature (`d ≥ 2` entries). The product
    /// support is their Cartesian product, flattened row-major with the
    /// **last axis fastest**.
    #[serde(default)]
    axes: Vec<Vec<f64>>,
    /// Flattened grid-point coordinates, `d` per state, in row-major
    /// state order (derived from the axis grids; rebuilt by
    /// [`JointStratum::compile`]).
    #[serde(skip)]
    points: Vec<f64>,
    /// Per-`s` plans onto the barycentre.
    plans: [OtPlan; 2],
    /// Converged Sinkhorn dual potentials of the solves that produced
    /// `plans` (per `s`; `None` under the simplex backend). Persisted so
    /// a re-design against drifted data can warm-start; absent in plan
    /// JSON written before the lifecycle existed (defaults to cold).
    #[serde(default)]
    duals: [Option<SinkhornDuals>; 2],
    /// Per-row alias samplers (derived; rebuilt by
    /// [`JointStratum::compile`]).
    #[serde(skip)]
    samplers: [Vec<Categorical>; 2],
}

impl JointStratum {
    /// (Re)build the derived state — the flattened product support and
    /// the per-row alias samplers — from the designed plan, validating
    /// the stratum's shape first (deserialized plans are user-supplied
    /// files: a grid/plan mismatch must be a clean error here, never an
    /// out-of-bounds panic at repair time). Must run after
    /// deserialization; `JointRepairPlan::design` and
    /// [`JointRepairPlan::from_json`] do it automatically.
    fn compile(&mut self, u: u8) -> Result<()> {
        if self.axes.is_empty() {
            // Legacy 2-feature plan JSON carries `gx`/`gy` only.
            if self.gx.is_empty() && self.gy.is_empty() {
                return Err(RepairError::PlanMismatch(format!(
                    "joint stratum u={u}: no axis grids (`axes` and legacy `gx`/`gy` all empty)"
                )));
            }
            self.axes = vec![self.gx.clone(), self.gy.clone()];
        } else if self.axes.len() == 2 && self.gx.is_empty() && self.gy.is_empty() {
            // Keep the legacy pair coherent for 2-feature plans, so a
            // re-serialized plan stays readable by older tooling.
            self.gx = self.axes[0].clone();
            self.gy = self.axes[1].clone();
        }
        if self.axes.len() < 2 {
            return Err(RepairError::PlanMismatch(format!(
                "joint stratum u={u}: needs at least 2 feature axes, got {}",
                self.axes.len()
            )));
        }
        if let Some((k, g)) = self.axes.iter().enumerate().find(|(_, g)| g.len() < 2) {
            return Err(RepairError::PlanMismatch(format!(
                "joint stratum u={u}: axis {k} needs at least 2 states, got {}",
                g.len()
            )));
        }
        let n: usize = self.axes.iter().map(Vec::len).product();
        for (s, plan) in self.plans.iter().enumerate() {
            if plan.rows() != n || plan.cols() != n {
                return Err(RepairError::PlanMismatch(format!(
                    "joint stratum u={u}, s={s}: plan is {}×{} but the product grid has {n} states",
                    plan.rows(),
                    plan.cols()
                )));
            }
        }
        let d = self.axes.len();
        self.points = Vec::with_capacity(n * d);
        let mut idx = vec![0usize; d];
        for _ in 0..n {
            for (a, &i) in idx.iter().enumerate() {
                self.points.push(self.axes[a][i]);
            }
            for a in (0..d).rev() {
                idx[a] += 1;
                if idx[a] < self.axes[a].len() {
                    break;
                }
                idx[a] = 0;
            }
        }
        for s in 0..2usize {
            let mut rows = Vec::with_capacity(self.plans[s].rows());
            for i in 0..self.plans[s].rows() {
                rows.push(Categorical::new(self.plans[s].row(i)).map_err(|e| {
                    RepairError::InvalidParameter {
                        name: "joint plan row",
                        reason: format!("(u={u}, s={s}) row {i}: {e}"),
                    }
                })?);
            }
            self.samplers[s] = rows;
        }
        Ok(())
    }
}

/// Convergence record of one stage of the entropic-barycentre
/// ε-schedule, as surfaced in a [`JointDesignReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BarycentreStageStat {
    /// Regularization of this annealing stage.
    pub eps: f64,
    /// Bregman iterations the stage ran.
    pub iterations: usize,
}

/// Design-time diagnostics of one `u`-stratum of a joint plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JointStratumReport {
    /// The stratum's unprotected-group label.
    pub u: u8,
    /// Total Bregman iterations the entropic barycentre ran (across all
    /// ε-schedule stages).
    pub barycentre_iterations: usize,
    /// L1 change of the barycentre over its final iteration.
    pub barycentre_final_delta: f64,
    /// Per-stage convergence of the barycentre's ε-schedule (a single
    /// entry when no schedule is configured).
    pub barycentre_stages: Vec<BarycentreStageStat>,
    /// Expected squared-Euclidean transport cost of the `s = 0` / `s = 1`
    /// plans — how far each subgroup's mass moves.
    pub plan_transport_cost: [f64; 2],
}

/// What `JointRepairPlan::design` measured while designing — the
/// convergence headroom that used to be swallowed (ROADMAP: "surface
/// `BarycentreDiagnostics` end-to-end"). Printed by
/// `otrepair design --joint --verbose` and archived by the perf-smoke
/// job as a workflow artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JointDesignReport {
    /// Grid points per dimension (`n_q^dims` product states).
    pub n_q: usize,
    /// Number of features repaired jointly (product-support axes).
    pub dims: usize,
    /// The design's entropic regularization.
    pub epsilon: f64,
    /// The ε-annealing schedule in effect (barycentre + default solver).
    pub eps_scaling: Option<EpsSchedule>,
    /// CLI spelling of the backend that designed the plans.
    pub solver: String,
    /// The Gibbs-kernel representation the design's entropic solves
    /// resolved to (`"separable"` or `"dense"` — `auto` is resolved
    /// before it gets here).
    pub kernel: String,
    /// Wall-clock seconds the design took (KDE + barycentres + plans).
    pub design_secs: f64,
    /// Per-`u`-stratum convergence diagnostics.
    pub strata: Vec<JointStratumReport>,
}

/// A designed joint repair for `d ≥ 2`-feature data. Serializable like
/// the per-feature [`crate::RepairPlan`] (`to_json` / `from_json`), so a
/// joint design is a deployable artifact too.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointRepairPlan {
    config: JointRepairConfig,
    strata: Vec<JointStratum>, // indexed by u
}

impl JointRepairPlan {
    /// Design the joint plan from research data (`d`-dimensional
    /// Algorithm 1 over all of the data's features).
    ///
    /// # Errors
    /// Requires `dim ≥ 2`, valid config, adequately sized groups, and
    /// non-degenerate feature spreads.
    pub fn design(research: &Dataset, config: JointRepairConfig) -> Result<Self> {
        Self::design_with_report(research, config).map(|(plan, _)| plan)
    }

    /// Re-design against (typically drifted) research data, warm-starting
    /// each stratum's per-`s` OT solves from the dual potentials stored
    /// in `previous` — the joint arm of the drift-aware lifecycle.
    /// Entropic backends skip their ε-schedule when warm duals of the
    /// right shape are present (a resolution change degrades to cold);
    /// the barycentre stage is unchanged. Deterministic: a pure function
    /// of `(config, research, previous duals)`, bit-identical for any
    /// thread count.
    ///
    /// # Errors
    /// As [`JointRepairPlan::design`].
    pub fn redesign(
        research: &Dataset,
        config: JointRepairConfig,
        previous: &Self,
    ) -> Result<Self> {
        Self::redesign_with_report(research, config, previous).map(|(plan, _)| plan)
    }

    /// [`JointRepairPlan::redesign`] returning the design report.
    ///
    /// # Errors
    /// As [`JointRepairPlan::design`].
    pub fn redesign_with_report(
        research: &Dataset,
        config: JointRepairConfig,
        previous: &Self,
    ) -> Result<(Self, JointDesignReport)> {
        Self::design_with_report_warm(research, config, Some(previous))
    }

    /// [`JointRepairPlan::design`] returning the designed plan **and**
    /// its [`JointDesignReport`] (barycentre convergence per stratum,
    /// ε-schedule stage stats, plan transport costs, wall time).
    ///
    /// # Errors
    /// As [`JointRepairPlan::design`].
    pub fn design_with_report(
        research: &Dataset,
        config: JointRepairConfig,
    ) -> Result<(Self, JointDesignReport)> {
        Self::design_with_report_warm(research, config, None)
    }

    fn design_with_report_warm(
        research: &Dataset,
        config: JointRepairConfig,
        previous: Option<&Self>,
    ) -> Result<(Self, JointDesignReport)> {
        if research.dim() < 2 {
            return Err(RepairError::PlanMismatch(format!(
                "joint repair needs d ≥ 2, got d = {}",
                research.dim()
            )));
        }
        if config.n_q < 4 {
            return Err(RepairError::InvalidParameter {
                name: "n_q",
                reason: format!("must be at least 4, got {}", config.n_q),
            });
        }
        if !(config.epsilon > 0.0) {
            return Err(RepairError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be positive, got {}", config.epsilon),
            });
        }
        if !(0.0..=1.0).contains(&config.t) {
            return Err(RepairError::InvalidParameter {
                name: "t",
                reason: format!("must be in [0,1], got {}", config.t),
            });
        }
        let solver = config.plan_solver();
        solver.validate()?;
        // Reject 1-D-only backends before the expensive KDE and
        // barycentre stages run, not at the final solve.
        if solver == SolverBackend::ExactMonotone {
            return Err(RepairError::InvalidParameter {
                name: "solver",
                reason: "the exact monotone backend requires 1-D ordered supports; \
                         joint repair needs `Simplex` or `Sinkhorn`"
                    .into(),
            });
        }

        // The two u-strata are independent (separate KDEs, barycentres,
        // and Sinkhorn solves — the expensive part of joint design);
        // design them concurrently with a deterministic error order.
        let start = Instant::now();
        let designed = try_par_map_indexed(2, config.threads, |u| {
            let warm = previous
                .map(|p| [p.strata[u].duals[0].as_ref(), p.strata[u].duals[1].as_ref()])
                .unwrap_or([None, None]);
            Self::design_stratum(research, u as u8, &config, warm)
        })?;
        let design_secs = start.elapsed().as_secs_f64();
        let mut strata = Vec::with_capacity(2);
        let mut stratum_reports = Vec::with_capacity(2);
        for (stratum, report) in designed {
            strata.push(stratum);
            stratum_reports.push(report);
        }
        let report = JointDesignReport {
            n_q: config.n_q,
            dims: research.dim(),
            epsilon: config.epsilon,
            eps_scaling: config.eps_scaling,
            solver: config.plan_solver().to_string(),
            // The joint cost is always grid-separable, so the resolved
            // representation is a pure function of the config + env.
            kernel: if config.kernel.resolve(true) {
                "separable".into()
            } else {
                "dense".into()
            },
            design_secs,
            strata: stratum_reports,
        };
        Ok((Self { config, strata }, report))
    }

    fn design_stratum(
        research: &Dataset,
        u: u8,
        config: &JointRepairConfig,
        warm: [Option<&SinkhornDuals>; 2],
    ) -> Result<(JointStratum, JointStratumReport)> {
        let d = research.dim();
        let mut cols: [Vec<Vec<f64>>; 2] = Default::default();
        for s in 0..2u8 {
            for k in 0..d {
                cols[s as usize].push(research.feature_column(GroupKey { u, s }, k)?);
            }
            if cols[s as usize][0].len() < config.min_group_size {
                return Err(RepairError::InsufficientResearchData {
                    u,
                    s,
                    found: cols[s as usize][0].len(),
                    needed: config.min_group_size,
                });
            }
        }
        let axis = |k: usize| -> Result<Vec<f64>> {
            let lo = cols[0][k]
                .iter()
                .chain(&cols[1][k])
                .copied()
                .fold(f64::INFINITY, f64::min);
            let hi = cols[0][k]
                .iter()
                .chain(&cols[1][k])
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            if !(lo < hi) {
                return Err(RepairError::InvalidParameter {
                    name: "research data",
                    reason: format!("feature {k} of group u={u} has zero spread"),
                });
            }
            Ok((0..config.n_q)
                .map(|i| lo + (hi - lo) * i as f64 / (config.n_q - 1) as f64)
                .collect())
        };
        let axes = (0..d).map(axis).collect::<Result<Vec<Vec<f64>>>>()?;
        let axis_refs: Vec<&[f64]> = axes.iter().map(Vec::as_slice).collect();

        // d-variate KDE pmfs with a positivity floor (cf. plan.rs).
        let mut pmfs: Vec<Vec<f64>> = Vec::with_capacity(2);
        for s in 0..2usize {
            let col_refs: Vec<&[f64]> = cols[s].iter().map(Vec::as_slice).collect();
            let kde = GaussianKdeNd::fit(&col_refs)?;
            let mut pmf = kde.pmf_on_grid(&axis_refs)?;
            let floor = pmf.iter().copied().fold(0.0, f64::max) * 1e-12;
            for p in &mut pmf {
                *p = p.max(floor);
            }
            let total: f64 = pmf.iter().sum();
            for p in &mut pmf {
                *p /= total;
            }
            pmfs.push(pmf);
        }

        // Entropic W2 barycentre on the fixed product support (iterative
        // Bregman projections, annealed along the configured ε-schedule
        // — see otr_ot::barycentre). The grid_nd entry point lets the
        // kernel choice factorize the Gibbs matvecs as d O(nQ^d·nQ)
        // axis passes (`auto`, the default) instead of O(nQ^{2d}) dense
        // sweeps, chunked over config.threads either way.
        let (bary, diagnostics) = entropic_barycentre_grid_nd(
            &[&pmfs[0], &pmfs[1]],
            &[1.0 - config.t, config.t],
            &axis_refs,
            &BarycentreConfig {
                eps: config.epsilon,
                max_iters: 5_000,
                tol: 1e-9,
                eps_scaling: config.eps_scaling,
                threads: config.threads,
                parallel_min_cells: None,
                kernel: config.kernel,
            },
        )?;

        // Plans µ_s -> ν under squared Euclidean cost on R^d, through the
        // configured backend (the seam rejects backends that need 1-D
        // structure and owns the Sinkhorn fallback policy); the solver's
        // in-kernel scaling updates ride the same thread setting, and
        // the product-grid cost constructor records the axis grids so
        // the entropic backend can factorize its kernel too.
        let cost = CostMatrix::squared_euclidean_grid_nd(&axis_refs)?;
        let mut plans: Vec<OtPlan> = Vec::with_capacity(2);
        let mut duals: Vec<Option<SinkhornDuals>> = Vec::with_capacity(2);
        let mut plan_transport_cost = [0.0f64; 2];
        for (s, pmf) in pmfs.iter().enumerate() {
            let (plan, d) = config.plan_solver().solve_with_cost_warm(
                pmf,
                &bary,
                &cost,
                config.threads,
                config.kernel,
                warm[s],
            )?;
            plan_transport_cost[s] = plan.transport_cost(&cost)?;
            plans.push(plan);
            duals.push(d);
        }
        let plans: [OtPlan; 2] = [plans.remove(0), plans.remove(0)];
        let duals: [Option<SinkhornDuals>; 2] = [duals.remove(0), duals.remove(0)];

        let mut stratum = JointStratum {
            // The legacy 2-feature fields stay populated at d = 2 so
            // plan artifacts keep their old shape; compile() would
            // back-fill them anyway, but being explicit here keeps the
            // designed struct equal to its JSON round trip.
            gx: if d == 2 { axes[0].clone() } else { Vec::new() },
            gy: if d == 2 { axes[1].clone() } else { Vec::new() },
            axes,
            points: Vec::new(), // derived; compile() rebuilds it
            plans,
            duals,
            samplers: [Vec::new(), Vec::new()],
        };
        stratum.compile(u)?;
        let report = Self::stratum_report(u, &diagnostics, plan_transport_cost);
        Ok((stratum, report))
    }

    /// Fold a stratum's barycentre diagnostics and plan costs into its
    /// design-report entry.
    fn stratum_report(
        u: u8,
        diagnostics: &BarycentreDiagnostics,
        plan_transport_cost: [f64; 2],
    ) -> JointStratumReport {
        JointStratumReport {
            u,
            barycentre_iterations: diagnostics.iterations,
            barycentre_final_delta: diagnostics.final_delta,
            barycentre_stages: diagnostics
                .stages
                .iter()
                .map(|&(eps, iterations)| BarycentreStageStat { eps, iterations })
                .collect(),
            plan_transport_cost,
        }
    }

    /// The per-dimension grid size.
    pub fn n_q(&self) -> usize {
        self.config.n_q
    }

    /// Number of features the plan repairs jointly (product-support
    /// axes per stratum).
    pub fn dims(&self) -> usize {
        self.strata[0].axes.len()
    }

    /// The configuration the plan was designed under.
    pub fn config(&self) -> &JointRepairConfig {
        &self.config
    }

    /// Serialize the joint plan to JSON (the deployable artifact; the
    /// derived alias samplers and product support are rebuilt on load).
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| RepairError::Persistence(e.to_string()))
    }

    /// Load a joint plan from JSON and recompile its derived state.
    ///
    /// # Errors
    /// Propagates deserialization and recompilation failures.
    pub fn from_json(json: &str) -> Result<Self> {
        let mut plan: JointRepairPlan =
            serde_json::from_str(json).map_err(|e| RepairError::Persistence(e.to_string()))?;
        if plan.strata.len() != 2 {
            return Err(RepairError::Persistence(format!(
                "joint plan must carry exactly 2 u-strata, got {}",
                plan.strata.len()
            )));
        }
        for (u, stratum) in plan.strata.iter_mut().enumerate() {
            stratum.compile(u as u8)?;
        }
        Ok(plan)
    }

    /// Retune the worker-thread count of a designed plan (deployment
    /// knob; `0` = auto). Has no effect on repair output, only on
    /// wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Expected squared-Euclidean transport cost of the `(u, s)` plan —
    /// the design-time estimate of how far that subgroup's mass moves
    /// (a joint-repair damage diagnostic).
    ///
    /// # Errors
    /// Rejects labels outside `{0, 1}`.
    pub fn expected_transport_cost(&self, u: u8, s: u8) -> Result<f64> {
        if u > 1 || s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "no joint plan for (u={u}, s={s})"
            )));
        }
        let stratum = &self.strata[u as usize];
        let axis_refs: Vec<&[f64]> = stratum.axes.iter().map(Vec::as_slice).collect();
        let cost = CostMatrix::squared_euclidean_grid_nd(&axis_refs)?;
        Ok(stratum.plans[s as usize].transport_cost(&cost)?)
    }

    /// Repair one labelled point jointly.
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point<R: Rng + ?Sized>(
        &self,
        point: &LabelledPoint,
        rng: &mut R,
    ) -> Result<LabelledPoint> {
        if point.u > 1 || point.s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "labels (s={}, u={}) outside {{0,1}}",
                point.s, point.u
            )));
        }
        let stratum = &self.strata[point.u as usize];
        let d = stratum.axes.len();
        if point.x.len() != d {
            return Err(RepairError::PlanMismatch(format!(
                "joint repair needs d = {d}, got d = {}",
                point.x.len()
            )));
        }
        let cell = |grid: &[f64], v: f64| -> usize {
            let n = grid.len();
            if v <= grid[0] {
                return 0;
            }
            if v >= grid[n - 1] {
                return n - 1;
            }
            let step = (grid[n - 1] - grid[0]) / (n - 1) as f64;
            (((v - grid[0]) / step) + 0.5).floor() as usize % n
        };
        let mut row = 0usize;
        for (g, &v) in stratum.axes.iter().zip(&point.x) {
            row = row * g.len() + cell(g, v);
        }
        let target = stratum.samplers[point.s as usize][row].sample(rng);
        Ok(LabelledPoint {
            x: stratum.points[target * d..(target + 1) * d].to_vec(),
            s: point.s,
            u: point.u,
        })
    }

    /// Repair an entire data set jointly.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Result<Dataset> {
        let points = data
            .points()
            .iter()
            .map(|p| self.repair_point(p, rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(Dataset::from_points(points)?)
    }

    /// Repair an entire data set jointly, in parallel, with per-row
    /// SplitMix64 RNG streams derived from `seed` — the joint analogue
    /// of [`crate::RepairPlan::repair_dataset_par`], bit-identical for
    /// any `config.threads` setting.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_par(&self, data: &Dataset, seed: u64) -> Result<Dataset> {
        self.repair_dataset_shard(data, seed, 0)
    }

    /// Chunk-addressable joint repair — the joint analogue of
    /// [`crate::RepairPlan::repair_columnar_shard`], and the entry point
    /// the repair service (`otr-serve`) shards joint archives through.
    /// Repairs `data` as if its rows occupied absolute indices
    /// `row_offset .. row_offset + data.len()` of a larger archive: row
    /// `i` draws from `splitmix_seed(seed, row_offset + i)`, so
    /// contiguous shards repaired with their start rows as offsets and
    /// concatenated in index order are byte-identical to one
    /// whole-archive [`Self::repair_dataset_par`] call (which is the
    /// `row_offset = 0` case).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_shard(
        &self,
        data: &Dataset,
        seed: u64,
        row_offset: u64,
    ) -> Result<Dataset> {
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), self.config.threads, |i| {
            let mut rng = StdRng::seed_from_u64(splitmix_seed(seed, row_offset + i as u64));
            self.repair_point(&pts[i], &mut rng)
        })?;
        Ok(Dataset::from_points(points)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::SimulationSpec;
    use otr_fairness::JointDependence;
    use otr_stats::linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlation_spec() -> SimulationSpec {
        let cov = |rho: f64| Matrix::from_rows(2, 2, vec![1.0, rho, rho, 1.0]).unwrap();
        SimulationSpec {
            means: [
                [vec![0.0, 0.0], vec![0.0, 0.0]],
                [vec![0.0, 0.0], vec![0.0, 0.0]],
            ],
            sigma: 1.0,
            covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
            pr_u0: 0.5,
            pr_s0_given_u: [0.4, 0.4],
        }
    }

    #[test]
    fn joint_repair_quenches_correlation_dependence() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(1);
        let split = spec.generate(1_500, 3_000, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&split.research, JointRepairConfig::default()).unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

        let jd = JointDependence::default();
        let before = jd.evaluate(&split.archive).unwrap();
        let after = jd.evaluate(&repaired).unwrap();
        assert!(
            after < before * 0.5,
            "joint repair must reduce joint E: {before} -> {after}"
        );
    }

    #[test]
    fn per_feature_repair_misses_correlation_dependence() {
        use crate::{RepairConfig, RepairPlanner};
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(2);
        let split = spec.generate(1_500, 3_000, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
            .design(&split.research)
            .unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        let jd = JointDependence::default();
        let before = jd.evaluate(&split.archive).unwrap();
        let after = jd.evaluate(&repaired).unwrap();
        // The marginal repair cannot remove correlation-borne dependence.
        assert!(
            after > before * 0.4,
            "per-feature repair unexpectedly removed joint dependence: {before} -> {after}"
        );
    }

    #[test]
    fn repaired_points_live_on_product_grid() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(3);
        let split = spec.generate(800, 500, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&split.research, JointRepairConfig::default()).unwrap();
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        assert_eq!(repaired.len(), split.archive.len());
        for p in repaired.points().iter().take(100) {
            let stratum = &plan.strata[p.u as usize];
            for (g, &v) in stratum.axes.iter().zip(&p.x) {
                assert!(g.iter().any(|&q| (q - v).abs() < 1e-9));
            }
            // The legacy pair mirrors the axes at d = 2.
            assert_eq!(stratum.gx, stratum.axes[0]);
            assert_eq!(stratum.gy, stratum.axes[1]);
        }
    }

    #[test]
    fn expected_transport_cost_positive_and_bounded() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(5);
        let research = spec.sample_dataset(900, &mut rng).unwrap();
        let plan = JointRepairPlan::design(&research, JointRepairConfig::default()).unwrap();
        for u in 0..2u8 {
            for s in 0..2u8 {
                let c = plan.expected_transport_cost(u, s).unwrap();
                // Rotating correlation by 90 degrees moves mass about one
                // unit on average; the cost must be positive but far below
                // the grid diameter squared.
                assert!(c > 0.0, "(u={u}, s={s}): {c}");
                assert!(c < 20.0, "(u={u}, s={s}): {c}");
            }
        }
        assert!(plan.expected_transport_cost(2, 0).is_err());
    }

    #[test]
    fn respects_configured_backend() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(6);
        let research = spec.sample_dataset(600, &mut rng).unwrap();

        // Without an override, the plans follow the config's epsilon
        // and its ε-schedule (on by default for joint design).
        let cfg = JointRepairConfig::default();
        assert!(cfg.eps_scaling.is_some());
        assert_eq!(
            cfg.plan_solver(),
            SolverBackend::Sinkhorn {
                epsilon: cfg.epsilon,
                eps_scaling: cfg.eps_scaling,
            }
        );

        // The exact simplex is a valid joint backend (coarse grid: the
        // simplex is O(n³)-class on n_q² states).
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 6;
        cfg.solver = Some(SolverBackend::Simplex);
        let plan = JointRepairPlan::design(&research, cfg).unwrap();
        let repaired = plan.repair_dataset(&research, &mut rng).unwrap();
        assert_eq!(repaired.len(), research.len());

        // A backend needing 1-D structure is rejected, not ignored.
        let mut cfg = JointRepairConfig::default();
        cfg.solver = Some(SolverBackend::ExactMonotone);
        assert!(JointRepairPlan::design(&research, cfg).is_err());

        // Invalid Sinkhorn epsilon is caught by the seam's validation.
        let mut cfg = JointRepairConfig::default();
        cfg.solver = Some(SolverBackend::sinkhorn(-0.5));
        assert!(JointRepairPlan::design(&research, cfg).is_err());
    }

    #[test]
    fn joint_warm_redesign_agrees_with_cold_design() {
        use otr_data::Drift;

        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(17);
        let original = spec.sample_dataset(700, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8;
        let previous = JointRepairPlan::design(&original, cfg).unwrap();
        for stratum in &previous.strata {
            assert!(
                stratum.duals[0].is_some() && stratum.duals[1].is_some(),
                "entropic joint design must bank duals"
            );
        }

        let drifted = Drift::MeanShift(vec![0.5, -0.5]).apply(&original).unwrap();
        let cold = JointRepairPlan::design(&drifted, cfg).unwrap();
        let (warm, _report) =
            JointRepairPlan::redesign_with_report(&drifted, cfg, &previous).unwrap();

        // Same final ε, same (µ, ν, cost) per stratum: the converged
        // plans agree within solver tolerance even though the warm path
        // skipped the ε-schedule.
        for (c, w) in cold.strata.iter().zip(&warm.strata) {
            assert_eq!(c.axes, w.axes);
            let axis_refs: Vec<&[f64]> = c.axes.iter().map(Vec::as_slice).collect();
            let cost = CostMatrix::squared_euclidean_grid_nd(&axis_refs).unwrap();
            for s in 0..2usize {
                let cc = c.plans[s].transport_cost(&cost).unwrap();
                let wc = w.plans[s].transport_cost(&cost).unwrap();
                assert!(
                    (cc - wc).abs() <= 1e-5 * cc.abs().max(1.0),
                    "s = {s}: cold cost {cc} vs warm cost {wc}"
                );
                assert!(w.duals[s].is_some(), "warm redesign dropped duals");
            }
        }
    }

    #[test]
    fn design_report_surfaces_barycentre_convergence() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(9);
        let research = spec.sample_dataset(700, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8;
        let (_plan, report) = JointRepairPlan::design_with_report(&research, cfg).unwrap();
        assert_eq!(report.n_q, 8);
        assert_eq!(report.epsilon, cfg.epsilon);
        assert_eq!(report.eps_scaling, cfg.eps_scaling);
        assert_eq!(report.solver, cfg.plan_solver().to_string());
        // The report names the resolved representation (auto is
        // resolved through the environment, so accept either).
        assert!(
            report.kernel == "separable" || report.kernel == "dense",
            "kernel: {}",
            report.kernel
        );
        assert!(report.design_secs > 0.0);
        assert_eq!(report.strata.len(), 2);
        let expected_stages = cfg.eps_scaling.unwrap().stages(cfg.epsilon).len();
        for (u, stratum) in report.strata.iter().enumerate() {
            assert_eq!(stratum.u, u as u8);
            assert!(stratum.barycentre_iterations > 0);
            assert!(stratum.barycentre_final_delta.is_finite());
            assert_eq!(stratum.barycentre_stages.len(), expected_stages);
            assert_eq!(
                stratum.barycentre_iterations,
                stratum
                    .barycentre_stages
                    .iter()
                    .map(|s| s.iterations)
                    .sum::<usize>()
            );
            for cost in stratum.plan_transport_cost {
                assert!(cost > 0.0 && cost.is_finite());
            }
        }
        // The report is the perf-smoke artifact: it must serialize.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("barycentre_stages"));
    }

    #[test]
    fn malformed_joint_plan_json_is_an_error_not_a_panic() {
        // A joint plan JSON is a user-supplied file: missing strata,
        // degenerate grids, and grid/plan shape mismatches must all be
        // clean errors from from_json, never index panics at repair
        // time.
        let no_strata = r#"{"config":{"n_q":8,"epsilon":0.05,"t":0.5,"min_group_size":10,
            "solver":null,"eps_scaling":null},"strata":[]}"#;
        assert!(JointRepairPlan::from_json(no_strata).is_err());

        // Shape mismatch straight at the compile layer: a 2×2 product
        // grid (4 states) fed plans of the wrong dimension.
        let plan3 = OtPlan::from_dense(3, 3, vec![1.0 / 9.0; 9]).unwrap();
        let mut stratum = JointStratum {
            gx: vec![0.0, 1.0],
            gy: vec![0.0, 1.0],
            axes: Vec::new(),
            points: Vec::new(),
            plans: [plan3.clone(), plan3],
            duals: [None, None],
            samplers: [Vec::new(), Vec::new()],
        };
        assert!(matches!(
            stratum.compile(0),
            Err(RepairError::PlanMismatch(_))
        ));
        // Degenerate single-state axis grid.
        let plan2 = OtPlan::from_dense(2, 2, vec![0.25; 4]).unwrap();
        let mut stratum = JointStratum {
            gx: vec![0.0],
            gy: vec![0.0, 1.0],
            axes: Vec::new(),
            points: Vec::new(),
            plans: [plan2.clone(), plan2],
            duals: [None, None],
            samplers: [Vec::new(), Vec::new()],
        };
        assert!(matches!(
            stratum.compile(1),
            Err(RepairError::PlanMismatch(_))
        ));
        // No grids at all — neither `axes` nor the legacy pair.
        let plan2 = OtPlan::from_dense(2, 2, vec![0.25; 4]).unwrap();
        let mut stratum = JointStratum {
            gx: Vec::new(),
            gy: Vec::new(),
            axes: Vec::new(),
            points: Vec::new(),
            plans: [plan2.clone(), plan2],
            duals: [None, None],
            samplers: [Vec::new(), Vec::new()],
        };
        assert!(matches!(
            stratum.compile(0),
            Err(RepairError::PlanMismatch(_))
        ));
    }

    #[test]
    fn repair_point_rejects_out_of_range_labels() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(12);
        let research = spec.sample_dataset(500, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 6;
        let plan = JointRepairPlan::design(&research, cfg).unwrap();
        let bad = LabelledPoint {
            x: vec![0.0, 0.0],
            s: 0,
            u: 7,
        };
        assert!(plan.repair_point(&bad, &mut rng).is_err());
    }

    #[test]
    fn joint_plan_json_round_trip_preserves_repair() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(10);
        let split = spec.generate(500, 300, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8; // keep the n_q² solves cheap
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let json = plan.to_json().unwrap();
        let back = JointRepairPlan::from_json(&json).unwrap();
        assert_eq!(back.n_q(), plan.n_q());
        assert_eq!(back.config().epsilon, plan.config().epsilon);
        // Threads are machine-local runtime policy: never persisted.
        assert_eq!(back.config().threads, 0);
        // Identical repairs under the same seed (JSON costs one f64
        // round trip, so compare repaired values, not raw plan bits).
        let a = plan.repair_dataset_par(&split.archive, 33).unwrap();
        let b = back.repair_dataset_par(&split.archive, 33).unwrap();
        for (x, y) in a.points().iter().zip(b.points()) {
            for (xa, xb) in x.x.iter().zip(&y.x) {
                assert!((xa - xb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_joint_repair_identical_across_thread_counts() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(7);
        let split = spec.generate(400, 600, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8; // keep the n_q² Sinkhorn solves cheap
        let mut plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let mut reference: Option<Dataset> = None;
        for threads in [1usize, 2, 7] {
            plan.set_threads(threads);
            let out = plan.repair_dataset_par(&split.archive, 11).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(out.points(), r.points(), "threads = {threads}"),
            }
        }
    }

    #[test]
    fn sharded_joint_repair_matches_whole_archive() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(12);
        let split = spec.generate(400, 500, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 8; // keep the n_q² Sinkhorn solves cheap
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let whole = plan.repair_dataset_par(&split.archive, 21).unwrap();
        for shards in [2usize, 7] {
            let pts = split.archive.points();
            let mut rebuilt: Vec<LabelledPoint> = Vec::with_capacity(pts.len());
            let base = pts.len() / shards;
            let rem = pts.len() % shards;
            let mut start = 0usize;
            for sh in 0..shards {
                let len = base + usize::from(sh < rem);
                let slice = Dataset::from_points(pts[start..start + len].to_vec()).unwrap();
                let out = plan.repair_dataset_shard(&slice, 21, start as u64).unwrap();
                rebuilt.extend_from_slice(out.points());
                start += len;
            }
            assert_eq!(&rebuilt[..], whole.points(), "shards = {shards}");
        }
    }

    /// Three features whose pairwise correlation on the first two axes
    /// flips sign with `s` — invisible to per-feature repair, and now
    /// representable by the d-axis joint design.
    fn correlation_spec_3d() -> SimulationSpec {
        let cov = |rho: f64| {
            Matrix::from_rows(3, 3, vec![1.0, rho, 0.0, rho, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap()
        };
        SimulationSpec {
            means: [[vec![0.0; 3], vec![0.0; 3]], [vec![0.0; 3], vec![0.0; 3]]],
            sigma: 1.0,
            covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
            pr_u0: 0.5,
            pr_s0_given_u: [0.4, 0.4],
        }
    }

    #[test]
    fn three_feature_joint_design_repairs_onto_product_grid() {
        let spec = correlation_spec_3d();
        let mut rng = StdRng::seed_from_u64(21);
        let split = spec.generate(900, 400, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 5; // 125 product states keeps the n_q³ solves cheap
        let (plan, report) = JointRepairPlan::design_with_report(&split.research, cfg).unwrap();
        assert_eq!(plan.dims(), 3);
        assert_eq!(report.dims, 3);
        assert_eq!(report.n_q, 5);
        let repaired = plan.repair_dataset_par(&split.archive, 17).unwrap();
        assert_eq!(repaired.len(), split.archive.len());
        for p in repaired.points() {
            let stratum = &plan.strata[p.u as usize];
            // The legacy 2-feature grid pair is not faked at d = 3.
            assert!(stratum.gx.is_empty() && stratum.gy.is_empty());
            assert_eq!(stratum.axes.len(), 3);
            for (g, &v) in stratum.axes.iter().zip(&p.x) {
                assert!(g.iter().any(|&q| (q - v).abs() < 1e-9));
            }
        }
        for u in 0..2u8 {
            for s in 0..2u8 {
                let c = plan.expected_transport_cost(u, s).unwrap();
                assert!(c > 0.0 && c.is_finite(), "(u={u}, s={s}): {c}");
            }
        }
        // A 2-feature point is rejected against a 3-feature plan.
        let bad = LabelledPoint {
            x: vec![0.0, 0.0],
            s: 0,
            u: 0,
        };
        assert!(plan.repair_point(&bad, &mut rng).is_err());
    }

    #[test]
    fn three_feature_repair_identical_across_thread_counts() {
        let spec = correlation_spec_3d();
        let mut rng = StdRng::seed_from_u64(22);
        let split = spec.generate(700, 300, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 4; // 64 product states keep the n_q³ solves cheap
        let mut plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let mut reference: Option<Dataset> = None;
        for threads in [1usize, 2, 7] {
            plan.set_threads(threads);
            let out = plan.repair_dataset_par(&split.archive, 19).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(out.points(), r.points(), "threads = {threads}"),
            }
        }
    }

    #[test]
    fn three_feature_plan_json_round_trip_preserves_repair() {
        let spec = correlation_spec_3d();
        let mut rng = StdRng::seed_from_u64(23);
        let split = spec.generate(700, 300, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 4;
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let json = plan.to_json().unwrap();
        let back = JointRepairPlan::from_json(&json).unwrap();
        assert_eq!(back.dims(), 3);
        assert_eq!(back.n_q(), plan.n_q());
        let a = plan.repair_dataset_par(&split.archive, 33).unwrap();
        let b = back.repair_dataset_par(&split.archive, 33).unwrap();
        for (x, y) in a.points().iter().zip(b.points()) {
            for (xa, xb) in x.x.iter().zip(&y.x) {
                assert!((xa - xb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn legacy_plan_json_without_axes_field_still_loads() {
        // Pre-n-d joint plan artifacts carry `gx`/`gy` per stratum and
        // no `axes` key. Strip the new key from a freshly designed
        // 2-feature plan's JSON to reproduce that shape, and check the
        // loaded plan repairs identically.
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(24);
        let split = spec.generate(500, 300, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 6;
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&plan.to_json().unwrap()).unwrap();
        let serde_json::Value::Obj(entries) = &mut v else {
            panic!("plan JSON must be an object");
        };
        let strata = &mut entries.iter_mut().find(|(k, _)| k == "strata").unwrap().1;
        let serde_json::Value::Arr(items) = strata else {
            panic!("strata must be an array");
        };
        for stratum in items {
            let serde_json::Value::Obj(fields) = stratum else {
                panic!("stratum must be an object");
            };
            let before = fields.len();
            fields.retain(|(k, _)| k != "axes");
            assert_eq!(
                fields.len(),
                before - 1,
                "freshly designed plans carry `axes`"
            );
            assert!(fields.iter().any(|(k, _)| k == "gx"));
            assert!(fields.iter().any(|(k, _)| k == "gy"));
        }
        let legacy = serde_json::to_string(&v).unwrap();
        let back = JointRepairPlan::from_json(&legacy).unwrap();
        assert_eq!(back.dims(), 2);
        let a = plan.repair_dataset_par(&split.archive, 41).unwrap();
        let b = back.repair_dataset_par(&split.archive, 41).unwrap();
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn rejects_bad_inputs() {
        let spec = correlation_spec();
        let mut rng = StdRng::seed_from_u64(4);
        let research = spec.sample_dataset(800, &mut rng).unwrap();
        let mut cfg = JointRepairConfig::default();
        cfg.n_q = 2;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.epsilon = 0.0;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.t = 2.0;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
        let mut cfg = JointRepairConfig::default();
        cfg.min_group_size = 10_000;
        assert!(JointRepairPlan::design(&research, cfg).is_err());
    }
}
