//! Error type for repair-plan design and application.

use std::fmt;

/// Errors produced by the repair pipeline.
#[derive(Debug)]
pub enum RepairError {
    /// A `(u, s)` group in the research data is too small to estimate its
    /// marginal.
    InsufficientResearchData {
        /// Unprotected group.
        u: u8,
        /// Protected group.
        s: u8,
        /// Observations found.
        found: usize,
        /// Observations needed.
        needed: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violation description.
        reason: String,
    },
    /// A label/dimension mismatch between the plan and the data it is
    /// asked to repair.
    PlanMismatch(String),
    /// Plan (de)serialization failed.
    Persistence(String),
    /// An underlying optimal-transport failure.
    Ot(otr_ot::OtError),
    /// An underlying statistics failure.
    Stats(otr_stats::StatsError),
    /// An underlying data failure.
    Data(otr_data::DataError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::InsufficientResearchData {
                u,
                s,
                found,
                needed,
            } => write!(
                f,
                "research group (u={u}, s={s}) has {found} observations, need at least {needed}"
            ),
            RepairError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            RepairError::PlanMismatch(msg) => write!(f, "plan/data mismatch: {msg}"),
            RepairError::Persistence(msg) => write!(f, "plan persistence error: {msg}"),
            RepairError::Ot(e) => write!(f, "optimal transport error: {e}"),
            RepairError::Stats(e) => write!(f, "statistics error: {e}"),
            RepairError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<otr_ot::OtError> for RepairError {
    fn from(e: otr_ot::OtError) -> Self {
        RepairError::Ot(e)
    }
}

impl From<otr_stats::StatsError> for RepairError {
    fn from(e: otr_stats::StatsError) -> Self {
        RepairError::Stats(e)
    }
}

impl From<otr_data::DataError> for RepairError {
    fn from(e: otr_data::DataError) -> Self {
        RepairError::Data(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, RepairError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RepairError::InsufficientResearchData {
            u: 1,
            s: 0,
            found: 3,
            needed: 10,
        };
        assert!(e.to_string().contains("(u=1, s=0)"));
        assert!(RepairError::PlanMismatch("dim 2 vs 3".into())
            .to_string()
            .contains("dim 2 vs 3"));
    }
}
