//! Data-damage diagnostics: how much did repair move the data?
//!
//! Repair necessarily destroys some predictive signal (Section III); these
//! metrics quantify the price. Per feature we report
//!
//! * **RMSE displacement** — root mean squared per-point movement
//!   `√(n⁻¹ Σ (x'ᵢ − xᵢ)²)`, an individual-level damage measure;
//! * **`W₂` marginal damage** — the Wasserstein-2 distance between the
//!   pre- and post-repair empirical feature marginals per `(u, s)` group,
//!   a distribution-level damage measure (this is exactly the expected
//!   transport cost the barycentric design minimizes).

use serde::{Deserialize, Serialize};

use otr_data::{ColumnarDataset, Dataset, GroupKey};
use otr_ot::wasserstein::w2;
use otr_ot::DiscreteDistribution;

use crate::error::{RepairError, Result};

/// Damage report for one repair operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DamageReport {
    /// RMSE point displacement per feature.
    pub rmse_per_feature: Vec<f64>,
    /// `W₂` between pre/post empirical marginals, indexed `[u][s][k]`.
    pub w2_group_feature: Vec<Vec<Vec<f64>>>,
}

impl DamageReport {
    /// Mean RMSE across features.
    pub fn mean_rmse(&self) -> f64 {
        if self.rmse_per_feature.is_empty() {
            return 0.0;
        }
        self.rmse_per_feature.iter().sum::<f64>() / self.rmse_per_feature.len() as f64
    }

    /// Largest group-level `W₂` damage across all strata.
    pub fn max_w2(&self) -> f64 {
        self.w2_group_feature
            .iter()
            .flatten()
            .flatten()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// Compute the damage of `repaired` relative to `original`.
///
/// The two data sets must be point-wise aligned (same order, labels, and
/// dimension) — exactly what [`crate::RepairPlan::repair_dataset`]
/// guarantees.
///
/// # Errors
/// Rejects misaligned inputs or empty `(u, s)` groups.
pub fn dataset_damage(original: &Dataset, repaired: &Dataset) -> Result<DamageReport> {
    if original.dim() != repaired.dim() || original.len() != repaired.len() {
        return Err(RepairError::PlanMismatch(format!(
            "damage inputs misaligned: {}x{} vs {}x{}",
            original.len(),
            original.dim(),
            repaired.len(),
            repaired.dim()
        )));
    }
    for (a, b) in original.points().iter().zip(repaired.points()) {
        if a.s != b.s || a.u != b.u {
            return Err(RepairError::PlanMismatch(
                "damage inputs must be point-wise label-aligned".into(),
            ));
        }
    }
    let d = original.dim();
    let n = original.len() as f64;

    let mut rmse = vec![0.0f64; d];
    for (a, b) in original.points().iter().zip(repaired.points()) {
        for k in 0..d {
            let diff = a.x[k] - b.x[k];
            rmse[k] += diff * diff;
        }
    }
    for v in &mut rmse {
        *v = (*v / n).sqrt();
    }

    let mut w2_gf = vec![vec![vec![0.0f64; d]; 2]; 2];
    for u in 0..2u8 {
        for s in 0..2u8 {
            let key = GroupKey { u, s };
            for k in 0..d {
                let before = original.feature_column(key, k)?;
                let after = repaired.feature_column(key, k)?;
                if before.is_empty() {
                    continue; // a group may legitimately be absent
                }
                let mu = DiscreteDistribution::empirical(&before)?;
                let nu = DiscreteDistribution::empirical(&after)?;
                w2_gf[u as usize][s as usize][k] = w2(&mu, &nu)?;
            }
        }
    }

    Ok(DamageReport {
        rmse_per_feature: rmse,
        w2_group_feature: w2_gf,
    })
}

/// [`dataset_damage`] over columnar data sets, computed straight from
/// the column slices (full-column RMSE sweeps, group gathers through
/// the precomputed index lists). Produces bitwise the same report as
/// [`dataset_damage`] on the row-major images: the per-feature RMSE
/// accumulates in ascending row order either way, and the group columns
/// gather in the same insertion order.
///
/// # Errors
/// Rejects misaligned inputs or empty `(u, s)` groups.
pub fn dataset_damage_columnar(
    original: &ColumnarDataset,
    repaired: &ColumnarDataset,
) -> Result<DamageReport> {
    if original.dim() != repaired.dim() || original.len() != repaired.len() {
        return Err(RepairError::PlanMismatch(format!(
            "damage inputs misaligned: {}x{} vs {}x{}",
            original.len(),
            original.dim(),
            repaired.len(),
            repaired.dim()
        )));
    }
    if original.s() != repaired.s() || original.u() != repaired.u() {
        return Err(RepairError::PlanMismatch(
            "damage inputs must be point-wise label-aligned".into(),
        ));
    }
    let d = original.dim();
    let n = original.len() as f64;

    let mut rmse = Vec::with_capacity(d);
    for k in 0..d {
        let before = original.feature_column(k)?;
        let after = repaired.feature_column(k)?;
        let mut acc = 0.0f64;
        for (a, b) in before.iter().zip(after) {
            let diff = a - b;
            acc += diff * diff;
        }
        rmse.push((acc / n).sqrt());
    }

    let mut w2_gf = vec![vec![vec![0.0f64; d]; 2]; 2];
    for u in 0..2u8 {
        for s in 0..2u8 {
            let key = GroupKey { u, s };
            for k in 0..d {
                let before = original.group_feature_column(key, k)?;
                let after = repaired.group_feature_column(key, k)?;
                if before.is_empty() {
                    continue; // a group may legitimately be absent
                }
                let mu = DiscreteDistribution::empirical(&before)?;
                let nu = DiscreteDistribution::empirical(&after)?;
                w2_gf[u as usize][s as usize][k] = w2(&mu, &nu)?;
            }
        }
    }

    Ok(DamageReport {
        rmse_per_feature: rmse,
        w2_group_feature: w2_gf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::{LabelledPoint, SimulationSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_damage_for_identity() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let data = spec.sample_dataset(200, &mut rng).unwrap();
        let report = dataset_damage(&data, &data).unwrap();
        assert!(report.mean_rmse() < 1e-15);
        assert!(report.max_w2() < 1e-12);
    }

    #[test]
    fn constant_shift_rmse_is_shift() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        let data = spec.sample_dataset(300, &mut rng).unwrap();
        let shifted = data.map_features(|p| vec![p.x[0] + 2.0, p.x[1]]).unwrap();
        let report = dataset_damage(&data, &shifted).unwrap();
        assert!((report.rmse_per_feature[0] - 2.0).abs() < 1e-12);
        assert!(report.rmse_per_feature[1] < 1e-15);
        // W2 of a translation is the shift itself, for every group.
        assert!((report.max_w2() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn misaligned_inputs_rejected() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let a = spec.sample_dataset(100, &mut rng).unwrap();
        let b = spec.sample_dataset(101, &mut rng).unwrap();
        assert!(dataset_damage(&a, &b).is_err());
    }

    #[test]
    fn label_misalignment_rejected() {
        let a = Dataset::from_points(vec![LabelledPoint {
            x: vec![0.0],
            s: 0,
            u: 0,
        }])
        .unwrap();
        let b = Dataset::from_points(vec![LabelledPoint {
            x: vec![0.0],
            s: 1,
            u: 0,
        }])
        .unwrap();
        assert!(dataset_damage(&a, &b).is_err());
    }

    #[test]
    fn repair_damage_is_bounded_by_group_separation() {
        // The barycentric repair moves each group roughly half the group
        // separation (sqrt(2)/2 per feature here), so RMSE should be of
        // that order — not zero, not huge.
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(4);
        let data = spec.sample_dataset(600, &mut rng).unwrap();
        let plan = crate::RepairPlanner::new(crate::RepairConfig::with_n_q(50))
            .design(&data)
            .unwrap();
        let repaired = plan.repair_dataset(&data, &mut rng).unwrap();
        let report = dataset_damage(&data, &repaired).unwrap();
        for k in 0..2 {
            assert!(
                report.rmse_per_feature[k] < 2.0,
                "rmse[{k}] = {}",
                report.rmse_per_feature[k]
            );
            assert!(report.rmse_per_feature[k] > 0.05);
        }
    }
}
