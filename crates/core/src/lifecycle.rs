//! Drift-aware plan lifecycle: a streaming monitor that compares
//! incoming archival batches against the marginals a [`RepairPlan`]
//! was designed from.
//!
//! The paper's repair is designed once on a research snapshot and then
//! applied to an archival stream. When the archive's `(s, u)`-stratum
//! marginals drift away from the research marginals recorded in the
//! plan, the designed transport maps stop being the right maps. The
//! [`DriftMonitor`] watches for exactly that: it folds every observed
//! archival row into per-`(u, k, s)` histograms binned on the plan's
//! own interpolated support `Q_{u,k}`, and at deterministic row-count
//! checkpoints evaluates the symmetrized KL divergence between the
//! cumulative empirical pmf and the plan's recorded marginal — the same
//! divergence the paper's `E` metric is built from.
//!
//! # Determinism
//!
//! The monitor's decision path is a pure function of the *row stream*:
//! checkpoints fire when the cumulative row count crosses multiples of
//! [`DriftConfig::check_every`], never on wall-clock time or batch
//! boundaries. Feeding the same rows in the same order trips the
//! monitor at the same row index, no matter how the stream was chopped
//! into batches (one call of 10 000 rows and 10 000 calls of 1 row are
//! indistinguishable). Hysteresis is a consecutive-checkpoint counter:
//! the monitor only trips after [`DriftConfig::trips`] consecutive
//! over-threshold checkpoints, and a single healthy checkpoint resets
//! the streak.

use serde::{Deserialize, Serialize};

use otr_data::Dataset;
use otr_stats::{sym_kl_divergence, Histogram};

use crate::error::{RepairError, Result};
use crate::plan::RepairPlan;

/// Thresholds and cadence for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Divergence level (symmetrized KL, nats) above which a checkpoint
    /// counts as drifted.
    pub threshold: f64,
    /// Consecutive over-threshold checkpoints required to trip.
    pub trips: u32,
    /// Evaluate a checkpoint every this many observed rows.
    pub check_every: u64,
    /// No checkpoint fires before this many rows have been observed
    /// (early empirical pmfs are noise, not drift).
    pub min_rows: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            trips: 2,
            check_every: 256,
            min_rows: 512,
        }
    }
}

impl DriftConfig {
    /// Validate the thresholds.
    ///
    /// # Errors
    /// Requires a positive finite threshold, at least one trip, and a
    /// positive checkpoint cadence.
    pub fn validate(&self) -> Result<()> {
        if !(self.threshold > 0.0) || !self.threshold.is_finite() {
            return Err(RepairError::InvalidParameter {
                name: "threshold",
                reason: format!("must be positive and finite, got {}", self.threshold),
            });
        }
        if self.trips == 0 {
            return Err(RepairError::InvalidParameter {
                name: "trips",
                reason: "must be at least 1".into(),
            });
        }
        if self.check_every == 0 {
            return Err(RepairError::InvalidParameter {
                name: "check_every",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Latest per-stratum divergence snapshot, one entry per `(u, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratumDrift {
    /// Unprotected group.
    pub u: u8,
    /// Feature index.
    pub k: usize,
    /// Symmetrized KL of the cumulative archive pmf vs the plan's
    /// research marginal, indexed by `s`. `NaN`-free: strata with no
    /// observations yet report `0.0`.
    pub divergence: [f64; 2],
}

/// One monitored `(u, k)` stratum: the plan's reference marginals and
/// the cumulative archival histograms on the same support.
#[derive(Debug, Clone)]
struct StratumState {
    u: u8,
    k: usize,
    /// Reference pmfs `µ_{u,s,k}` recorded by the plan, indexed by `s`.
    reference: [Vec<f64>; 2],
    /// Cumulative archival histograms on the plan support, indexed by `s`.
    hist: [Histogram; 2],
    divergence: [f64; 2],
}

/// Streaming drift monitor for one [`RepairPlan`].
///
/// Feed archival batches through [`DriftMonitor::observe`]; poll
/// [`DriftMonitor::tripped`] after each batch. See the module docs for
/// the determinism contract.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    dim: usize,
    strata: Vec<StratumState>,
    rows_seen: u64,
    checks: u64,
    consecutive: u32,
    tripped: bool,
    max_divergence: f64,
}

impl DriftMonitor {
    /// Arm a monitor against a designed plan: one histogram pair per
    /// `(u, k)` stratum, binned on that stratum's support grid.
    ///
    /// # Errors
    /// Rejects invalid configs and degenerate plan supports.
    pub fn for_plan(plan: &RepairPlan, config: DriftConfig) -> Result<Self> {
        config.validate()?;
        let mut strata = Vec::with_capacity(plan.feature_plans().len());
        for fp in plan.feature_plans() {
            let hist = Histogram::centred_on_grid(&fp.support)?;
            strata.push(StratumState {
                u: fp.u,
                k: fp.k,
                reference: [
                    fp.marginals[0].masses().to_vec(),
                    fp.marginals[1].masses().to_vec(),
                ],
                hist: [hist.clone(), hist],
                divergence: [0.0, 0.0],
            });
        }
        Ok(Self {
            config,
            dim: plan.dim,
            strata,
            rows_seen: 0,
            checks: 0,
            consecutive: 0,
            tripped: false,
            max_divergence: 0.0,
        })
    }

    /// Fold a batch of archival rows into the monitor, evaluating a
    /// checkpoint at every `check_every`-row boundary crossed inside
    /// the batch.
    ///
    /// # Errors
    /// Rejects data whose dimension differs from the monitored plan's.
    pub fn observe(&mut self, data: &Dataset) -> Result<()> {
        if data.dim() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "drift monitor armed for dim {}, observed dim {}",
                self.dim,
                data.dim()
            )));
        }
        for p in data.points() {
            for st in &mut self.strata {
                if st.u == p.u {
                    st.hist[p.s as usize].push(p.x[st.k]);
                }
            }
            self.rows_seen += 1;
            if self.rows_seen >= self.config.min_rows
                && self.rows_seen.is_multiple_of(self.config.check_every)
            {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Evaluate one checkpoint over the cumulative histograms.
    fn checkpoint(&mut self) -> Result<()> {
        self.checks += 1;
        let mut worst = 0.0f64;
        for st in &mut self.strata {
            for s in 0..2 {
                // An empirical KL estimate over B bins carries a
                // ~(B−1)/2N small-sample bias; below ~8 samples per bin
                // that bias alone can cross any reasonable threshold.
                // Subgroups that thin are "not enough evidence yet",
                // not drift. (A pure count gate — batch invariant.)
                let counts = st.hist[s].counts();
                if st.hist[s].total() < 8 * counts.len() as u64 {
                    st.divergence[s] = 0.0;
                    continue;
                }
                // Jeffreys (α = ½) additive smoothing: a raw empirical
                // pmf has hard zeros wherever the stream happens not to
                // have landed yet, and symmetrized KL against the
                // smooth KDE reference turns each of those into a large
                // spurious term. The smoothed pmf is still a pure
                // function of the cumulative counts, so batch-size
                // invariance is untouched.
                let denom = st.hist[s].total() as f64 + 0.5 * counts.len() as f64;
                let pmf: Vec<f64> = counts.iter().map(|&c| (c as f64 + 0.5) / denom).collect();
                // Blend the reference with 1% uniform mass: the KDE
                // marginal's tail bins can be ~1e-12, and symmetrized
                // KL against any finite sample would book those as
                // drift forever.
                let b = counts.len() as f64;
                let reference: Vec<f64> = st.reference[s]
                    .iter()
                    .map(|&m| 0.99 * m + 0.01 / b)
                    .collect();
                let d = sym_kl_divergence(&pmf, &reference)?;
                st.divergence[s] = d;
                worst = worst.max(d);
            }
        }
        self.max_divergence = worst;
        if worst > self.config.threshold {
            self.consecutive += 1;
            if self.consecutive >= self.config.trips {
                self.tripped = true;
            }
        } else {
            self.consecutive = 0;
        }
        Ok(())
    }

    /// Whether the monitor has tripped (latched until [`Self::reset`]).
    #[inline]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Rows observed so far.
    #[inline]
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// Checkpoints evaluated so far.
    #[inline]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Current consecutive over-threshold checkpoint streak.
    #[inline]
    pub fn consecutive(&self) -> u32 {
        self.consecutive
    }

    /// Worst per-stratum divergence at the latest checkpoint.
    #[inline]
    pub fn max_divergence(&self) -> f64 {
        self.max_divergence
    }

    /// The armed configuration.
    #[inline]
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Latest per-stratum divergence snapshot (ordered `u`-major, like
    /// [`RepairPlan::feature_plans`]).
    pub fn divergences(&self) -> Vec<StratumDrift> {
        self.strata
            .iter()
            .map(|st| StratumDrift {
                u: st.u,
                k: st.k,
                divergence: st.divergence,
            })
            .collect()
    }

    /// Re-arm against a (re-designed) plan: fresh histograms and
    /// counters, same config. The observed-row history does not carry
    /// over — the new plan's marginals are the new baseline.
    ///
    /// # Errors
    /// Same as [`Self::for_plan`].
    pub fn reset(&mut self, plan: &RepairPlan) -> Result<()> {
        *self = Self::for_plan(plan, self.config)?;
        Ok(())
    }
}

/// Per-`(u, k)` symmetrized KL between the two protected-group research
/// marginals a plan recorded — the per-stratum disparity `E` is built
/// from. The lifecycle audit books this before/after a hot swap so
/// operators can see what the re-design bought.
///
/// # Errors
/// Propagates divergence failures (degenerate marginals).
pub fn plan_group_divergences(plan: &RepairPlan) -> Result<Vec<(u8, usize, f64)>> {
    plan.feature_plans()
        .iter()
        .map(|fp| {
            let d = sym_kl_divergence(fp.marginals[0].masses(), fp.marginals[1].masses())?;
            Ok((fp.u, fp.k, d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairConfig;
    use crate::plan::RepairPlanner;
    use otr_data::{Drift, SimulationSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn designed_plan_and_archive() -> (RepairPlan, Dataset) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(41);
        let research = spec.sample_dataset(1_500, &mut rng).unwrap();
        let archive = spec.sample_dataset(3_000, &mut rng).unwrap();
        let planner = RepairPlanner::new(RepairConfig {
            n_q: 32,
            ..RepairConfig::default()
        });
        (planner.design(&research).unwrap(), archive)
    }

    fn chunked_feed(monitor: &mut DriftMonitor, data: &Dataset, chunk: usize) {
        let pts = data.points();
        let mut i = 0;
        while i < pts.len() {
            let end = (i + chunk).min(pts.len());
            let batch = Dataset::from_points(pts[i..end].to_vec()).unwrap();
            monitor.observe(&batch).unwrap();
            i = end;
        }
    }

    #[test]
    fn in_distribution_stream_never_trips() {
        let (plan, archive) = designed_plan_and_archive();
        let mut m = DriftMonitor::for_plan(&plan, DriftConfig::default()).unwrap();
        m.observe(&archive).unwrap();
        assert!(!m.tripped(), "max divergence {}", m.max_divergence());
        assert!(m.checks() > 0);
        assert_eq!(m.rows_seen(), archive.len() as u64);
    }

    #[test]
    fn drifted_stream_trips_at_the_same_row_for_any_batch_size() {
        let (plan, archive) = designed_plan_and_archive();
        let drifted = Drift::MeanShift(vec![4.0, 4.0]).apply(&archive).unwrap();
        let config = DriftConfig {
            threshold: 0.2,
            trips: 2,
            check_every: 100,
            min_rows: 200,
        };

        let mut trip_rows = Vec::new();
        for chunk in [1usize, 7, 64, drifted.len()] {
            let mut m = DriftMonitor::for_plan(&plan, config).unwrap();
            // Feed row ranges and record the first tripping row index.
            let pts = drifted.points();
            let mut tripped_at = None;
            let mut i = 0;
            while i < pts.len() {
                let end = (i + chunk).min(pts.len());
                let batch = Dataset::from_points(pts[i..end].to_vec()).unwrap();
                m.observe(&batch).unwrap();
                if tripped_at.is_none() && m.tripped() {
                    // Trip row is a checkpoint boundary inside the batch.
                    tripped_at = Some(m.checks());
                }
                i = end;
            }
            assert!(m.tripped(), "chunk {chunk} never tripped");
            trip_rows.push((chunk, m.checks(), m.consecutive(), m.max_divergence()));
        }
        // Full-stream fold must agree exactly with row-at-a-time folds:
        // same checkpoint count, streak, and divergence bits.
        let (_, checks0, consec0, div0) = trip_rows[0];
        for &(chunk, checks, consec, div) in &trip_rows[1..] {
            assert_eq!(checks, checks0, "chunk {chunk} checkpoint count");
            assert_eq!(consec, consec0, "chunk {chunk} streak");
            assert_eq!(div.to_bits(), div0.to_bits(), "chunk {chunk} divergence");
        }
    }

    #[test]
    fn hysteresis_needs_consecutive_checkpoints() {
        let (plan, archive) = designed_plan_and_archive();
        let drifted = Drift::MeanShift(vec![4.0, 4.0]).apply(&archive).unwrap();
        let config = DriftConfig {
            threshold: 0.2,
            trips: 1_000_000, // unreachable
            check_every: 100,
            min_rows: 100,
        };
        let mut m = DriftMonitor::for_plan(&plan, config).unwrap();
        chunked_feed(&mut m, &drifted, 500);
        assert!(!m.tripped(), "trips floor ignored");
        assert!(m.consecutive() > 0, "drift not even counted");
        assert!(m.max_divergence() > config.threshold);
    }

    #[test]
    fn reset_rearms_against_the_new_plan() {
        let (plan, archive) = designed_plan_and_archive();
        let drifted = Drift::MeanShift(vec![4.0, 4.0]).apply(&archive).unwrap();
        let config = DriftConfig {
            threshold: 0.2,
            trips: 1,
            check_every: 100,
            min_rows: 100,
        };
        let mut m = DriftMonitor::for_plan(&plan, config).unwrap();
        m.observe(&drifted).unwrap();
        assert!(m.tripped());

        // Re-design on the drifted data and re-arm: the same stream is
        // now in-distribution.
        let planner = RepairPlanner::new(plan.config);
        let new_plan = planner.redesign(&drifted, &plan).unwrap();
        m.reset(&new_plan).unwrap();
        assert!(!m.tripped());
        assert_eq!(m.rows_seen(), 0);
        m.observe(&drifted).unwrap();
        assert!(
            !m.tripped(),
            "re-designed plan still drifted: {}",
            m.max_divergence()
        );
    }

    #[test]
    fn redesign_on_drifted_data_shrinks_the_group_divergence_gap_change() {
        let (plan, archive) = designed_plan_and_archive();
        let drifted = Drift::GroupShift {
            s: 0,
            shift: vec![2.0, 2.0],
        }
        .apply(&archive)
        .unwrap();
        let before = plan_group_divergences(&plan).unwrap();
        assert_eq!(before.len(), plan.feature_plans().len());
        // The plan's own research marginals differ across s by design.
        assert!(before.iter().all(|(_, _, d)| d.is_finite() && *d >= 0.0));
        // After a group shift widens the disparity, a redesign on the
        // drifted data books a larger per-stratum E than the stale plan.
        let planner = RepairPlanner::new(plan.config);
        let new_plan = planner.redesign(&drifted, &plan).unwrap();
        let after = plan_group_divergences(&new_plan).unwrap();
        assert_eq!(after.len(), before.len());
        assert!(
            after.iter().map(|(_, _, d)| d).sum::<f64>()
                > before.iter().map(|(_, _, d)| d).sum::<f64>(),
            "group shift should widen the measured disparity"
        );
    }

    #[test]
    fn rejects_bad_config_and_dimension_mismatch() {
        let (plan, _) = designed_plan_and_archive();
        for bad in [
            DriftConfig {
                threshold: 0.0,
                ..DriftConfig::default()
            },
            DriftConfig {
                trips: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                check_every: 0,
                ..DriftConfig::default()
            },
        ] {
            assert!(DriftMonitor::for_plan(&plan, bad).is_err());
        }
        let mut m = DriftMonitor::for_plan(&plan, DriftConfig::default()).unwrap();
        let spec = SimulationSpec {
            means: [
                [vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]],
                [vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]],
            ],
            ..SimulationSpec::paper_defaults()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let three_d = spec.sample_dataset(100, &mut rng).unwrap();
        assert!(m.observe(&three_d).is_err());
    }
}
