//! Configuration of the repair-plan design (the operating conditions
//! `nQ`, `t`, bandwidth, and solver backend studied in Section V-A2).

use serde::{Deserialize, Serialize};

use otr_stats::kde::Bandwidth;

use crate::error::{RepairError, Result};

// Backend selection is owned by the OT crate's unified solver seam;
// re-exported here so existing `otr_core::SolverBackend` callers keep
// working.
pub use otr_ot::solvers::backend::SolverBackend;

/// How Algorithm 2 splits a plan row's mass over target states when a
/// point is repaired (the Section IV-B design axis that
/// `ablation_randomization` measures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MassSplit {
    /// The paper's randomized split: Bernoulli grid quantization
    /// (Equation 14) followed by a multinomial draw from the normalized
    /// plan row (Equation 15). Preserves the repaired marginal exactly.
    #[default]
    Randomized,
    /// Deterministic variant: nearest grid cell, then the row's
    /// barycentric projection (conditional mean). Repairs equal inputs
    /// equally — individual-fairness friendly — at the cost of
    /// collapsing each row's mass to a point.
    Deterministic,
}

/// Configuration for [`crate::RepairPlanner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Number of interpolated support states `nQ` per `(u, k)` (line 4 of
    /// Algorithm 1). The paper uses 50 for the simulation and 250 for
    /// Adult.
    pub n_q: usize,
    /// Geodesic position `t ∈ [0, 1]` of the repair target (Equation 7).
    /// `0.5` is the fair barycentre with equal expected cost to both
    /// groups; values closer to 0/1 implement partial repair.
    pub t: f64,
    /// KDE bandwidth rule for the interpolated marginals (Equation 11).
    pub bandwidth: Bandwidth,
    /// OT solver backend.
    pub solver: SolverBackend,
    /// Minimum research observations required per `(u, s)` group.
    pub min_group_size: usize,
    /// Sampling resolution of the barycentre quantile curve (`None` =
    /// automatic: `max(16 · nQ, 1024)`).
    pub barycentre_resolution: Option<usize>,
    /// Worker threads for dataset-level repair, batch repair, and plan
    /// design (`0` = auto: the `OTR_THREADS` environment variable if
    /// set, else the machine's available parallelism). Parallel output
    /// is bit-identical to sequential for every setting.
    ///
    /// Runtime policy, not part of the designed artifact: it is **not**
    /// serialized into plan JSON (a design-time thread count must not
    /// become the execution policy of every machine the plan ships to);
    /// deserialized plans always start at `0` = auto.
    #[serde(skip)]
    pub threads: usize,
    /// Row-batch size of the columnar repair kernels (`None` = auto: the
    /// `OTR_BATCH_ROWS` environment variable if set, else
    /// `otr_par::BATCH_ROWS_DEFAULT`). Pure blocking policy — it changes
    /// wall-clock time and nothing else — and, like [`Self::threads`],
    /// machine-local: not serialized into plan JSON.
    #[serde(skip)]
    pub batch_rows: Option<usize>,
    /// Mass-split mode of Algorithm 2 (randomized multinomial draws vs
    /// deterministic barycentric projection).
    #[serde(default)]
    pub mass_split: MassSplit,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            n_q: 50,
            t: 0.5,
            bandwidth: Bandwidth::Silverman,
            solver: SolverBackend::ExactMonotone,
            min_group_size: 2,
            barycentre_resolution: None,
            threads: 0,
            batch_rows: None,
            mass_split: MassSplit::Randomized,
        }
    }
}

impl RepairConfig {
    /// Default configuration at a given support resolution.
    pub fn with_n_q(n_q: usize) -> Self {
        Self {
            n_q,
            ..Self::default()
        }
    }

    /// Validate parameter domains.
    ///
    /// # Errors
    /// Requires `n_q ≥ 2`, `t ∈ [0,1]`, positive Sinkhorn `ε`, positive
    /// fixed bandwidths, `min_group_size ≥ 2`.
    pub fn validate(&self) -> Result<()> {
        if self.n_q < 2 {
            return Err(RepairError::InvalidParameter {
                name: "n_q",
                reason: format!("must be at least 2, got {}", self.n_q),
            });
        }
        if !(0.0..=1.0).contains(&self.t) || self.t.is_nan() {
            return Err(RepairError::InvalidParameter {
                name: "t",
                reason: format!("must be in [0,1], got {}", self.t),
            });
        }
        self.solver.validate()?;
        if let Bandwidth::Fixed(h) = self.bandwidth {
            if !(h > 0.0) || !h.is_finite() {
                return Err(RepairError::InvalidParameter {
                    name: "bandwidth",
                    reason: format!("fixed bandwidth must be positive, got {h}"),
                });
            }
        }
        if self.min_group_size < 2 {
            return Err(RepairError::InvalidParameter {
                name: "min_group_size",
                reason: "must be at least 2".into(),
            });
        }
        if let Some(r) = self.barycentre_resolution {
            if r < self.n_q {
                return Err(RepairError::InvalidParameter {
                    name: "barycentre_resolution",
                    reason: format!("must be >= n_q ({}), got {r}", self.n_q),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RepairConfig::default().validate().unwrap();
        RepairConfig::with_n_q(250).validate().unwrap();
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut c = RepairConfig::default();
        c.n_q = 1;
        assert!(c.validate().is_err());

        let mut c = RepairConfig::default();
        c.t = 1.5;
        assert!(c.validate().is_err());

        let mut c = RepairConfig::default();
        c.solver = SolverBackend::sinkhorn(0.0);
        assert!(c.validate().is_err());

        let mut c = RepairConfig::default();
        c.bandwidth = Bandwidth::Fixed(-1.0);
        assert!(c.validate().is_err());

        let mut c = RepairConfig::default();
        c.min_group_size = 1;
        assert!(c.validate().is_err());

        let mut c = RepairConfig::default();
        c.barycentre_resolution = Some(10);
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = RepairConfig {
            n_q: 250,
            t: 0.3,
            bandwidth: Bandwidth::Fixed(0.5),
            solver: SolverBackend::sinkhorn(0.01),
            min_group_size: 5,
            barycentre_resolution: Some(4096),
            threads: 3,
            batch_rows: Some(1024),
            mass_split: MassSplit::Deterministic,
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: RepairConfig = serde_json::from_str(&json).unwrap();
        // `threads` and `batch_rows` are machine-local runtime policy and
        // must NOT travel with the artifact; everything else round-trips.
        assert_eq!(back.threads, 0);
        assert_eq!(back.batch_rows, None);
        assert_eq!(
            c,
            RepairConfig {
                threads: 3,
                batch_rows: Some(1024),
                ..back
            }
        );
    }

    #[test]
    fn threads_and_mass_split_default_when_absent() {
        // Plans serialized before the parallel-execution fields existed
        // must keep deserializing (the deployable-artifact contract).
        let legacy = r#"{"n_q":50,"t":0.5,"bandwidth":"Silverman",
            "solver":"ExactMonotone","min_group_size":2,
            "barycentre_resolution":null}"#;
        let back: RepairConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.threads, 0);
        assert_eq!(back.mass_split, MassSplit::Randomized);
        back.validate().unwrap();
    }
}
