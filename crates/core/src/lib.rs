//! # otr-core — the paper's contribution: distributional OT repair of
//! archival data designed on small research data sets
//!
//! Implements Sections III–IV of *"Optimal Transport for Fairness:
//! Archival Data Repair using Small Research Data Sets"* (ICDE 2024):
//!
//! * [`config`] — [`RepairConfig`]: support resolution `nQ`, geodesic
//!   position `t`, KDE bandwidth rule, and the OT solver backend (exact
//!   monotone vs Sinkhorn).
//! * [`plan`] — **Algorithm 1**: [`RepairPlanner::design`] builds, for
//!   every `(u, k)`, the interpolated support `Q_{u,k}`, the KDE marginal
//!   pmfs `µ_{u,s,k}` (Equation 11), the `t`-barycentre target `ν_{u,k}`
//!   (Equation 7), and the OT plans `π*_{u,s,k}` (Equation 13), all from
//!   the research data alone. The result, [`RepairPlan`], is serializable:
//!   design once, ship it, repair archival torrents elsewhere.
//! * [`repair`] — **Algorithm 2**: randomized off-sample repair of
//!   labelled archival points through the plan (grid-cell Bernoulli of
//!   Equation 14 plus the multinomial row draw of Equation 15), exposed
//!   point-wise ([`RepairPlan::repair_value`]), dataset-wise
//!   ([`RepairPlan::repair_dataset`]), and as a streaming
//!   [`repair::StreamingRepairer`].
//! * [`geometric`] — the on-sample **geometric repair** baseline of
//!   Del Barrio et al. (reference \[10\]; Equations 8–9), against which
//!   Tables I and II compare.
//! * [`damage`] — data-damage diagnostics (per-feature MSE and `W₂`
//!   between pre- and post-repair marginals), quantifying the
//!   repair/utility trade-off discussed in Section VI.
//! * [`monge`] — the deterministic **Monge quantile-matching repair**,
//!   the `nQ → ∞` limit of Algorithm 2 anticipated by the paper's
//!   Brenier discussion (Section VI); derived directly from a designed
//!   plan.
//! * [`blind`] — **group-blind repair** of `s`-unlabelled archival data
//!   (the paper's priority future-work direction, Section VI): posterior
//!   `Pr[s|x,u]` from the plan's own interpolated marginals, then a
//!   posterior-randomized plan-row choice.
//! * [`continuous_u`] — repair with a **continuous unprotected
//!   attribute** `u ∈ ℝ` via quantile binning (Section VI's "important
//!   generalization").
//! * [`joint`] — the 2-D joint repair for correlation-borne dependence
//!   (Section VI's intra-feature-correlation caveat).
//!
//! Every dataset-scale entry point has a row-parallel variant with
//! per-row SplitMix64 RNG streams, **bit-identical for any thread
//! count** (see `docs/determinism.md` at the workspace root).
//!
//! ## Example
//!
//! The paper's deployment loop — design on the small research set,
//! repair the archival torrent:
//!
//! ```
//! use otr_core::{RepairConfig, RepairPlanner};
//! use otr_data::SimulationSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let split = SimulationSpec::paper_defaults()
//!     .generate(300, 1_000, &mut rng)
//!     .unwrap();
//! let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
//!     .design(&split.research)
//!     .unwrap();
//! // Seeded + parallel: the same bytes at every thread count.
//! let repaired = plan.repair_dataset_par(&split.archive, 7).unwrap();
//! assert_eq!(repaired.len(), split.archive.len());
//! ```

pub mod blind;
pub mod config;
pub mod continuous_u;
pub mod damage;
pub mod error;
pub mod geometric;
pub mod joint;
pub mod lifecycle;
pub mod monge;
pub mod plan;
pub mod repair;

pub use blind::GroupBlindRepairer;
pub use config::{MassSplit, RepairConfig, SolverBackend};
pub use continuous_u::{ContinuousUPoint, ContinuousURepairer};
pub use damage::{dataset_damage, dataset_damage_columnar, DamageReport};
pub use error::RepairError;
pub use geometric::GeometricRepair;
pub use joint::{
    BarycentreStageStat, JointDesignReport, JointRepairConfig, JointRepairPlan, JointStratumReport,
};
pub use lifecycle::{plan_group_divergences, DriftConfig, DriftMonitor, StratumDrift};
pub use monge::MongeRepair;
pub use otr_ot::KernelChoice;
pub use plan::{FeaturePlan, RepairPlan, RepairPlanner};
pub use repair::StreamingRepairer;
