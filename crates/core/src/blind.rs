//! Group-blind repair of `s`-unlabelled archival data — the paper's
//! priority future-work direction (Section VI; its refs \[37\]–\[39\]).
//!
//! Algorithm 1's artifacts already contain everything needed to handle a
//! missing protected attribute: the interpolated marginals `µ_{u,s,k}`
//! are density estimates of each subgroup, so for an unlabelled archival
//! point the posterior
//!
//! ```text
//! Pr[s | x, u] ∝ Pr[s | u] · Π_k µ_{u,s,k}(x_k)      (naive-Bayes factorization,
//!                                                      consistent with the paper's
//!                                                      per-feature stratification)
//! ```
//!
//! is available at zero extra fitting cost. The repairer draws
//! `ŝ ~ Bernoulli(Pr[s=0 | x, u])` per point and routes the point through
//! the corresponding plan rows — marginally, the repaired distribution is
//! the posterior mixture of the two `s`-conditional repairs, which is
//! exactly the group-blind transport of Zhou & Marecek (paper ref \[37\])
//! specialized to our discrete plans.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use otr_data::{Dataset, LabelledPoint};
use otr_par::{splitmix_seed, try_par_map_indexed};

use crate::error::{RepairError, Result};
use crate::plan::RepairPlan;

/// Repairs archival data whose protected attribute is unobserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupBlindRepairer {
    plan: RepairPlan,
    /// `Pr[s = 0 | u]` estimated from the research data, indexed by `u`.
    prior_s0_given_u: [f64; 2],
}

impl GroupBlindRepairer {
    /// Wrap a designed plan with subgroup priors taken from the research
    /// data it was designed on.
    ///
    /// # Errors
    /// Requires both priors in `(0, 1)` (a one-sided research group cannot
    /// inform a blind posterior).
    pub fn new(plan: RepairPlan, research: &Dataset) -> Result<Self> {
        let prior_s0_given_u = [research.prob_s0_given_u(0), research.prob_s0_given_u(1)];
        for (u, p) in prior_s0_given_u.iter().enumerate() {
            if !(0.0 < *p && *p < 1.0) {
                return Err(RepairError::InvalidParameter {
                    name: "prior_s0_given_u",
                    reason: format!("research Pr[s=0|u={u}] = {p} is degenerate"),
                });
            }
        }
        Ok(Self {
            plan,
            prior_s0_given_u,
        })
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Linear interpolation of a marginal pmf at `x` (proportional to the
    /// interpolated density; shared uniform grid makes the normalization
    /// constant cancel in the posterior ratio).
    fn marginal_mass_at(&self, u: u8, s: u8, k: usize, x: f64) -> Result<f64> {
        let fp = self.plan.feature_plan(u, k)?;
        let support = &fp.support;
        let masses = fp.marginals[s as usize].masses();
        let n = support.len();
        if x <= support[0] {
            return Ok(masses[0]);
        }
        if x >= support[n - 1] {
            return Ok(masses[n - 1]);
        }
        let step = fp.step();
        let pos = (x - support[0]) / step;
        let i = (pos.floor() as usize).min(n - 2);
        let frac = pos - i as f64;
        Ok(masses[i] * (1.0 - frac) + masses[i + 1] * frac)
    }

    /// Posterior probability that an unlabelled point belongs to `s = 0`,
    /// given its features and `u`.
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn posterior_s0(&self, u: u8, x: &[f64]) -> Result<f64> {
        if x.len() != self.plan.dim {
            return Err(RepairError::PlanMismatch(format!(
                "point dimension {} vs plan dimension {}",
                x.len(),
                self.plan.dim
            )));
        }
        let prior0 = self.prior_s0_given_u[u as usize];
        // Work in logs: d features of potentially tiny masses.
        let mut log0 = prior0.ln();
        let mut log1 = (1.0 - prior0).ln();
        for (k, &v) in x.iter().enumerate() {
            log0 += self.marginal_mass_at(u, 0, k, v)?.max(1e-300).ln();
            log1 += self.marginal_mass_at(u, 1, k, v)?.max(1e-300).ln();
        }
        let m = log0.max(log1);
        let w0 = (log0 - m).exp();
        let w1 = (log1 - m).exp();
        Ok(w0 / (w0 + w1))
    }

    /// Repair one unlabelled point: draw `ŝ` from the posterior, then run
    /// Algorithm 2 under `ŝ`. The returned point carries `ŝ` as its `s`
    /// field (callers evaluating fairness should substitute ground truth
    /// when they have it).
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point_blind<R: Rng + ?Sized>(
        &self,
        u: u8,
        x: &[f64],
        rng: &mut R,
    ) -> Result<LabelledPoint> {
        let p0 = self.posterior_s0(u, x)?;
        let s_hat = u8::from(rng.gen::<f64>() >= p0);
        let point = LabelledPoint {
            x: x.to_vec(),
            s: s_hat,
            u,
        };
        self.plan.repair_point(&point, rng)
    }

    /// Repair a data set whose `s` labels are treated as unobserved (the
    /// stored labels are ignored for routing and preserved in the output
    /// so that fairness can be evaluated against ground truth).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_blind<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        rng: &mut R,
    ) -> Result<Dataset> {
        if data.dim() != self.plan.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs plan dimension {}",
                data.dim(),
                self.plan.dim
            )));
        }
        let mut points = Vec::with_capacity(data.len());
        for p in data.points() {
            let repaired = self.repair_point_blind(p.u, &p.x, rng)?;
            points.push(LabelledPoint {
                x: repaired.x,
                s: p.s, // ground truth back in place for evaluation
                u: p.u,
            });
        }
        Ok(Dataset::from_points(points)?)
    }

    /// Row-parallel blind repair with per-row SplitMix64 RNG streams
    /// derived from `seed` — the group-blind analogue of
    /// [`RepairPlan::repair_dataset_par`]. Row `i` draws its posterior
    /// `ŝ` and its plan-row randomness from
    /// `StdRng::seed_from_u64(splitmix_seed(seed, i))` whatever thread
    /// executes it, so the output is **bit-identical for any thread
    /// count** (threads come from the wrapped plan's `config.threads`;
    /// `0` = auto / `OTR_THREADS`).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_blind_par(&self, data: &Dataset, seed: u64) -> Result<Dataset> {
        if data.dim() != self.plan.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs plan dimension {}",
                data.dim(),
                self.plan.dim
            )));
        }
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), self.plan.config.threads, |i| {
            let p = &pts[i];
            let mut rng = StdRng::seed_from_u64(splitmix_seed(seed, i as u64));
            let repaired = self.repair_point_blind(p.u, &p.x, &mut rng)?;
            Ok::<_, RepairError>(LabelledPoint {
                x: repaired.x,
                s: p.s, // ground truth back in place for evaluation
                u: p.u,
            })
        })?;
        Ok(Dataset::from_points(points)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairConfig;
    use crate::plan::RepairPlanner;
    use otr_data::SimulationSpec;
    use otr_fairness::ConditionalDependence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (GroupBlindRepairer, Dataset) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(500, 3_000, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
            .design(&split.research)
            .unwrap();
        (
            GroupBlindRepairer::new(plan, &split.research).unwrap(),
            split.archive,
        )
    }

    #[test]
    fn posterior_tracks_component_location() {
        let (blind, _) = setup(1);
        // u=0: s=0 component sits at (-1,-1), s=1 at (0,0).
        let p_near_s0 = blind.posterior_s0(0, &[-1.5, -1.5]).unwrap();
        let p_near_s1 = blind.posterior_s0(0, &[0.5, 0.5]).unwrap();
        assert!(p_near_s0 > 0.5, "p(s=0 | x near µ00) = {p_near_s0}");
        assert!(p_near_s1 < 0.4, "p(s=0 | x near µ01) = {p_near_s1}");
        for p in [p_near_s0, p_near_s1] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn blind_repair_reduces_dependence_without_labels() {
        let (blind, archive) = setup(2);
        let mut rng = StdRng::seed_from_u64(7);
        let repaired = blind.repair_dataset_blind(&archive, &mut rng).unwrap();
        let cd = ConditionalDependence::default();
        let before = cd.evaluate(&archive).unwrap().aggregate();
        let after = cd.evaluate(&repaired).unwrap().aggregate();
        assert!(
            after < before * 0.8,
            "blind repair should help: {before} -> {after}"
        );
    }

    #[test]
    fn blind_repair_weaker_than_oracle() {
        let (blind, archive) = setup(3);
        let mut rng = StdRng::seed_from_u64(8);
        let blind_rep = blind.repair_dataset_blind(&archive, &mut rng).unwrap();
        let oracle_rep = blind.plan().repair_dataset(&archive, &mut rng).unwrap();
        let cd = ConditionalDependence::default();
        let e_blind = cd.evaluate(&blind_rep).unwrap().aggregate();
        let e_oracle = cd.evaluate(&oracle_rep).unwrap().aggregate();
        assert!(
            e_oracle <= e_blind + 0.02,
            "oracle ({e_oracle}) should not lose to blind ({e_blind})"
        );
    }

    #[test]
    fn labels_and_cardinality_preserved() {
        let (blind, archive) = setup(4);
        let mut rng = StdRng::seed_from_u64(9);
        let repaired = blind.repair_dataset_blind(&archive, &mut rng).unwrap();
        assert_eq!(repaired.len(), archive.len());
        for (a, b) in repaired.points().iter().zip(archive.points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn parallel_blind_repair_identical_across_thread_counts() {
        let (mut blind, archive) = setup(7);
        let mut reference: Option<Dataset> = None;
        for threads in [1usize, 2, 7] {
            blind.plan.config.threads = threads;
            let out = blind.repair_dataset_blind_par(&archive, 23).unwrap();
            // Labels are ground truth, features posterior-routed repairs.
            for (a, b) in out.points().iter().zip(archive.points()) {
                assert_eq!(a.s, b.s);
                assert_eq!(a.u, b.u);
            }
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(out.points(), r.points(), "threads = {threads}"),
            }
        }
        // Still reduces dependence through the parallel path.
        let cd = ConditionalDependence::default();
        let before = cd.evaluate(&archive).unwrap().aggregate();
        let after = cd.evaluate(&reference.unwrap()).unwrap().aggregate();
        assert!(
            after < before * 0.8,
            "blind par repair: {before} -> {after}"
        );
    }

    #[test]
    fn degenerate_prior_rejected() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        let split = spec.generate(400, 400, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(20))
            .design(&split.research)
            .unwrap();
        // A research set with no s=0 in u=1 has a degenerate prior.
        let one_sided = Dataset::from_points(
            split
                .research
                .points()
                .iter()
                .filter(|p| !(p.u == 1 && p.s == 0))
                .cloned()
                .collect(),
        )
        .unwrap();
        assert!(GroupBlindRepairer::new(plan, &one_sided).is_err());
    }

    #[test]
    fn posterior_rejects_bad_dim() {
        let (blind, _) = setup(6);
        assert!(blind.posterior_s0(0, &[0.0]).is_err());
    }
}
