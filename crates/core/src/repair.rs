//! Streaming (online) archival repair — Algorithm 2 applied to a torrent.
//!
//! The paper's motivating deployment (Section I) is a stream of archival
//! observations arriving *after* the repair was designed. The
//! [`StreamingRepairer`] wraps a designed [`RepairPlan`] with an owned RNG
//! and running counters, so a data pipeline can push labelled points
//! through it one at a time with O(1) amortized cost per feature and no
//! further reference to the research data.

use rand::rngs::StdRng;
use rand::SeedableRng;

use otr_data::LabelledPoint;

use crate::error::Result;
use crate::plan::RepairPlan;

/// Running statistics of a repair stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Points repaired so far.
    pub repaired: u64,
    /// Feature values that fell outside the plan's support range and were
    /// clamped to a boundary state (a stationarity warning sign —
    /// Section V-A2a).
    pub out_of_range: u64,
}

/// An online repairer: a designed plan plus an owned RNG.
#[derive(Debug, Clone)]
pub struct StreamingRepairer {
    plan: RepairPlan,
    rng: StdRng,
    stats: StreamStats,
}

impl StreamingRepairer {
    /// Wrap a designed plan with a deterministic RNG seed.
    pub fn new(plan: RepairPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            stats: StreamStats::default(),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Repair one labelled point, updating stream statistics.
    ///
    /// # Errors
    /// Same requirements as [`RepairPlan::repair_point`].
    pub fn repair(&mut self, point: &LabelledPoint) -> Result<LabelledPoint> {
        // Count out-of-range features before repairing.
        for (k, &v) in point.x.iter().enumerate() {
            if let Ok(fp) = self.plan.feature_plan(point.u, k) {
                let lo = fp.support[0];
                let hi = fp.support[fp.support.len() - 1];
                if v < lo || v > hi {
                    self.stats.out_of_range += 1;
                }
            }
        }
        let repaired = self.plan.repair_point(point, &mut self.rng)?;
        self.stats.repaired += 1;
        Ok(repaired)
    }

    /// Repair a batch, returning repaired points in order.
    ///
    /// # Errors
    /// Fails atomically on the first invalid point.
    pub fn repair_batch(&mut self, points: &[LabelledPoint]) -> Result<Vec<LabelledPoint>> {
        points.iter().map(|p| self.repair(p)).collect()
    }

    /// Fraction of feature values seen so far that were out of range.
    pub fn out_of_range_rate(&self) -> f64 {
        if self.stats.repaired == 0 {
            return 0.0;
        }
        self.stats.out_of_range as f64 / (self.stats.repaired as f64 * self.plan.dim as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairConfig;
    use crate::plan::RepairPlanner;
    use otr_data::SimulationSpec;
    use rand::rngs::StdRng;

    fn setup() -> (RepairPlan, Vec<LabelledPoint>) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let research = spec.sample_dataset(400, &mut rng).unwrap();
        let archive = spec.sample_dataset(200, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&research)
            .unwrap();
        (plan, archive.points().to_vec())
    }

    #[test]
    fn stream_matches_batch_cardinality() {
        let (plan, points) = setup();
        let mut streamer = StreamingRepairer::new(plan, 7);
        let out = streamer.repair_batch(&points).unwrap();
        assert_eq!(out.len(), points.len());
        assert_eq!(streamer.stats().repaired, points.len() as u64);
    }

    #[test]
    fn labels_pass_through() {
        let (plan, points) = setup();
        let mut streamer = StreamingRepairer::new(plan, 8);
        for p in points.iter().take(50) {
            let r = streamer.repair(p).unwrap();
            assert_eq!(r.s, p.s);
            assert_eq!(r.u, p.u);
        }
    }

    #[test]
    fn out_of_range_counter_triggers() {
        let (plan, _) = setup();
        let mut streamer = StreamingRepairer::new(plan, 9);
        let extreme = LabelledPoint {
            x: vec![1e9, -1e9],
            s: 0,
            u: 0,
        };
        streamer.repair(&extreme).unwrap();
        assert_eq!(streamer.stats().out_of_range, 2);
        assert!(streamer.out_of_range_rate() > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let (plan, points) = setup();
        let a = StreamingRepairer::new(plan.clone(), 42)
            .repair_batch(&points)
            .unwrap();
        let b = StreamingRepairer::new(plan, 42)
            .repair_batch(&points)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stream_rate_is_zero() {
        let (plan, _) = setup();
        let streamer = StreamingRepairer::new(plan, 1);
        assert_eq!(streamer.out_of_range_rate(), 0.0);
    }
}
