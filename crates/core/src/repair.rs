//! Streaming (online) archival repair — Algorithm 2 applied to a torrent.
//!
//! The paper's motivating deployment (Section I) is a stream of archival
//! observations arriving *after* the repair was designed. The
//! [`StreamingRepairer`] wraps a designed [`RepairPlan`] with an owned RNG
//! and running counters, so a data pipeline can push labelled points
//! through it one at a time with O(1) amortized cost per feature and no
//! further reference to the research data.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use otr_data::{ColumnarDataset, LabelledPoint};
use otr_par::{splitmix_seed, try_par_map_indexed};

use crate::config::MassSplit;
use crate::error::{RepairError, Result};
use crate::plan::RepairPlan;

/// Running statistics of a repair stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Points repaired so far.
    pub repaired: u64,
    /// Feature values that fell outside the plan's support range and were
    /// clamped to a boundary state (a stationarity warning sign —
    /// Section V-A2a).
    pub out_of_range: u64,
}

/// An online repairer: a designed plan plus an owned RNG.
#[derive(Debug, Clone)]
pub struct StreamingRepairer {
    plan: RepairPlan,
    rng: StdRng,
    stats: StreamStats,
}

impl StreamingRepairer {
    /// Wrap a designed plan with a deterministic RNG seed.
    pub fn new(plan: RepairPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            stats: StreamStats::default(),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Repair one labelled point, updating stream statistics.
    ///
    /// # Errors
    /// Same requirements as [`RepairPlan::repair_point`].
    pub fn repair(&mut self, point: &LabelledPoint) -> Result<LabelledPoint> {
        let oob = out_of_range_features(&self.plan, point);
        let repaired = self.plan.repair_point(point, &mut self.rng)?;
        self.stats.out_of_range += oob;
        self.stats.repaired += 1;
        Ok(repaired)
    }

    /// Repair a batch, returning repaired points in order.
    ///
    /// The batch is repaired in parallel (`plan.config.threads`; `0` =
    /// auto / `OTR_THREADS`): the owned RNG is advanced **once** to
    /// derive a batch seed, and every point then draws from its own
    /// SplitMix64 stream, so the output is a pure function of the
    /// repairer's seed, the batches pushed so far, and the batch
    /// contents — bit-identical for any thread count.
    ///
    /// # Errors
    /// Fails atomically on the first invalid point (by batch order):
    /// stream statistics **and the owned RNG** are untouched on failure,
    /// and an empty batch is a strict no-op, so a caller that drops a
    /// bad batch and retries stays on the same random stream.
    pub fn repair_batch(&mut self, points: &[LabelledPoint]) -> Result<Vec<LabelledPoint>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        // Validate the whole batch (cheap label/dimension checks) before
        // consuming any randomness — atomicity of the RNG stream.
        for p in points {
            self.plan.repair_point_domain(p)?;
        }
        let batch_seed = self.rng.next_u64();
        let plan = &self.plan;
        let repaired = try_par_map_indexed(points.len(), plan.config.threads, |i| {
            let p = &points[i];
            let oob = out_of_range_features(plan, p);
            let mut rng = StdRng::seed_from_u64(splitmix_seed(batch_seed, i as u64));
            plan.repair_point(p, &mut rng).map(|r| (r, oob))
        })?;
        let mut out = Vec::with_capacity(repaired.len());
        for (r, oob) in repaired {
            self.stats.repaired += 1;
            self.stats.out_of_range += oob;
            out.push(r);
        }
        Ok(out)
    }

    /// Repair a columnar batch through the column-slice kernels of
    /// [`RepairPlan::repair_columnar_par`], updating stream statistics.
    ///
    /// Same RNG contract as [`Self::repair_batch`]: the owned RNG is
    /// advanced **once** for the batch seed and every row then draws
    /// from its own SplitMix64 stream — so on equivalent inputs the two
    /// entry points produce byte-identical repairs and leave the
    /// repairer in byte-identical state. A pipeline can mix row and
    /// columnar batches freely.
    ///
    /// # Errors
    /// Fails atomically like [`Self::repair_batch`] (labels and column
    /// shapes are already guaranteed by [`ColumnarDataset`], so only a
    /// dimension mismatch or an uncompiled plan can fail): statistics
    /// and the owned RNG are untouched on failure, and an empty batch is
    /// a strict no-op.
    pub fn repair_batch_columnar(&mut self, batch: &ColumnarDataset) -> Result<ColumnarDataset> {
        if batch.is_empty() {
            return Ok(batch.clone());
        }
        // All failure modes checked before consuming any randomness —
        // atomicity of the RNG stream.
        if batch.dim() != self.plan.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs plan dimension {}",
                batch.dim(),
                self.plan.dim
            )));
        }
        if self.plan.config.mass_split == MassSplit::Randomized
            && self.plan.feature_plans().iter().any(|fp| !fp.is_compiled())
        {
            return Err(RepairError::PlanMismatch(
                "feature plan is not compiled; call compile() after deserialization".into(),
            ));
        }
        let batch_seed = self.rng.next_u64();
        let (repaired, oob) = self.plan.repair_columnar_counted(batch, batch_seed)?;
        self.stats.repaired += batch.len() as u64;
        self.stats.out_of_range += oob;
        Ok(repaired)
    }

    /// Fraction of feature values seen so far that were out of range.
    pub fn out_of_range_rate(&self) -> f64 {
        if self.stats.repaired == 0 {
            return 0.0;
        }
        self.stats.out_of_range as f64 / (self.stats.repaired as f64 * self.plan.dim as f64)
    }
}

/// Feature values of `point` outside the plan's support range (they will
/// be clamped to boundary states at repair time — the stationarity
/// warning sign of Section V-A2a). The single definition behind both the
/// point-wise and batch stream counters.
fn out_of_range_features(plan: &RepairPlan, point: &LabelledPoint) -> u64 {
    point
        .x
        .iter()
        .enumerate()
        .filter(|&(k, &v)| {
            plan.feature_plan(point.u, k)
                .is_ok_and(|fp| v < fp.support[0] || v > fp.support[fp.support.len() - 1])
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairConfig;
    use crate::plan::RepairPlanner;
    use otr_data::SimulationSpec;
    use rand::rngs::StdRng;

    fn setup() -> (RepairPlan, Vec<LabelledPoint>) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let research = spec.sample_dataset(400, &mut rng).unwrap();
        let archive = spec.sample_dataset(200, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&research)
            .unwrap();
        (plan, archive.points().to_vec())
    }

    #[test]
    fn stream_matches_batch_cardinality() {
        let (plan, points) = setup();
        let mut streamer = StreamingRepairer::new(plan, 7);
        let out = streamer.repair_batch(&points).unwrap();
        assert_eq!(out.len(), points.len());
        assert_eq!(streamer.stats().repaired, points.len() as u64);
    }

    #[test]
    fn labels_pass_through() {
        let (plan, points) = setup();
        let mut streamer = StreamingRepairer::new(plan, 8);
        for p in points.iter().take(50) {
            let r = streamer.repair(p).unwrap();
            assert_eq!(r.s, p.s);
            assert_eq!(r.u, p.u);
        }
    }

    #[test]
    fn out_of_range_counter_triggers() {
        let (plan, _) = setup();
        let mut streamer = StreamingRepairer::new(plan, 9);
        let extreme = LabelledPoint {
            x: vec![1e9, -1e9],
            s: 0,
            u: 0,
        };
        streamer.repair(&extreme).unwrap();
        assert_eq!(streamer.stats().out_of_range, 2);
        assert!(streamer.out_of_range_rate() > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let (plan, points) = setup();
        let a = StreamingRepairer::new(plan.clone(), 42)
            .repair_batch(&points)
            .unwrap();
        let b = StreamingRepairer::new(plan, 42)
            .repair_batch(&points)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn failed_or_empty_batch_leaves_rng_untouched() {
        let (plan, points) = setup();
        let bad = LabelledPoint {
            x: vec![0.0],
            s: 0,
            u: 0,
        };
        let mut poisoned = StreamingRepairer::new(plan.clone(), 42);
        assert!(poisoned.repair_batch(&[]).unwrap().is_empty());
        assert!(poisoned.repair_batch(std::slice::from_ref(&bad)).is_err());
        assert_eq!(poisoned.stats().repaired, 0);
        // After dropping the bad batch, the stream continues exactly as
        // if the failure never happened.
        let out_after_failure = poisoned.repair_batch(&points).unwrap();
        let out_fresh = StreamingRepairer::new(plan, 42)
            .repair_batch(&points)
            .unwrap();
        assert_eq!(out_after_failure, out_fresh);
    }

    #[test]
    fn batch_identical_across_thread_counts() {
        let (plan, points) = setup();
        let mut reference: Option<Vec<LabelledPoint>> = None;
        for threads in [1usize, 2, 7] {
            let mut plan = plan.clone();
            plan.config.threads = threads;
            let out = StreamingRepairer::new(plan, 42)
                .repair_batch(&points)
                .unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn columnar_batch_matches_row_batch_and_stats() {
        let (plan, points) = setup();
        let data = otr_data::Dataset::from_points(points.clone()).unwrap();
        let cols = ColumnarDataset::from_dataset(&data);
        let mut row_streamer = StreamingRepairer::new(plan.clone(), 42);
        let mut col_streamer = StreamingRepairer::new(plan, 42);
        // Two batches through each entry point: identical repairs,
        // identical stats, identical RNG state afterwards.
        for _ in 0..2 {
            let row_out = row_streamer.repair_batch(&points).unwrap();
            let col_out = col_streamer.repair_batch_columnar(&cols).unwrap();
            assert_eq!(col_out.to_dataset().points(), &row_out[..]);
        }
        assert_eq!(row_streamer.stats(), col_streamer.stats());
        // Mixing layouts keeps the stream aligned: the next row batch
        // agrees whichever entry point served the earlier ones.
        let row_next = row_streamer.repair_batch(&points).unwrap();
        let col_next = col_streamer.repair_batch(&points).unwrap();
        assert_eq!(row_next, col_next);
    }

    #[test]
    fn columnar_batch_counts_out_of_range() {
        let (plan, _) = setup();
        let extreme = LabelledPoint {
            x: vec![1e9, -1e9],
            s: 0,
            u: 0,
        };
        let data = otr_data::Dataset::from_points(vec![extreme]).unwrap();
        let mut streamer = StreamingRepairer::new(plan, 9);
        streamer
            .repair_batch_columnar(&ColumnarDataset::from_dataset(&data))
            .unwrap();
        assert_eq!(streamer.stats().out_of_range, 2);
        assert_eq!(streamer.stats().repaired, 1);
    }

    #[test]
    fn columnar_empty_or_failed_batch_leaves_rng_untouched() {
        let (plan, points) = setup();
        let data = otr_data::Dataset::from_points(points).unwrap();
        let cols = ColumnarDataset::from_dataset(&data);
        let wrong_dim = ColumnarDataset::from_columns(vec![vec![0.0]], vec![0], vec![0]).unwrap();
        let empty = ColumnarDataset::new(2).unwrap();
        let mut poisoned = StreamingRepairer::new(plan.clone(), 42);
        assert!(poisoned.repair_batch_columnar(&empty).unwrap().is_empty());
        assert!(poisoned.repair_batch_columnar(&wrong_dim).is_err());
        assert_eq!(poisoned.stats().repaired, 0);
        let after_failure = poisoned.repair_batch_columnar(&cols).unwrap();
        let fresh = StreamingRepairer::new(plan, 42)
            .repair_batch_columnar(&cols)
            .unwrap();
        assert_eq!(after_failure, fresh);
    }

    #[test]
    fn empty_stream_rate_is_zero() {
        let (plan, _) = setup();
        let streamer = StreamingRepairer::new(plan, 1);
        assert_eq!(streamer.out_of_range_rate(), 0.0);
    }
}
