//! Monge-map (quantile-matching) repair — the `nQ → ∞` limit the paper
//! discusses in Section VI.
//!
//! Brenier's theorem says the Kantorovich plans of Algorithm 1 converge to
//! deterministic Monge maps as the support is refined; in one dimension
//! that map is the monotone rearrangement
//! `T_s(x) = F_ν⁻¹(F_{µ_s}(x))`.
//! Compared to the randomized Algorithm 2 this repair
//!
//! * is **deterministic** — feature-similar individuals are repaired
//!   similarly (the individual-fairness benefit the paper anticipates);
//! * produces **continuous** values rather than grid states;
//! * still repairs **off-sample** points, because the interpolated CDFs
//!   extend to the whole research range.
//!
//! The map is built directly from a designed [`RepairPlan`] — it reuses
//! Algorithm 1's interpolated marginals and barycentre, so plan design is
//! shared verbatim and the two repair operators are exactly comparable
//! (the `ablation_monge` experiment does so).

use serde::{Deserialize, Serialize};

use otr_data::{Dataset, LabelledPoint};
use otr_ot::MidpointCdf;
use otr_par::try_par_map_indexed;

use crate::error::{RepairError, Result};
use crate::plan::RepairPlan;

/// Deterministic quantile-matching repair derived from a [`RepairPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MongeRepair {
    dim: usize,
    /// Per `(u, k)` stratum: interpolated CDFs of the two `s`-marginals
    /// and of the barycentre target, indexed `[u * dim + k]`.
    strata: Vec<MongeStratum>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MongeStratum {
    marginal_cdfs: [MidpointCdf; 2],
    target_cdf: MidpointCdf,
}

impl MongeRepair {
    /// Build the Monge maps from a designed plan (no further fitting).
    pub fn from_plan(plan: &RepairPlan) -> Self {
        let strata = plan
            .feature_plans()
            .iter()
            .map(|fp| MongeStratum {
                marginal_cdfs: [
                    MidpointCdf::new(&fp.marginals[0]),
                    MidpointCdf::new(&fp.marginals[1]),
                ],
                target_cdf: MidpointCdf::new(&fp.barycentre),
            })
            .collect();
        Self {
            dim: plan.dim,
            strata,
        }
    }

    /// Feature dimension served by this repair.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Repair one feature value: `T(x) = F_ν⁻¹(F_{µ_{u,s,k}}(x))`.
    ///
    /// # Errors
    /// Rejects labels/indices outside the design.
    pub fn repair_value(&self, u: u8, s: u8, k: usize, x: f64) -> Result<f64> {
        if u > 1 || s > 1 || k >= self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "no Monge map for (u={u}, s={s}, k={k}) in a dim-{} design",
                self.dim
            )));
        }
        let stratum = &self.strata[u as usize * self.dim + k];
        Ok(stratum.marginal_cdfs[s as usize].monge_to(&stratum.target_cdf, x))
    }

    /// Repair a full labelled point.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_point(&self, point: &LabelledPoint) -> Result<LabelledPoint> {
        if point.x.len() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "point dimension {} vs design dimension {}",
                point.x.len(),
                self.dim
            )));
        }
        let mut x = Vec::with_capacity(self.dim);
        for (k, &v) in point.x.iter().enumerate() {
            x.push(self.repair_value(point.u, point.s, k, v)?);
        }
        Ok(LabelledPoint {
            x,
            s: point.s,
            u: point.u,
        })
    }

    /// Repair an entire labelled data set (deterministic; no RNG).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset(&self, data: &Dataset) -> Result<Dataset> {
        if data.dim() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs design dimension {}",
                data.dim(),
                self.dim
            )));
        }
        let points = data
            .points()
            .iter()
            .map(|p| self.repair_point(p))
            .collect::<Result<Vec<_>>>()?;
        Ok(Dataset::from_points(points)?)
    }

    /// Row-parallel [`Self::repair_dataset`] (`threads`: `0` = auto /
    /// `OTR_THREADS`). The Monge map is a deterministic function of each
    /// point — no RNG streams are needed — so the output is trivially
    /// **bit-identical** to the sequential path for any thread count.
    ///
    /// # Errors
    /// Rejects dimension mismatches (lowest failing row reported first).
    pub fn repair_dataset_par(&self, data: &Dataset, threads: usize) -> Result<Dataset> {
        if data.dim() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs design dimension {}",
                data.dim(),
                self.dim
            )));
        }
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), threads, |i| self.repair_point(&pts[i]))?;
        Ok(Dataset::from_points(points)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RepairConfig;
    use crate::plan::RepairPlanner;
    use otr_data::SimulationSpec;
    use otr_fairness::ConditionalDependence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, n_q: usize) -> (RepairPlan, Dataset, Dataset) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(500, 3_000, &mut rng).unwrap();
        let plan = RepairPlanner::new(RepairConfig::with_n_q(n_q))
            .design(&split.research)
            .unwrap();
        (plan, split.research, split.archive)
    }

    #[test]
    fn monge_repair_quenches_dependence() {
        let (plan, _, archive) = setup(1, 50);
        let monge = MongeRepair::from_plan(&plan);
        let repaired = monge.repair_dataset(&archive).unwrap();
        let cd = ConditionalDependence::default();
        let before = cd.evaluate(&archive).unwrap().aggregate();
        let after = cd.evaluate(&repaired).unwrap().aggregate();
        assert!(after < before / 3.0, "before {before}, after {after}");
    }

    #[test]
    fn monge_repair_is_deterministic_and_monotone() {
        let (plan, _, _) = setup(2, 40);
        let monge = MongeRepair::from_plan(&plan);
        let a = monge.repair_value(0, 1, 0, 0.3).unwrap();
        let b = monge.repair_value(0, 1, 0, 0.3).unwrap();
        assert_eq!(a, b);
        // Monotone in x (individual-fairness property).
        let mut prev = f64::NEG_INFINITY;
        for i in 0..50 {
            let x = -3.0 + 6.0 * i as f64 / 49.0;
            let t = monge.repair_value(1, 0, 1, x).unwrap();
            assert!(t >= prev - 1e-12);
            prev = t;
        }
    }

    #[test]
    fn monge_values_are_continuous_not_grid_states() {
        let (plan, _, archive) = setup(3, 25);
        let monge = MongeRepair::from_plan(&plan);
        let repaired = monge.repair_dataset(&archive).unwrap();
        // At a coarse nQ=25 grid, most repaired values should NOT coincide
        // with grid states (unlike Algorithm 2).
        let fp = plan.feature_plan(0, 0).unwrap();
        let off_grid = repaired
            .points()
            .iter()
            .filter(|p| p.u == 0)
            .filter(|p| fp.support.iter().all(|&q| (q - p.x[0]).abs() > 1e-9))
            .count();
        let total = repaired.points().iter().filter(|p| p.u == 0).count();
        assert!(
            off_grid * 2 > total,
            "expected mostly continuous values, got {off_grid}/{total} off-grid"
        );
    }

    #[test]
    fn agrees_with_randomized_repair_in_distribution() {
        // The Monge map is the nQ→∞ limit of Algorithm 2: at a fine grid
        // the repaired e-metric must be close between the two operators.
        let (plan, _, archive) = setup(4, 200);
        let monge = MongeRepair::from_plan(&plan);
        let det = monge.repair_dataset(&archive).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let rand = plan.repair_dataset(&archive, &mut rng).unwrap();
        let cd = ConditionalDependence::default();
        let e_det = cd.evaluate(&det).unwrap().aggregate();
        let e_rand = cd.evaluate(&rand).unwrap().aggregate();
        assert!(
            (e_det - e_rand).abs() < 0.08,
            "Monge {e_det} vs randomized {e_rand}"
        );
    }

    #[test]
    fn rejects_mismatches() {
        let (plan, _, _) = setup(5, 20);
        let monge = MongeRepair::from_plan(&plan);
        assert!(monge.repair_value(2, 0, 0, 0.0).is_err());
        assert!(monge.repair_value(0, 2, 0, 0.0).is_err());
        assert!(monge.repair_value(0, 0, 5, 0.0).is_err());
        let bad = LabelledPoint {
            x: vec![0.0],
            s: 0,
            u: 0,
        };
        assert!(monge.repair_point(&bad).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let (plan, _, _) = setup(6, 20);
        let monge = MongeRepair::from_plan(&plan);
        let back: MongeRepair =
            serde_json::from_str(&serde_json::to_string(&monge).unwrap()).unwrap();
        let x = back.repair_value(0, 0, 0, 0.5).unwrap();
        let y = monge.repair_value(0, 0, 0, 0.5).unwrap();
        assert!((x - y).abs() < 1e-12);
    }

    #[test]
    fn parallel_monge_identical_across_thread_counts() {
        let (plan, _, archive) = setup(8, 30);
        let monge = MongeRepair::from_plan(&plan);
        let seq = monge.repair_dataset(&archive).unwrap();
        for threads in [1usize, 2, 7] {
            let par = monge.repair_dataset_par(&archive, threads).unwrap();
            assert_eq!(par.points(), seq.points(), "threads = {threads}");
        }
        let bad = Dataset::from_points(vec![LabelledPoint {
            x: vec![0.0],
            s: 0,
            u: 0,
        }])
        .unwrap();
        assert!(monge.repair_dataset_par(&bad, 2).is_err());
    }

    #[test]
    fn labels_preserved() {
        let (plan, _, archive) = setup(7, 30);
        let monge = MongeRepair::from_plan(&plan);
        let repaired = monge.repair_dataset(&archive).unwrap();
        assert_eq!(repaired.len(), archive.len());
        for (a, b) in repaired.points().iter().zip(archive.points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }
}
