//! The geometric (on-sample) repair baseline of Del Barrio, Gordaliza &
//! Loubes — reference \[10\] of the paper, Equations (8)–(9).
//!
//! Each research point is mapped point-wise toward the barycentre using
//! the optimal coupling between the two **empirical** `s`-conditional
//! measures:
//!
//! ```text
//! x'₀,ᵢ = (1−t)·x₀,ᵢ + t·n₀ Σⱼ π*ᵢⱼ x₁,ⱼ          (Equation 8)
//! x'₁,ⱼ = (1−t)·n₁ Σᵢ π*ᵢⱼ x₀,ᵢ + t·x₁,ⱼ          (Equation 9)
//! ```
//!
//! Because the transport is designed point-wise on the sample, it **cannot
//! repair off-sample points** — the limitation motivating the paper's
//! distributional repair (Section III-B). Following the paper's
//! evaluation, the coupling is computed per feature `k` (and per `u`),
//! where the squared-Euclidean optimal plan is the monotone coupling on
//! sorted samples.

use serde::{Deserialize, Serialize};

use otr_data::{Dataset, LabelledPoint};

use crate::error::{RepairError, Result};

/// Configuration for the geometric repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricRepair {
    /// Geodesic position `t ∈ [0, 1]` (0.5 = the fair barycentre).
    pub t: f64,
    /// Minimum observations per `(u, s)` group.
    pub min_group_size: usize,
}

impl Default for GeometricRepair {
    fn default() -> Self {
        Self {
            t: 0.5,
            min_group_size: 2,
        }
    }
}

/// The monotone coupling between two uniform empirical measures given by
/// index order on *sorted* samples: returns, for each left index, the
/// (right index, mass) pairs it couples to. Masses are `1/n0` resp `1/n1`
/// per sample point. This is the optimal squared-Euclidean plan in 1-D.
fn monotone_pairs(n0: usize, n1: usize) -> Vec<Vec<(usize, f64)>> {
    let w0 = 1.0 / n0 as f64;
    let w1 = 1.0 / n1 as f64;
    let mut out: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n0];
    let mut i = 0usize;
    let mut j = 0usize;
    let mut rem_i = w0;
    let mut rem_j = w1;
    while i < n0 && j < n1 {
        let moved = rem_i.min(rem_j);
        if moved > 0.0 {
            out[i].push((j, moved));
        }
        rem_i -= moved;
        rem_j -= moved;
        const TINY: f64 = 1e-15;
        let i_done = rem_i <= TINY;
        let j_done = rem_j <= TINY;
        if i_done {
            i += 1;
            rem_i = w0;
            // Carry round-off into the next step implicitly: weights are
            // identical per index so drift cannot accumulate beyond TINY.
        }
        if j_done {
            j += 1;
            rem_j = w1;
        }
        if !i_done && !j_done {
            // Defensive: min() must exhaust at least one side.
            debug_assert!(false, "monotone_pairs failed to make progress");
            break;
        }
    }
    out
}

impl GeometricRepair {
    /// Repair the research data set on-sample (Equations 8–9), per `u`
    /// group and per feature.
    ///
    /// # Errors
    /// * `t` outside `[0,1]`.
    /// * [`RepairError::InsufficientResearchData`] for undersized groups.
    pub fn repair(&self, research: &Dataset) -> Result<Dataset> {
        if !(0.0..=1.0).contains(&self.t) || self.t.is_nan() {
            return Err(RepairError::InvalidParameter {
                name: "t",
                reason: format!("must be in [0,1], got {}", self.t),
            });
        }
        let d = research.dim();

        // Output features, indexed by original point position.
        let mut new_x: Vec<Vec<f64>> = research.points().iter().map(|p| p.x.clone()).collect();

        for u in 0..2u8 {
            // Original indices of each s-group within `research`.
            let idx: [Vec<usize>; 2] = [
                research
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.u == u && p.s == 0)
                    .map(|(i, _)| i)
                    .collect(),
                research
                    .points()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.u == u && p.s == 1)
                    .map(|(i, _)| i)
                    .collect(),
            ];
            for (s, ids) in idx.iter().enumerate() {
                if ids.len() < self.min_group_size {
                    return Err(RepairError::InsufficientResearchData {
                        u,
                        s: s as u8,
                        found: ids.len(),
                        needed: self.min_group_size,
                    });
                }
            }

            for k in 0..d {
                // Sort each group's indices by feature value: the monotone
                // coupling pairs order statistics.
                let mut sorted0 = idx[0].clone();
                let mut sorted1 = idx[1].clone();
                sorted0.sort_by(|&a, &b| {
                    research.points()[a].x[k]
                        .partial_cmp(&research.points()[b].x[k])
                        .expect("finite features")
                });
                sorted1.sort_by(|&a, &b| {
                    research.points()[a].x[k]
                        .partial_cmp(&research.points()[b].x[k])
                        .expect("finite features")
                });
                let n0 = sorted0.len();
                let n1 = sorted1.len();
                let pairs = monotone_pairs(n0, n1);

                // Equation 8: s=0 points move toward their coupled s=1
                // conditional mean. n0 * pi_row is the conditional pmf.
                let mut cond_mean_1 = vec![0.0f64; n0];
                // Equation 9 accumulators for the reverse direction.
                let mut cond_mean_0 = vec![0.0f64; n1];
                let mut col_mass = vec![0.0f64; n1];
                for (i0, row) in pairs.iter().enumerate() {
                    let x0 = research.points()[sorted0[i0]].x[k];
                    let row_mass: f64 = row.iter().map(|(_, m)| m).sum();
                    for &(j1, m) in row {
                        let x1 = research.points()[sorted1[j1]].x[k];
                        cond_mean_1[i0] += m * x1;
                        cond_mean_0[j1] += m * x0;
                        col_mass[j1] += m;
                    }
                    if row_mass > 0.0 {
                        cond_mean_1[i0] /= row_mass;
                    }
                }
                for j1 in 0..n1 {
                    if col_mass[j1] > 0.0 {
                        cond_mean_0[j1] /= col_mass[j1];
                    } else {
                        cond_mean_0[j1] = research.points()[sorted1[j1]].x[k];
                    }
                }

                for (i0, &orig_idx) in sorted0.iter().enumerate() {
                    let x0 = research.points()[orig_idx].x[k];
                    new_x[orig_idx][k] = (1.0 - self.t) * x0 + self.t * cond_mean_1[i0];
                }
                for (j1, &orig_idx) in sorted1.iter().enumerate() {
                    let x1 = research.points()[orig_idx].x[k];
                    new_x[orig_idx][k] = (1.0 - self.t) * cond_mean_0[j1] + self.t * x1;
                }
            }
        }

        let points = research
            .points()
            .iter()
            .zip(new_x)
            .map(|(p, x)| LabelledPoint { x, s: p.s, u: p.u })
            .collect();
        Ok(Dataset::from_points(points)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::{GroupKey, SimulationSpec};
    use otr_fairness::ConditionalDependence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monotone_pairs_equal_sizes_is_identity_matching() {
        let pairs = monotone_pairs(4, 4);
        for (i, row) in pairs.iter().enumerate() {
            assert_eq!(row.len(), 1);
            assert_eq!(row[0].0, i);
            assert!((row[0].1 - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_pairs_mass_conservation() {
        for (n0, n1) in [(3, 5), (5, 3), (1, 7), (7, 1), (4, 6)] {
            let pairs = monotone_pairs(n0, n1);
            let total: f64 = pairs.iter().flatten().map(|(_, m)| m).sum();
            assert!((total - 1.0).abs() < 1e-9, "({n0},{n1}): total {total}");
            // Row masses are 1/n0 each.
            for (i, row) in pairs.iter().enumerate() {
                let rm: f64 = row.iter().map(|(_, m)| m).sum();
                assert!(
                    (rm - 1.0 / n0 as f64).abs() < 1e-9,
                    "({n0},{n1}) row {i}: {rm}"
                );
            }
        }
    }

    #[test]
    fn t_zero_is_identity_for_s0_half_for_s1() {
        // At t=0 the target is mu_0: s=0 points stay, s=1 points move to
        // their coupled s=0 conditional means.
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(5);
        let data = spec.sample_dataset(300, &mut rng).unwrap();
        let repaired = GeometricRepair {
            t: 0.0,
            min_group_size: 2,
        }
        .repair(&data)
        .unwrap();
        for (orig, rep) in data.points().iter().zip(repaired.points()) {
            if orig.s == 0 {
                assert_eq!(orig.x, rep.x, "s=0 must be untouched at t=0");
            }
        }
    }

    #[test]
    fn repair_reduces_conditional_dependence() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(11);
        let data = spec.sample_dataset(800, &mut rng).unwrap();
        let repaired = GeometricRepair::default().repair(&data).unwrap();
        let cd = ConditionalDependence::default();
        let before = cd.evaluate(&data).unwrap().aggregate();
        let after = cd.evaluate(&repaired).unwrap().aggregate();
        assert!(
            after < before * 0.1,
            "geometric repair should quench E: before {before}, after {after}"
        );
    }

    #[test]
    fn labels_and_cardinality_preserved() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(13);
        let data = spec.sample_dataset(200, &mut rng).unwrap();
        let repaired = GeometricRepair::default().repair(&data).unwrap();
        assert_eq!(repaired.len(), data.len());
        for (a, b) in repaired.points().iter().zip(data.points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn rejects_bad_t_and_small_groups() {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(17);
        let data = spec.sample_dataset(200, &mut rng).unwrap();
        assert!(GeometricRepair {
            t: 2.0,
            min_group_size: 2
        }
        .repair(&data)
        .is_err());
        assert!(GeometricRepair {
            t: 0.5,
            min_group_size: 10_000
        }
        .repair(&data)
        .is_err());
    }

    #[test]
    fn group_means_converge_at_barycentre() {
        // After t=0.5 repair, the s=0 and s=1 means within each u group
        // should (nearly) coincide.
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(19);
        let data = spec.sample_dataset(2_000, &mut rng).unwrap();
        let repaired = GeometricRepair::default().repair(&data).unwrap();
        for u in 0..2u8 {
            for k in 0..2usize {
                let c0 = repaired.feature_column(GroupKey { u, s: 0 }, k).unwrap();
                let c1 = repaired.feature_column(GroupKey { u, s: 1 }, k).unwrap();
                let m0: f64 = c0.iter().sum::<f64>() / c0.len() as f64;
                let m1: f64 = c1.iter().sum::<f64>() / c1.len() as f64;
                assert!((m0 - m1).abs() < 0.1, "u={u}, k={k}: means {m0} vs {m1}");
            }
        }
    }
}
