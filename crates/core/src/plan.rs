//! Algorithm 1 — on-sample design of the distributional repair plan.
//!
//! For every `(u, k) ∈ U × {1..d}`:
//!
//! 1. **Interpolated support** `Q_{u,k}`: `nQ` uniformly spaced states
//!    spanning the pooled research range of feature `k` in group `u`
//!    (line 4 of Algorithm 1).
//! 2. **Interpolated marginals** `µ_{u,s,k}`: Gaussian-KDE pmfs of the two
//!    `s`-subgroups evaluated on `Q` (Equation 11, Silverman bandwidth).
//! 3. **Repair target** `ν_{u,k}`: the `t`-point of the `W₂` geodesic
//!    between the marginals, on the same support (Equation 7).
//! 4. **OT plans** `π*_{u,s,k}`: optimal couplings `µ_s → ν` under squared
//!    Euclidean cost (Equation 13), via the exact monotone solver or
//!    Sinkhorn.
//!
//! The designed [`RepairPlan`] is the paper's deployable artifact: `4·d`
//! small matrices wholly independent of the archival data size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use otr_data::{ColumnarDataset, Dataset, GroupKey, LabelledPoint};
use otr_ot::{quantile_barycentre, DiscreteDistribution, OtPlan, SinkhornDuals, Solver1d as _};
use otr_par::{par_cols_mut, splitmix_seed, try_par_map_indexed};
use otr_stats::dist::Categorical;
use otr_stats::kde::GaussianKde;

use crate::config::{MassSplit, RepairConfig};
use crate::error::{RepairError, Result};

/// The designed transport machinery for one `(u, k)` stratum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeaturePlan {
    /// Unprotected group this plan serves.
    pub u: u8,
    /// Feature index this plan serves.
    pub k: usize,
    /// The interpolated support `Q_{u,k}` (uniform, strictly increasing).
    pub support: Vec<f64>,
    /// Interpolated marginal pmfs `µ_{u,s,k}` on `support`, indexed by `s`.
    pub marginals: [DiscreteDistribution; 2],
    /// The `t`-barycentre target `ν_{u,k}` on `support`.
    pub barycentre: DiscreteDistribution,
    /// OT plans `π*_{u,s,k} : µ_s → ν`, indexed by `s`.
    pub plans: [OtPlan; 2],
    /// Converged Sinkhorn dual potentials of the solves that produced
    /// `plans`, indexed by `s` — `None` under exact backends. Persisted
    /// so [`RepairPlanner::redesign`] can warm-start a re-design against
    /// drifted data; absent in plan JSON written before the lifecycle
    /// existed (defaults to `[None, None]`, which re-designs cold).
    #[serde(default)]
    pub duals: [Option<SinkhornDuals>; 2],
    /// Per-row alias samplers for Equation (15), compiled from `plans`
    /// (not serialized; rebuilt by [`FeaturePlan::compile`]).
    #[serde(skip)]
    samplers: [Vec<Categorical>; 2],
}

impl PartialEq for FeaturePlan {
    fn eq(&self, other: &Self) -> bool {
        // Samplers are derived state, and duals are a solver warm-start
        // hint; equality is over the designed plan semantics.
        self.u == other.u
            && self.k == other.k
            && self.support == other.support
            && self.marginals == other.marginals
            && self.barycentre == other.barycentre
            && self.plans == other.plans
    }
}

impl FeaturePlan {
    /// Grid spacing of the uniform support.
    #[inline]
    pub fn step(&self) -> f64 {
        if self.support.len() < 2 {
            return 0.0;
        }
        (self.support[self.support.len() - 1] - self.support[0]) / (self.support.len() - 1) as f64
    }

    /// (Re)build the per-row alias samplers from the OT plans. Must be
    /// called after deserialization; `RepairPlanner::design` and
    /// `RepairPlan::from_json` do it automatically.
    ///
    /// # Errors
    /// Fails only if a plan row carries zero mass, which would mean the
    /// marginal itself had a zero state (excluded by KDE positivity).
    pub fn compile(&mut self) -> Result<()> {
        for s in 0..2 {
            let plan = &self.plans[s];
            let mut rows = Vec::with_capacity(plan.rows());
            for i in 0..plan.rows() {
                let row = plan.row(i);
                let cat = Categorical::new(row).map_err(|e| RepairError::InvalidParameter {
                    name: "plan row",
                    reason: format!("(u={}, s={s}, k={}) row {i}: {e}", self.u, self.k),
                })?;
                rows.push(cat);
            }
            self.samplers[s] = rows;
        }
        Ok(())
    }

    /// True if [`FeaturePlan::compile`] has been run.
    pub fn is_compiled(&self) -> bool {
        self.samplers[0].len() == self.plans[0].rows()
            && self.samplers[1].len() == self.plans[1].rows()
    }

    /// The boundary clamp shared by every quantization mode: `Some(0)` /
    /// `Some(n_q − 1)` for values at or beyond the research range
    /// (Section V-A2a), `None` for values strictly inside the grid.
    fn boundary_cell(&self, x: f64) -> Option<usize> {
        let n_q = self.support.len();
        if x <= self.support[0] || self.step() == 0.0 {
            Some(0)
        } else if x >= self.support[n_q - 1] {
            Some(n_q - 1)
        } else {
            None
        }
    }

    /// Repair one feature value via Algorithm 2 (lines 5–9): quantize to
    /// the grid with the Bernoulli fractional trial of Equation (14), then
    /// draw the repaired state from the normalized plan row
    /// (Equation 15).
    ///
    /// Values outside the research range are clamped to the boundary
    /// states, as discussed in Section V-A2a.
    ///
    /// # Errors
    /// Requires a compiled plan and `s ∈ {0,1}`.
    pub fn repair_value<R: Rng + ?Sized>(&self, s: u8, x: f64, rng: &mut R) -> Result<f64> {
        if s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "label s={s} outside {{0,1}}"
            )));
        }
        if !self.is_compiled() {
            return Err(RepairError::PlanMismatch(
                "feature plan is not compiled; call compile() after deserialization".into(),
            ));
        }
        let n_q = self.support.len();

        // Quantization with the fractional Bernoulli (Equation 14).
        let q = self.boundary_cell(x).unwrap_or_else(|| {
            let pos = (x - self.support[0]) / self.step();
            let base = pos.floor();
            let tau = pos - base;
            let mut q = base as usize;
            // a ~ B(tau) selects the upper neighbour with probability tau.
            if rng.gen::<f64>() < tau {
                q += 1;
            }
            q.min(n_q - 1)
        });

        // Multinomial draw from the selected plan row (Equation 15).
        let j = self.samplers[s as usize][q].sample(rng);
        Ok(self.support[j])
    }

    /// Deterministic mass-split variant of [`Self::repair_value`]
    /// ([`MassSplit::Deterministic`]): nearest grid cell (no Bernoulli),
    /// then the row's barycentric projection (conditional mean, no
    /// multinomial). Equal inputs repair equally.
    ///
    /// # Errors
    /// Requires `s ∈ {0,1}`.
    pub fn repair_value_deterministic(&self, s: u8, x: f64) -> Result<f64> {
        if s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "label s={s} outside {{0,1}}"
            )));
        }
        let n_q = self.support.len();
        let q = self.boundary_cell(x).unwrap_or_else(|| {
            ((((x - self.support[0]) / self.step()) + 0.5).floor() as usize).min(n_q - 1)
        });
        // A compiled plan row always carries mass, so the projection is
        // defined; fall back to the cell's own state defensively.
        Ok(self.plans[s as usize]
            .barycentric_projection(q, &self.support)
            .unwrap_or(self.support[q]))
    }

    /// Precompute the deterministic repair image of every grid cell —
    /// `repair_value_deterministic` is then a pure quantize-and-gather,
    /// which is what lets the columnar kernel run it RNG- and
    /// branch-free over whole column slices.
    fn projection_table(&self, s: usize) -> Vec<f64> {
        (0..self.support.len())
            .map(|q| {
                self.plans[s]
                    .barycentric_projection(q, &self.support)
                    .unwrap_or(self.support[q])
            })
            .collect()
    }

    /// Columnar randomized repair of one `(u, s)` row group within a
    /// batch. `col_in`/`col_out` are batch-local column slices, `rows`
    /// the batch-local indices of this group's rows, `rngs` the
    /// batch-local per-row streams. Returns the group's out-of-range
    /// count.
    ///
    /// Two passes per lane: an RNG-free quantization sweep (`base`/`tau`
    /// scratch lanes; tight float loop, autovectorizes) and then the
    /// per-row draws of Equations 14–15. Per row, RNG consumption is
    /// exactly [`Self::repair_value`]: one uniform for the Bernoulli
    /// when the value is strictly inside the grid (none on the boundary
    /// clamp, flagged here as `tau = -1`), then the alias-table draw.
    fn repair_rows_randomized(
        &self,
        s: usize,
        col_in: &[f64],
        col_out: &mut [f64],
        rows: &[u32],
        rngs: &mut [StdRng],
        scratch: &mut QuantScratch,
    ) -> u64 {
        let QuantScratch { base, tau } = scratch;
        let n_q = self.support.len();
        let lo = self.support[0];
        let hi = self.support[n_q - 1];
        let step = self.step();
        let mut oob = 0u64;
        base.clear();
        tau.clear();
        base.reserve(rows.len());
        tau.reserve(rows.len());
        for &li in rows {
            let x = col_in[li as usize];
            oob += u64::from(x < lo || x > hi);
            if x <= lo || step == 0.0 {
                base.push(0);
                tau.push(-1.0);
            } else if x >= hi {
                base.push((n_q - 1) as u32);
                tau.push(-1.0);
            } else {
                // Same arithmetic as `repair_value`: divide by `step`
                // (a reciprocal-multiply rounds differently and would
                // break byte-identity with the row path).
                let pos = (x - lo) / step;
                let b = pos.floor();
                base.push(b as u32);
                tau.push(pos - b);
            }
        }
        let samplers = &self.samplers[s];
        for (j, &li) in rows.iter().enumerate() {
            let rng = &mut rngs[li as usize];
            let mut q = base[j] as usize;
            let t = tau[j];
            if t >= 0.0 {
                // a ~ B(tau); the draw is consumed even when tau == 0,
                // exactly as in `repair_value`.
                if rng.gen::<f64>() < t {
                    q += 1;
                }
                q = q.min(n_q - 1);
            }
            let target = samplers[q].sample(rng);
            col_out[li as usize] = self.support[target];
        }
        oob
    }

    /// Columnar deterministic repair of one `(u, s)` row group: nearest
    /// grid cell, then a gather through the precomputed
    /// [`Self::projection_table`]. RNG-free; single vectorizable pass.
    /// Returns the group's out-of-range count.
    fn repair_rows_deterministic(
        &self,
        col_in: &[f64],
        col_out: &mut [f64],
        rows: &[u32],
        proj: &[f64],
    ) -> u64 {
        let n_q = self.support.len();
        let lo = self.support[0];
        let hi = self.support[n_q - 1];
        let step = self.step();
        let mut oob = 0u64;
        for &li in rows {
            let x = col_in[li as usize];
            oob += u64::from(x < lo || x > hi);
            let q = if x <= lo || step == 0.0 {
                0
            } else if x >= hi {
                n_q - 1
            } else {
                ((((x - lo) / step) + 0.5).floor() as usize).min(n_q - 1)
            };
            col_out[li as usize] = proj[q];
        }
        oob
    }
}

/// Reusable quantization scratch lanes for the columnar randomized
/// kernel: the per-row base cell and interpolation weight (`-1` marks a
/// boundary clamp that consumes no RNG draws). Batch-local; cleared and
/// refilled per `(u, s)` group.
#[derive(Debug, Default)]
struct QuantScratch {
    base: Vec<u32>,
    tau: Vec<f64>,
}

/// A complete repair plan: one [`FeaturePlan`] per `(u, k)` stratum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairPlan {
    /// The configuration the plan was designed under.
    pub config: RepairConfig,
    /// Feature dimension `d` of the data this plan repairs.
    pub dim: usize,
    /// Plans indexed `[u * dim + k]`.
    features: Vec<FeaturePlan>,
}

impl RepairPlan {
    /// The plan for stratum `(u, k)`.
    ///
    /// # Errors
    /// Rejects labels/indices outside the design.
    pub fn feature_plan(&self, u: u8, k: usize) -> Result<&FeaturePlan> {
        if u > 1 || k >= self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "no plan for (u={u}, k={k}) in a dim-{} design",
                self.dim
            )));
        }
        Ok(&self.features[u as usize * self.dim + k])
    }

    /// All feature plans (ordered `u`-major).
    pub fn feature_plans(&self) -> &[FeaturePlan] {
        &self.features
    }

    /// Repair one feature value of a labelled observation (Algorithm 2
    /// inner loop), splitting row mass per the design-time
    /// [`MassSplit`] mode (`rng` is untouched in deterministic mode).
    ///
    /// # Errors
    /// Same domain requirements as [`Self::feature_plan`].
    pub fn repair_value<R: Rng + ?Sized>(
        &self,
        u: u8,
        s: u8,
        k: usize,
        x: f64,
        rng: &mut R,
    ) -> Result<f64> {
        let fp = self.feature_plan(u, k)?;
        match self.config.mass_split {
            MassSplit::Randomized => fp.repair_value(s, x, rng),
            MassSplit::Deterministic => fp.repair_value_deterministic(s, x),
        }
    }

    /// Check that a point is repairable by this plan (dimension and
    /// binary labels) without repairing it — the cheap pre-validation
    /// batch entry points run before consuming any randomness.
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point_domain(&self, point: &LabelledPoint) -> Result<()> {
        if point.x.len() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "point dimension {} vs plan dimension {}",
                point.x.len(),
                self.dim
            )));
        }
        if point.u > 1 || point.s > 1 {
            return Err(RepairError::PlanMismatch(format!(
                "labels (s={}, u={}) outside {{0,1}}",
                point.s, point.u
            )));
        }
        Ok(())
    }

    /// Repair a full labelled point (all features).
    ///
    /// # Errors
    /// Rejects dimension/label mismatches.
    pub fn repair_point<R: Rng + ?Sized>(
        &self,
        point: &LabelledPoint,
        rng: &mut R,
    ) -> Result<LabelledPoint> {
        if point.x.len() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "point dimension {} vs plan dimension {}",
                point.x.len(),
                self.dim
            )));
        }
        let mut x = Vec::with_capacity(self.dim);
        for (k, &v) in point.x.iter().enumerate() {
            x.push(self.repair_value(point.u, point.s, k, v, rng)?);
        }
        Ok(LabelledPoint {
            x,
            s: point.s,
            u: point.u,
        })
    }

    /// Repair an entire labelled data set (Algorithm 2), preserving
    /// cardinality and labels.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Result<Dataset> {
        self.check_dim(data)?;
        let mut points = Vec::with_capacity(data.len());
        for p in data.points() {
            points.push(self.repair_point(p, rng)?);
        }
        Ok(Dataset::from_points(points)?)
    }

    /// Partial repair: geodesic interpolation **in feature space** between
    /// the original and its repaired value, `x' = (1−λ)x + λ·repair(x)`.
    /// `λ = 1` is the full Algorithm 2 repair; smaller `λ` trades residual
    /// unfairness for reduced data damage (Section VI).
    ///
    /// # Errors
    /// Requires `λ ∈ [0,1]`.
    pub fn repair_dataset_partial<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        lambda: f64,
        rng: &mut R,
    ) -> Result<Dataset> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(RepairError::InvalidParameter {
                name: "lambda",
                reason: format!("must be in [0,1], got {lambda}"),
            });
        }
        let repaired = self.repair_dataset(data, rng)?;
        let mut points = Vec::with_capacity(data.len());
        for (orig, rep) in data.points().iter().zip(repaired.points()) {
            let x = orig
                .x
                .iter()
                .zip(&rep.x)
                .map(|(o, r)| (1.0 - lambda) * o + lambda * r)
                .collect();
            points.push(LabelledPoint {
                x,
                s: orig.s,
                u: orig.u,
            });
        }
        Ok(Dataset::from_points(points)?)
    }

    /// Repair row `i` of a dataset under the per-row RNG stream
    /// contract: row `i` always draws from
    /// `StdRng::seed_from_u64(splitmix_seed(seed, i))`, whatever thread
    /// executes it. This is the unit of work shared by the sequential
    /// and parallel dataset entry points, which is what makes their
    /// outputs bit-identical.
    fn repair_point_stream(
        &self,
        seed: u64,
        i: usize,
        point: &LabelledPoint,
    ) -> Result<LabelledPoint> {
        let mut rng = StdRng::seed_from_u64(splitmix_seed(seed, i as u64));
        self.repair_point(point, &mut rng)
    }

    /// Repair an entire data set in parallel with per-row SplitMix64 RNG
    /// streams derived from `seed`. Output is **bit-identical for any
    /// thread count** (including 1) and equal to
    /// [`Self::repair_dataset_seeded`]; threads come from
    /// `config.threads` (`0` = auto / `OTR_THREADS`).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_par(&self, data: &Dataset, seed: u64) -> Result<Dataset> {
        self.check_dim(data)?;
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), self.config.threads, |i| {
            self.repair_point_stream(seed, i, &pts[i])
        })?;
        Ok(Dataset::from_points(points)?)
    }

    /// Sequential reference implementation of the per-row-stream repair
    /// contract: exactly [`Self::repair_dataset_par`] on one thread.
    /// Exposed so tests and benches can prove bit-identity and measure
    /// speedup against a genuinely single-threaded baseline.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset_seeded(&self, data: &Dataset, seed: u64) -> Result<Dataset> {
        self.check_dim(data)?;
        let mut points = Vec::with_capacity(data.len());
        for (i, p) in data.points().iter().enumerate() {
            points.push(self.repair_point_stream(seed, i, p)?);
        }
        Ok(Dataset::from_points(points)?)
    }

    /// Columnar batch repair: Algorithm 2 over column slices instead of
    /// rows. Repairs a [`ColumnarDataset`] feature by feature — quantize
    /// a whole column lane against the plan grid, draw (or gather, in
    /// deterministic mode) the repaired states, scatter back — in tight
    /// `f64`-slice loops that autovectorize, chunked over rows on
    /// `config.threads` threads with `config.batch_rows`-row batches
    /// (`None` = auto / `OTR_BATCH_ROWS`).
    ///
    /// Output is **byte-identical to the row path**: row `i` draws from
    /// `StdRng::seed_from_u64(splitmix_seed(seed, i))` in feature order,
    /// exactly like [`Self::repair_dataset_par`], so
    /// `repair_columnar_par(x, seed).to_dataset() ==
    /// repair_dataset_seeded(x.to_dataset(), seed)` for any thread count
    /// and any batch size.
    ///
    /// # Errors
    /// Rejects dimension mismatches and uncompiled plans.
    pub fn repair_columnar_par(
        &self,
        data: &ColumnarDataset,
        seed: u64,
    ) -> Result<ColumnarDataset> {
        Ok(self.repair_columnar_counted(data, seed)?.0)
    }

    /// [`Self::repair_columnar_par`] plus the out-of-range feature count
    /// (same strict `x < lo || x > hi` test as the streaming counters) —
    /// the form [`crate::StreamingRepairer::repair_batch_columnar`]
    /// needs to keep its stats without a second pass.
    pub(crate) fn repair_columnar_counted(
        &self,
        data: &ColumnarDataset,
        seed: u64,
    ) -> Result<(ColumnarDataset, u64)> {
        self.repair_columnar_shard(data, seed, 0)
    }

    /// Chunk-addressable columnar repair — the sharding primitive of the
    /// repair service (`otr-serve`). Repairs `data` **as if** its rows
    /// occupied absolute indices `row_offset .. row_offset + data.len()`
    /// of a larger archive: row `i` of `data` draws from
    /// `StdRng::seed_from_u64(splitmix_seed(seed, row_offset + i))`,
    /// exactly the stream that row would own in a whole-archive
    /// [`Self::repair_columnar_par`] call. Consequently, splitting an
    /// archive into contiguous shards, repairing each shard with its
    /// start row as `row_offset`, and concatenating the outputs in index
    /// order is **byte-identical** to repairing the whole archive in one
    /// call — for any shard layout, thread count, or batch size.
    /// `row_offset = 0` *is* [`Self::repair_columnar_par`]. Returns the
    /// repaired shard plus its out-of-range feature count.
    ///
    /// # Errors
    /// Rejects dimension mismatches and uncompiled plans.
    pub fn repair_columnar_shard(
        &self,
        data: &ColumnarDataset,
        seed: u64,
        row_offset: u64,
    ) -> Result<(ColumnarDataset, u64)> {
        if data.dim() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs plan dimension {}",
                data.dim(),
                self.dim
            )));
        }
        // Mode-specific precomputation, and all fallibility, up front:
        // the chunk workers below are infallible.
        let proj: Option<Vec<[Vec<f64>; 2]>> = match self.config.mass_split {
            MassSplit::Randomized => {
                for fp in &self.features {
                    if !fp.is_compiled() {
                        return Err(RepairError::PlanMismatch(
                            "feature plan is not compiled; call compile() after deserialization"
                                .into(),
                        ));
                    }
                }
                None
            }
            MassSplit::Deterministic => Some(
                self.features
                    .iter()
                    .map(|fp| [fp.projection_table(0), fp.projection_table(1)])
                    .collect(),
            ),
        };
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; data.len()]; self.dim];
        let oob = par_cols_mut(&mut out, self.config.threads, |row0, chunks| {
            self.repair_columnar_chunk(data, seed, row_offset, row0, chunks, proj.as_deref())
        })
        .into_iter()
        .sum();
        Ok((data.with_feature_columns(out)?, oob))
    }

    /// Repair one contiguous row chunk (`row0 ..`) of the columnar data
    /// into `cols_out`, in `batch_rows`-row batches so the working set —
    /// column lanes, scratch lanes, one RNG per row — stays cache-sized.
    /// Returns the chunk's out-of-range count.
    fn repair_columnar_chunk(
        &self,
        data: &ColumnarDataset,
        seed: u64,
        row_offset: u64,
        row0: usize,
        cols_out: &mut [&mut [f64]],
        proj: Option<&[[Vec<f64>; 2]]>,
    ) -> u64 {
        let d = self.dim;
        let chunk_rows = cols_out.first().map_or(0, |c| c.len());
        let batch = otr_par::batch_rows(self.config.batch_rows);
        let (s_col, u_col) = (data.s(), data.u());
        let cols_in = data.feature_columns();
        let mut groups: [Vec<u32>; 4] = Default::default();
        let mut rngs: Vec<StdRng> = Vec::new();
        let mut scratch = QuantScratch::default();
        let mut oob = 0u64;
        let mut start = 0usize;
        while start < chunk_rows {
            let end = (start + batch).min(chunk_rows);
            // Partition the batch's rows by (u, s) group once; every
            // feature lane then reuses the partition.
            for g in &mut groups {
                g.clear();
            }
            for li in 0..end - start {
                let i = row0 + start + li;
                let slot = usize::from(u_col[i]) * 2 + usize::from(s_col[i]);
                groups[slot].push(li as u32);
            }
            if proj.is_none() {
                // The per-row SplitMix64 streams of the determinism
                // contract, seeded by absolute row index (shard offset
                // plus position within this shard).
                rngs.clear();
                rngs.extend((start..end).map(|li| {
                    StdRng::seed_from_u64(splitmix_seed(seed, row_offset + (row0 + li) as u64))
                }));
            }
            for k in 0..d {
                let col_in = &cols_in[k][row0 + start..row0 + end];
                let col_out = &mut cols_out[k][start..end];
                for u in 0..2usize {
                    let fp = &self.features[u * d + k];
                    for s in 0..2usize {
                        let rows = &groups[u * 2 + s];
                        if rows.is_empty() {
                            continue;
                        }
                        oob += match proj {
                            None => fp.repair_rows_randomized(
                                s,
                                col_in,
                                col_out,
                                rows,
                                &mut rngs,
                                &mut scratch,
                            ),
                            Some(tables) => fp.repair_rows_deterministic(
                                col_in,
                                col_out,
                                rows,
                                &tables[u * d + k][s],
                            ),
                        };
                    }
                }
            }
            start = end;
        }
        oob
    }

    /// Parallel partial repair: per-row streams as in
    /// [`Self::repair_dataset_par`], then the feature-space geodesic
    /// interpolation of [`Self::repair_dataset_partial`], fused into one
    /// pass over the data.
    ///
    /// # Errors
    /// Requires `λ ∈ [0,1]`; rejects dimension mismatches.
    pub fn repair_dataset_partial_par(
        &self,
        data: &Dataset,
        lambda: f64,
        seed: u64,
    ) -> Result<Dataset> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(RepairError::InvalidParameter {
                name: "lambda",
                reason: format!("must be in [0,1], got {lambda}"),
            });
        }
        self.check_dim(data)?;
        let pts = data.points();
        let points = try_par_map_indexed(pts.len(), self.config.threads, |i| {
            let orig = &pts[i];
            let rep = self.repair_point_stream(seed, i, orig)?;
            let x = orig
                .x
                .iter()
                .zip(&rep.x)
                .map(|(o, r)| (1.0 - lambda) * o + lambda * r)
                .collect();
            Ok::<_, RepairError>(LabelledPoint {
                x,
                s: orig.s,
                u: orig.u,
            })
        })?;
        Ok(Dataset::from_points(points)?)
    }

    fn check_dim(&self, data: &Dataset) -> Result<()> {
        if data.dim() != self.dim {
            return Err(RepairError::PlanMismatch(format!(
                "dataset dimension {} vs plan dimension {}",
                data.dim(),
                self.dim
            )));
        }
        Ok(())
    }

    /// Serialize the plan to JSON (the deployable artifact).
    ///
    /// # Errors
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| RepairError::Persistence(e.to_string()))
    }

    /// Load a plan from JSON and recompile its samplers.
    ///
    /// # Errors
    /// Propagates deserialization and recompilation failures.
    pub fn from_json(json: &str) -> Result<Self> {
        let mut plan: RepairPlan =
            serde_json::from_str(json).map_err(|e| RepairError::Persistence(e.to_string()))?;
        for fp in &mut plan.features {
            fp.compile()?;
        }
        Ok(plan)
    }
}

/// Algorithm 1: designs [`RepairPlan`]s from `s|u`-labelled research data.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairPlanner {
    config: RepairConfig,
}

impl RepairPlanner {
    /// Create a planner with the given configuration.
    pub fn new(config: RepairConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// Design the full repair plan from the research data set `X_R`
    /// (Algorithm 1). Deterministic: no randomness is involved at design
    /// time, and the independent `(u, k)` strata are designed
    /// concurrently (`config.threads`; `0` = auto / `OTR_THREADS`)
    /// with identical output for any thread count.
    ///
    /// # Errors
    /// * [`RepairError::InsufficientResearchData`] when an `(u, s)` group
    ///   has fewer than `min_group_size` points.
    /// * Degenerate-feature errors when a group's feature has zero spread
    ///   (no KDE bandwidth / zero-width support).
    ///
    /// With several invalid strata, the reported error is the one a
    /// sequential `u`-major sweep would hit first.
    pub fn design(&self, research: &Dataset) -> Result<RepairPlan> {
        self.config.validate()?;
        let d = research.dim();
        let features = try_par_map_indexed(2 * d, self.config.threads, |idx| {
            self.design_feature(research, (idx / d) as u8, idx % d)
        })?;
        Ok(RepairPlan {
            config: self.config,
            dim: d,
            features,
        })
    }

    /// Re-design the full repair plan against (typically drifted)
    /// research data, warm-starting every stratum's OT solves from the
    /// dual potentials stored in `previous` — the continuous-re-planning
    /// path of the drift-aware lifecycle.
    ///
    /// Entropic backends seed their iteration from the previous plan's
    /// [`FeaturePlan::duals`] and skip any configured ε-schedule (the
    /// warm duals already are the schedule's product), cutting the
    /// re-design cost to a fraction of a cold [`Self::design`]; the
    /// result agrees with a cold design of the same data at the final ε
    /// within the solver tolerance. Exact backends carry no duals, so
    /// for them this *is* a cold design. Deterministic: the output is a
    /// pure function of `(config, research, previous duals)` and
    /// bit-identical for any thread count.
    ///
    /// # Errors
    /// As [`Self::design`].
    pub fn redesign(&self, research: &Dataset, previous: &RepairPlan) -> Result<RepairPlan> {
        self.config.validate()?;
        let d = research.dim();
        let features = try_par_map_indexed(2 * d, self.config.threads, |idx| {
            let (u, k) = ((idx / d) as u8, idx % d);
            let warm = previous
                .feature_plan(u, k)
                .map(|fp| [fp.duals[0].as_ref(), fp.duals[1].as_ref()])
                .unwrap_or([None, None]);
            self.design_feature_warm(research, u, k, warm)
        })?;
        Ok(RepairPlan {
            config: self.config,
            dim: d,
            features,
        })
    }

    /// Design the `(u, k)` stratum (lines 3–11 of Algorithm 1).
    fn design_feature(&self, research: &Dataset, u: u8, k: usize) -> Result<FeaturePlan> {
        self.design_feature_warm(research, u, k, [None, None])
    }

    /// [`Self::design_feature`] with warm-start duals per `s`.
    fn design_feature_warm(
        &self,
        research: &Dataset,
        u: u8,
        k: usize,
        warm: [Option<&SinkhornDuals>; 2],
    ) -> Result<FeaturePlan> {
        let xs: [Vec<f64>; 2] = [
            research.feature_column(GroupKey { u, s: 0 }, k)?,
            research.feature_column(GroupKey { u, s: 1 }, k)?,
        ];
        self.design_feature_columns_warm(xs, u, k, warm)
    }

    /// Design one stratum directly from the two `s`-conditional feature
    /// columns. This is the raw form of Algorithm 1's inner loop; the
    /// continuous-`u` extension ([`crate::continuous_u`]) uses it with
    /// quantile-bin indices in place of the binary `u`.
    ///
    /// # Errors
    /// Same requirements as [`Self::design`].
    pub fn design_feature_columns(
        &self,
        xs: [Vec<f64>; 2],
        u: u8,
        k: usize,
    ) -> Result<FeaturePlan> {
        self.design_feature_columns_warm(xs, u, k, [None, None])
    }

    /// [`Self::design_feature_columns`] with per-`s` warm-start duals
    /// (see [`Self::redesign`] for the contract).
    ///
    /// # Errors
    /// Same requirements as [`Self::design`].
    pub fn design_feature_columns_warm(
        &self,
        xs: [Vec<f64>; 2],
        u: u8,
        k: usize,
        warm: [Option<&SinkhornDuals>; 2],
    ) -> Result<FeaturePlan> {
        for (s, col) in xs.iter().enumerate() {
            if col.len() < self.config.min_group_size {
                return Err(RepairError::InsufficientResearchData {
                    u,
                    s: s as u8,
                    found: col.len(),
                    needed: self.config.min_group_size,
                });
            }
        }

        // Line 4: uniform support across the pooled research range.
        let lo = xs.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        let hi = xs
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if !(lo < hi) {
            return Err(RepairError::InvalidParameter {
                name: "research data",
                reason: format!("feature {k} of group u={u} has zero spread (all values = {lo})"),
            });
        }
        let n_q = self.config.n_q;
        let support: Vec<f64> = (0..n_q)
            .map(|i| lo + (hi - lo) * i as f64 / (n_q - 1) as f64)
            .collect();

        // Line 8 / Equation 11: KDE-interpolated marginal pmfs. The
        // Gaussian kernel is strictly positive analytically, but underflows
        // to exact zero beyond ~38 bandwidths; floor each state at a tiny
        // fraction of the peak so every OT-plan row keeps samplable mass.
        let mut marginals: Vec<DiscreteDistribution> = Vec::with_capacity(2);
        for col in &xs {
            let kde = GaussianKde::fit(col, self.config.bandwidth)?;
            let mut pmf = kde.pmf_on_grid(&support)?;
            let floor = pmf.iter().copied().fold(0.0, f64::max) * 1e-12;
            for p in &mut pmf {
                *p = p.max(floor);
            }
            marginals.push(DiscreteDistribution::new(support.clone(), pmf)?);
        }
        let marginals: [DiscreteDistribution; 2] = [marginals.remove(0), marginals.remove(0)];

        // Line 9 / Equation 7: the t-barycentre target on the same support.
        let barycentre = quantile_barycentre(
            &marginals[0],
            &marginals[1],
            self.config.t,
            &support,
            self.config.barycentre_resolution,
        )?;

        // Line 11 / Equation 13: OT plans µ_s -> ν, through the unified
        // solver seam (which owns the Sinkhorn→simplex fallback policy).
        // The thread setting reaches the backend's in-kernel scaling
        // loops; small 1-D grids stay sequential under the kernel-cells
        // threshold, so the per-stratum parallelism of `design` is not
        // oversubscribed.
        let mut plans: Vec<OtPlan> = Vec::with_capacity(2);
        let mut duals: Vec<Option<SinkhornDuals>> = Vec::with_capacity(2);
        for (s, m) in marginals.iter().enumerate() {
            let (plan, d) =
                self.config
                    .solver
                    .solve_1d_warm(m, &barycentre, self.config.threads, warm[s])?;
            plans.push(plan);
            duals.push(d);
        }
        let plans: [OtPlan; 2] = [plans.remove(0), plans.remove(0)];
        let duals: [Option<SinkhornDuals>; 2] = [duals.remove(0), duals.remove(0)];

        let mut fp = FeaturePlan {
            u,
            k,
            support,
            marginals,
            barycentre,
            plans,
            duals,
            samplers: [Vec::new(), Vec::new()],
        };
        fp.compile()?;
        Ok(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverBackend;
    use otr_data::SimulationSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn research(seed: u64, n: usize) -> Dataset {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        spec.sample_dataset(n, &mut rng).unwrap()
    }

    #[test]
    fn design_produces_all_strata() {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&research(1, 400))
            .unwrap();
        assert_eq!(plan.dim, 2);
        assert_eq!(plan.feature_plans().len(), 4);
        for u in 0..2u8 {
            for k in 0..2usize {
                let fp = plan.feature_plan(u, k).unwrap();
                assert_eq!(fp.u, u);
                assert_eq!(fp.k, k);
                assert_eq!(fp.support.len(), 30);
                assert!(fp.is_compiled());
            }
        }
        assert!(plan.feature_plan(2, 0).is_err());
        assert!(plan.feature_plan(0, 9).is_err());
    }

    #[test]
    fn support_spans_pooled_range() {
        let data = research(2, 500);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(20))
            .design(&data)
            .unwrap();
        for u in 0..2u8 {
            let fp = plan.feature_plan(u, 0).unwrap();
            let col0 = data.feature_column(GroupKey { u, s: 0 }, 0).unwrap();
            let col1 = data.feature_column(GroupKey { u, s: 1 }, 0).unwrap();
            let lo = col0
                .iter()
                .chain(&col1)
                .copied()
                .fold(f64::INFINITY, f64::min);
            let hi = col0
                .iter()
                .chain(&col1)
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((fp.support[0] - lo).abs() < 1e-12);
            assert!((fp.support[fp.support.len() - 1] - hi).abs() < 1e-12);
        }
    }

    #[test]
    fn plans_couple_marginal_to_barycentre() {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(40))
            .design(&research(3, 600))
            .unwrap();
        for fp in plan.feature_plans() {
            for s in 0..2usize {
                fp.plans[s]
                    .validate_marginals(fp.marginals[s].masses(), fp.barycentre.masses())
                    .unwrap();
            }
        }
    }

    #[test]
    fn insufficient_group_detected() {
        // u=1, s=0 has Pr = 0.05; a tiny sample will miss the threshold.
        let mut cfg = RepairConfig::with_n_q(10);
        cfg.min_group_size = 50;
        let err = RepairPlanner::new(cfg).design(&research(4, 120));
        assert!(matches!(
            err,
            Err(RepairError::InsufficientResearchData { .. })
        ));
    }

    #[test]
    fn repair_preserves_cardinality_and_labels() {
        let data = research(5, 500);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
            .design(&data)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let archive = research(6, 2_000);
        let repaired = plan.repair_dataset(&archive, &mut rng).unwrap();
        assert_eq!(repaired.len(), archive.len());
        for (a, b) in repaired.points().iter().zip(archive.points()) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn repaired_values_live_on_support() {
        let data = research(7, 400);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(25))
            .design(&data)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let archive = research(8, 500);
        let repaired = plan.repair_dataset(&archive, &mut rng).unwrap();
        for p in repaired.points() {
            for (k, &v) in p.x.iter().enumerate() {
                let fp = plan.feature_plan(p.u, k).unwrap();
                assert!(
                    fp.support.iter().any(|&q| (q - v).abs() < 1e-9),
                    "repaired value {v} is not a support state"
                );
            }
        }
    }

    #[test]
    fn out_of_range_values_clamp_to_boundary_states() {
        let data = research(9, 300);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(15))
            .design(&data)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        // A value far below/above any research observation.
        let lo_val = plan.repair_value(0, 0, 0, -1e6, &mut rng).unwrap();
        let hi_val = plan.repair_value(0, 0, 0, 1e6, &mut rng).unwrap();
        let fp = plan.feature_plan(0, 0).unwrap();
        assert!(fp.support.contains(&lo_val));
        assert!(fp.support.contains(&hi_val));
    }

    #[test]
    fn repair_rejects_mismatches() {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(10))
            .design(&research(10, 300))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(plan.repair_value(0, 7, 0, 0.0, &mut rng).is_err());
        let bad = LabelledPoint {
            x: vec![0.0],
            s: 0,
            u: 0,
        };
        assert!(plan.repair_point(&bad, &mut rng).is_err());
    }

    #[test]
    fn partial_repair_interpolates() {
        let data = research(11, 400);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&data)
            .unwrap();
        let archive = research(12, 300);
        let zero = plan
            .repair_dataset_partial(&archive, 0.0, &mut StdRng::seed_from_u64(4))
            .unwrap();
        // lambda = 0 returns the original features exactly.
        for (a, b) in zero.points().iter().zip(archive.points()) {
            assert_eq!(a.x, b.x);
        }
        assert!(plan
            .repair_dataset_partial(&archive, 1.5, &mut StdRng::seed_from_u64(5))
            .is_err());
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let data = research(13, 400);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(20))
            .design(&data)
            .unwrap();
        let json = plan.to_json().unwrap();
        let back = RepairPlan::from_json(&json).unwrap();
        // Structural agreement up to the last JSON ulp.
        assert_eq!(back.dim, plan.dim);
        assert_eq!(back.feature_plans().len(), plan.feature_plans().len());
        for (a, b) in plan.feature_plans().iter().zip(back.feature_plans()) {
            assert_eq!(a.u, b.u);
            assert_eq!(a.k, b.k);
            for (x, y) in a.support.iter().zip(&b.support) {
                assert!((x - y).abs() < 1e-12);
            }
            for s in 0..2 {
                for (x, y) in a.marginals[s].masses().iter().zip(b.marginals[s].masses()) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
            assert!(b.is_compiled());
        }
        // Behavioural agreement: identical repair draws under the same RNG.
        let vals_a: Vec<f64> = (0..50)
            .map(|i| {
                plan.repair_value(0, 1, 0, 0.1 * i as f64 - 2.0, &mut StdRng::seed_from_u64(i))
                    .unwrap()
            })
            .collect();
        let vals_b: Vec<f64> = (0..50)
            .map(|i| {
                back.repair_value(0, 1, 0, 0.1 * i as f64 - 2.0, &mut StdRng::seed_from_u64(i))
                    .unwrap()
            })
            .collect();
        for (a, b) in vals_a.iter().zip(&vals_b) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_repair_bit_identical_across_thread_counts() {
        let data = research(20, 400);
        let archive = research(21, 1_000);
        let mut reference: Option<Dataset> = None;
        for threads in [1usize, 2, 7] {
            let mut cfg = RepairConfig::with_n_q(30);
            cfg.threads = threads;
            let plan = RepairPlanner::new(cfg).design(&data).unwrap();
            let par = plan.repair_dataset_par(&archive, 99).unwrap();
            // Parallel equals the sequential per-row-stream reference...
            let seq = plan.repair_dataset_seeded(&archive, 99).unwrap();
            assert_eq!(par.points(), seq.points(), "threads = {threads}");
            // ...and every thread count produces the same bytes.
            match &reference {
                None => reference = Some(par),
                Some(r) => assert_eq!(par.points(), r.points(), "threads = {threads}"),
            }
        }
    }

    #[test]
    fn columnar_repair_byte_identical_to_row_path() {
        let data = research(30, 400);
        let archive = research(31, 1_500);
        let cols = ColumnarDataset::from_dataset(&archive);
        for threads in [1usize, 2, 7] {
            // Batch boundaries are pure blocking policy: tiny, prime,
            // and bigger-than-the-data batches all give the same bytes.
            for batch_rows in [None, Some(1), Some(37), Some(100_000)] {
                let mut cfg = RepairConfig::with_n_q(30);
                cfg.threads = threads;
                cfg.batch_rows = batch_rows;
                let plan = RepairPlanner::new(cfg).design(&data).unwrap();
                let seq = plan.repair_dataset_seeded(&archive, 99).unwrap();
                let col = plan.repair_columnar_par(&cols, 99).unwrap();
                assert_eq!(
                    col.to_dataset().points(),
                    seq.points(),
                    "threads = {threads}, batch_rows = {batch_rows:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_columnar_repair_matches_whole_archive() {
        let data = research(36, 400);
        let archive = research(37, 1_000);
        let cols = ColumnarDataset::from_dataset(&archive);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&data)
            .unwrap();
        let whole = plan.repair_columnar_par(&cols, 99).unwrap();
        let (_, whole_oob) = plan.repair_columnar_shard(&cols, 99, 0).unwrap();
        // Any contiguous shard layout, reassembled in index order,
        // reproduces the whole-archive bytes — the serving contract.
        for shards in [1usize, 2, 7] {
            let mut rebuilt: Vec<Vec<f64>> = vec![Vec::new(); cols.dim()];
            let mut oob_total = 0u64;
            let base = cols.len() / shards;
            let rem = cols.len() % shards;
            let mut start = 0usize;
            for sh in 0..shards {
                let len = base + usize::from(sh < rem);
                let slice = cols.slice_rows(start..start + len).unwrap();
                let (out, oob) = plan
                    .repair_columnar_shard(&slice, 99, start as u64)
                    .unwrap();
                for (k, col) in rebuilt.iter_mut().enumerate() {
                    col.extend_from_slice(out.feature_column(k).unwrap());
                }
                oob_total += oob;
                start += len;
            }
            let rebuilt = cols.with_feature_columns(rebuilt).unwrap();
            assert_eq!(rebuilt, whole, "shards = {shards}");
            assert_eq!(oob_total, whole_oob, "shards = {shards}");
        }
    }

    #[test]
    fn columnar_repair_deterministic_mode_matches_row_path() {
        let data = research(32, 400);
        let mut cfg = RepairConfig::with_n_q(30);
        cfg.mass_split = MassSplit::Deterministic;
        cfg.threads = 3;
        cfg.batch_rows = Some(101);
        let plan = RepairPlanner::new(cfg).design(&data).unwrap();
        let archive = research(33, 800);
        let row = plan.repair_dataset_par(&archive, 5).unwrap();
        let col = plan
            .repair_columnar_par(&ColumnarDataset::from_dataset(&archive), 5)
            .unwrap();
        assert_eq!(col.to_dataset().points(), row.points());
    }

    #[test]
    fn columnar_repair_rejects_mismatch_and_uncompiled() {
        let plan = RepairPlanner::new(RepairConfig::with_n_q(10))
            .design(&research(34, 300))
            .unwrap();
        let wrong_dim =
            ColumnarDataset::from_columns(vec![vec![0.0, 1.0]], vec![0, 1], vec![0, 1]).unwrap();
        assert!(plan.repair_columnar_par(&wrong_dim, 1).is_err());
        // A freshly deserialized (uncompiled) plan is rejected, same as
        // the row path's repair_value.
        let raw: RepairPlan = serde_json::from_str(&plan.to_json().unwrap()).unwrap();
        let cols = ColumnarDataset::from_dataset(&research(35, 50));
        assert!(raw.repair_columnar_par(&cols, 1).is_err());
        assert!(plan.repair_columnar_par(&cols, 1).is_ok());
    }

    #[test]
    fn parallel_design_matches_sequential_design() {
        let data = research(22, 500);
        let mut seq_cfg = RepairConfig::with_n_q(40);
        seq_cfg.threads = 1;
        let mut par_cfg = seq_cfg;
        par_cfg.threads = 5;
        let a = RepairPlanner::new(seq_cfg).design(&data).unwrap();
        let b = RepairPlanner::new(par_cfg).design(&data).unwrap();
        // Feature plans are identical; only the threads knob differs.
        assert_eq!(a.feature_plans(), b.feature_plans());
    }

    #[test]
    fn deterministic_mass_split_is_rng_independent() {
        let data = research(23, 400);
        let mut cfg = RepairConfig::with_n_q(30);
        cfg.mass_split = MassSplit::Deterministic;
        let plan = RepairPlanner::new(cfg).design(&data).unwrap();
        let archive = research(24, 500);
        let a = plan
            .repair_dataset(&archive, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let b = plan
            .repair_dataset(&archive, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert_eq!(a.points(), b.points(), "deterministic split used the RNG");
        // The parallel path agrees whatever the seed.
        let par = plan.repair_dataset_par(&archive, 7).unwrap();
        assert_eq!(par.points(), a.points());
        // Equal inputs repair equally (individual-fairness property).
        let mut rng = StdRng::seed_from_u64(3);
        let x = plan.repair_value(0, 1, 0, 0.25, &mut rng).unwrap();
        let y = plan.repair_value(0, 1, 0, 0.25, &mut rng).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn partial_par_interpolates_and_matches_full_repair() {
        let data = research(25, 400);
        let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
            .design(&data)
            .unwrap();
        let archive = research(26, 300);
        let zero = plan.repair_dataset_partial_par(&archive, 0.0, 9).unwrap();
        for (a, b) in zero.points().iter().zip(archive.points()) {
            assert_eq!(a.x, b.x);
        }
        let one = plan.repair_dataset_partial_par(&archive, 1.0, 9).unwrap();
        let full = plan.repair_dataset_par(&archive, 9).unwrap();
        assert_eq!(one.points(), full.points());
        assert!(plan.repair_dataset_partial_par(&archive, -0.1, 9).is_err());
    }

    #[test]
    fn sinkhorn_backend_designs_valid_plans() {
        let mut cfg = RepairConfig::with_n_q(25);
        cfg.solver = SolverBackend::sinkhorn(0.05);
        let plan = RepairPlanner::new(cfg).design(&research(14, 400)).unwrap();
        for fp in plan.feature_plans() {
            for s in 0..2usize {
                // Sinkhorn plans are rounded to exact feasibility.
                fp.plans[s]
                    .validate_marginals(fp.marginals[s].masses(), fp.barycentre.masses())
                    .unwrap();
            }
        }
    }

    #[test]
    fn warm_redesign_agrees_with_cold_design_at_final_epsilon() {
        use otr_data::Drift;
        use otr_ot::{CostMatrix, EpsSchedule};

        let mut cfg = RepairConfig::with_n_q(25);
        cfg.solver = SolverBackend::sinkhorn_scaled(0.05, EpsSchedule::geometric(1.0, 0.25));
        let planner = RepairPlanner::new(cfg);

        let original = research(31, 500);
        let previous = planner.design(&original).unwrap();
        // The entropic design must have banked duals for every solve.
        for fp in previous.feature_plans() {
            assert!(fp.duals[0].is_some() && fp.duals[1].is_some());
        }

        let drifted = Drift::MeanShift(vec![0.6, -0.4]).apply(&original).unwrap();
        let cold = planner.design(&drifted).unwrap();
        let warm = planner.redesign(&drifted, &previous).unwrap();

        // Warm and cold solve the identical (µ, ν, cost) problems to the
        // same final ε, so the converged plans must agree: identical
        // supports/marginals (design-path, not solver-path) and
        // transport costs within solver tolerance.
        for (c, w) in cold.feature_plans().iter().zip(warm.feature_plans()) {
            assert_eq!(c.support, w.support);
            assert_eq!(c.marginals, w.marginals);
            assert_eq!(c.barycentre, w.barycentre);
            let cost = CostMatrix::squared_euclidean(&c.support, &c.support).unwrap();
            for s in 0..2usize {
                let cc = c.plans[s].transport_cost(&cost).unwrap();
                let wc = w.plans[s].transport_cost(&cost).unwrap();
                assert!(
                    (cc - wc).abs() <= 1e-6 * cc.abs().max(1.0),
                    "(u={}, k={}, s={s}): cold cost {cc} vs warm cost {wc}",
                    c.u,
                    c.k
                );
                assert!(w.duals[s].is_some(), "warm redesign dropped duals");
            }
        }
    }

    #[test]
    fn redesign_under_exact_backend_is_a_cold_design() {
        let planner = RepairPlanner::new(RepairConfig::with_n_q(20));
        let original = research(33, 400);
        let previous = planner.design(&original).unwrap();
        let again = research(34, 400);
        let re = planner.redesign(&again, &previous).unwrap();
        let cold = planner.design(&again).unwrap();
        // Exact monotone carries no duals: redesign == design, exactly.
        assert_eq!(re, cold);
    }

    #[test]
    fn degenerate_feature_rejected() {
        // A dataset whose feature 0 is constant within u=0.
        let mut pts = Vec::new();
        for s in 0..2u8 {
            for i in 0..20 {
                pts.push(LabelledPoint {
                    x: vec![1.0, i as f64],
                    s,
                    u: 0,
                });
                pts.push(LabelledPoint {
                    x: vec![i as f64, i as f64],
                    s,
                    u: 1,
                });
            }
        }
        let data = Dataset::from_points(pts).unwrap();
        let err = RepairPlanner::new(RepairConfig::with_n_q(10)).design(&data);
        assert!(err.is_err());
    }
}
