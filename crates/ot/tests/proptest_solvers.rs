//! Property-based cross-validation of the three OT solvers and the
//! closed-form 1-D Wasserstein machinery.

use proptest::prelude::*;

use otr_ot::wasserstein::w2;
use otr_ot::{
    quantile_barycentre, sinkhorn, solve_monotone_1d, solve_transportation_simplex, wasserstein_1d,
    CostMatrix, DiscreteDistribution, MidpointCdf, SinkhornConfig,
};

/// Strategy: a discrete distribution with `n` strictly increasing support
/// points and positive masses.
fn arb_dd(max_n: usize) -> impl Strategy<Value = DiscreteDistribution> {
    (2..=max_n)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0.01f64..1.0, n), // gaps
                proptest::collection::vec(0.01f64..1.0, n), // masses
                -5.0f64..5.0,                               // origin
            )
        })
        .prop_map(|(gaps, masses, origin)| {
            let mut support = Vec::with_capacity(gaps.len());
            let mut x = origin;
            for g in gaps {
                x += g;
                support.push(x);
            }
            DiscreteDistribution::new(support, masses).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The monotone coupling must achieve exactly the closed-form 1-D W2.
    #[test]
    fn monotone_cost_equals_quantile_formula(
        mu in arb_dd(12),
        nu in arb_dd(12),
    ) {
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let via_plan = plan.transport_cost(&cost).unwrap();
        let closed_form = wasserstein_1d(&mu, &nu, 2.0).unwrap();
        prop_assert!(
            (via_plan - closed_form).abs() < 1e-8 * (1.0 + closed_form),
            "plan {} vs closed form {}", via_plan, closed_form
        );
    }

    /// The general simplex must find the same optimum as the 1-D shortcut.
    #[test]
    fn simplex_matches_monotone_on_convex_1d(
        mu in arb_dd(8),
        nu in arb_dd(8),
    ) {
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let mono = solve_monotone_1d(&mu, &nu).unwrap().transport_cost(&cost).unwrap();
        let simp = solve_transportation_simplex(mu.masses(), nu.masses(), &cost)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();
        prop_assert!(
            (mono - simp).abs() < 1e-7 * (1.0 + mono),
            "monotone {} vs simplex {}", mono, simp
        );
    }

    /// Entropic plans cost at least the unregularized optimum.
    #[test]
    fn sinkhorn_cost_upper_bounds_exact(
        mu in arb_dd(8),
        nu in arb_dd(8),
    ) {
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let exact = solve_monotone_1d(&mu, &nu).unwrap().transport_cost(&cost).unwrap();
        let entropic = sinkhorn(
            mu.masses(),
            nu.masses(),
            &cost,
            SinkhornConfig { epsilon: 0.5, max_iters: 50_000, tol: 1e-7, ..SinkhornConfig::default() },
        )
        .unwrap()
        .transport_cost(&cost)
        .unwrap();
        prop_assert!(entropic >= exact - 1e-6, "entropic {} < exact {}", entropic, exact);
    }

    /// Every solver must respect the coupling constraints.
    #[test]
    fn all_solvers_respect_marginals(
        mu in arb_dd(8),
        nu in arb_dd(8),
    ) {
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        for plan in [
            solve_monotone_1d(&mu, &nu).unwrap(),
            solve_transportation_simplex(mu.masses(), nu.masses(), &cost).unwrap(),
            sinkhorn(
                mu.masses(),
                nu.masses(),
                &cost,
                SinkhornConfig { epsilon: 1.0, max_iters: 50_000, tol: 1e-9, ..SinkhornConfig::default() },
            )
            .unwrap(),
        ] {
            plan.validate_marginals(mu.masses(), nu.masses()).unwrap();
        }
    }

    /// W2 is a metric: symmetry and triangle inequality on random triples.
    #[test]
    fn w2_is_a_metric(
        a in arb_dd(10),
        b in arb_dd(10),
        c in arb_dd(10),
    ) {
        let ab = w2(&a, &b).unwrap();
        let ba = w2(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        let bc = w2(&b, &c).unwrap();
        let ac = w2(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    /// Barycentre endpoints and W2-interpolation property:
    /// W2(mu0, nu_t) ≈ t · W2(mu0, mu1) on a shared support.
    #[test]
    fn barycentre_interpolates_w2_distance(
        seed_mass in proptest::collection::vec(0.05f64..1.0, 30),
        t in 0.1f64..0.9,
        shift in 1.0f64..3.0,
    ) {
        let n = seed_mass.len();
        let support: Vec<f64> = (0..n).map(|i| i as f64 * 0.4).collect();
        // mu1 = mu0 shifted by `shift` cells (same support, rolled masses).
        let k = (shift / 0.4) as usize % n;
        let mut m1 = seed_mass.clone();
        m1.rotate_right(k);
        let mu0 = DiscreteDistribution::new(support.clone(), seed_mass).unwrap();
        let mu1 = DiscreteDistribution::new(support.clone(), m1).unwrap();
        let bary = quantile_barycentre(&mu0, &mu1, t, &support, None).unwrap();
        let d01 = w2(&mu0, &mu1).unwrap();
        let d0t = w2(&mu0, &bary).unwrap();
        // Grid projection adds up to ~one cell of slack.
        prop_assert!(
            (d0t - t * d01).abs() < 0.45 + 0.1 * d01,
            "W2(mu0, nu_t) = {} vs t*W2 = {}", d0t, t * d01
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MidpointCdf quantile/cdf are mutually inverse on the interior.
    #[test]
    fn midpoint_cdf_quantile_inverse(d in arb_dd(12)) {
        let f = MidpointCdf::new(&d);
        let m_first = f.cdf(d.support()[0]);
        let m_last = f.cdf(d.support()[d.len() - 1]);
        for i in 1..40 {
            let p = m_first + (m_last - m_first) * i as f64 / 40.0;
            let x = f.quantile(p);
            prop_assert!((f.cdf(x) - p).abs() < 1e-9, "p = {}", p);
        }
    }

    /// The Monge map between random discrete distributions is monotone and
    /// lands in the target's support hull.
    #[test]
    fn monge_map_monotone_and_bounded(a in arb_dd(10), b in arb_dd(10)) {
        let fa = MidpointCdf::new(&a);
        let fb = MidpointCdf::new(&b);
        let lo = a.support()[0] - 1.0;
        let hi = a.support()[a.len() - 1] + 1.0;
        let mut prev = f64::NEG_INFINITY;
        for i in 0..60 {
            let x = lo + (hi - lo) * i as f64 / 59.0;
            let t = fa.monge_to(&fb, x);
            prop_assert!(t >= prev - 1e-12);
            prop_assert!(t >= b.support()[0] - 1e-12);
            prop_assert!(t <= b.support()[b.len() - 1] + 1e-12);
            prev = t;
        }
    }

    /// Pushing a distribution's own quantiles through the Monge map toward
    /// a target reproduces the target's quantiles (transport correctness).
    #[test]
    fn monge_pushforward_matches_target_quantiles(a in arb_dd(10), b in arb_dd(10)) {
        let fa = MidpointCdf::new(&a);
        let fb = MidpointCdf::new(&b);
        let m_first = fa.cdf(a.support()[0]);
        let m_last = fa.cdf(a.support()[a.len() - 1]);
        for i in 1..20 {
            let p = m_first + (m_last - m_first) * i as f64 / 20.0;
            let x = fa.quantile(p);
            let pushed = fa.monge_to(&fb, x);
            let direct = fb.quantile(p);
            prop_assert!(
                (pushed - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "p = {}: pushed {} vs direct {}", p, pushed, direct
            );
        }
    }
}
