//! Discrete probability distributions on ordered real supports — the
//! `µ_s` and `ν` objects of the paper (interpolated marginal pmfs on the
//! uniform support `Q`, Equation 11).

use serde::{Deserialize, Serialize};

use crate::error::{OtError, Result};

/// A discrete probability distribution: strictly increasing support points
/// with matching normalized masses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDistribution {
    support: Vec<f64>,
    masses: Vec<f64>,
}

impl DiscreteDistribution {
    /// Create from a support and (possibly unnormalized) masses.
    ///
    /// # Errors
    /// * [`OtError::EmptyInput`] on empty vectors.
    /// * [`OtError::LengthMismatch`] if lengths differ.
    /// * [`OtError::UnsortedSupport`] unless the support is strictly
    ///   increasing and finite.
    /// * [`OtError::InvalidMass`] on negative/NaN mass or zero total.
    pub fn new(support: Vec<f64>, masses: Vec<f64>) -> Result<Self> {
        if support.is_empty() {
            return Err(OtError::EmptyInput("support"));
        }
        if support.len() != masses.len() {
            return Err(OtError::LengthMismatch {
                what: "support vs masses",
                left: support.len(),
                right: masses.len(),
            });
        }
        if support.iter().any(|x| !x.is_finite()) {
            return Err(OtError::UnsortedSupport(
                "support contains non-finite points",
            ));
        }
        for w in support.windows(2) {
            if !(w[0] < w[1]) {
                return Err(OtError::UnsortedSupport("support"));
            }
        }
        let mut total = 0.0;
        for (i, &m) in masses.iter().enumerate() {
            if m < 0.0 || m.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "mass[{i}] = {m} is negative or NaN"
                )));
            }
            total += m;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("total mass {total}")));
        }
        let masses = masses.into_iter().map(|m| m / total).collect();
        Ok(Self { support, masses })
    }

    /// Uniform (empirical) distribution on the given points.
    ///
    /// The points are sorted and **deduplicated with merged mass**, so this
    /// is the empirical measure `µ_s = n⁻¹ Σ δ_{x_i}` of Equation (4).
    ///
    /// # Errors
    /// Returns an error on empty or non-finite input.
    pub fn empirical(points: &[f64]) -> Result<Self> {
        if points.is_empty() {
            return Err(OtError::EmptyInput("empirical points"));
        }
        if points.iter().any(|x| !x.is_finite()) {
            return Err(OtError::UnsortedSupport("points contain non-finite values"));
        }
        let mut sorted = points.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite points"));
        let w = 1.0 / points.len() as f64;
        let mut support: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut masses: Vec<f64> = Vec::with_capacity(sorted.len());
        for x in sorted {
            match support.last() {
                Some(&last) if last == x => {
                    *masses.last_mut().expect("same length") += w;
                }
                _ => {
                    support.push(x);
                    masses.push(w);
                }
            }
        }
        Ok(Self { support, masses })
    }

    /// Number of support points.
    #[inline]
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// True if the distribution is a single point mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // construction rejects empty supports
    }

    /// The support points (strictly increasing).
    #[inline]
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// The normalized masses (sum to 1 within round-off).
    #[inline]
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Mean `Σ p_i x_i`.
    pub fn mean(&self) -> f64 {
        self.support
            .iter()
            .zip(&self.masses)
            .map(|(x, p)| x * p)
            .sum()
    }

    /// Variance `Σ p_i (x_i − mean)²`.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.support
            .iter()
            .zip(&self.masses)
            .map(|(x, p)| p * (x - m) * (x - m))
            .sum()
    }

    /// Cumulative masses `P(X ≤ support[i])`.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut out = Vec::with_capacity(self.masses.len());
        for &m in &self.masses {
            acc += m;
            out.push(acc);
        }
        if let Some(last) = out.last_mut() {
            *last = 1.0; // absorb round-off
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes() {
        let d = DiscreteDistribution::new(vec![0.0, 1.0], vec![1.0, 3.0]).unwrap();
        assert!((d.masses()[0] - 0.25).abs() < 1e-15);
        assert!((d.masses()[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn new_rejects_invalid() {
        assert!(DiscreteDistribution::new(vec![], vec![]).is_err());
        assert!(DiscreteDistribution::new(vec![0.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteDistribution::new(vec![1.0, 0.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteDistribution::new(vec![0.0, 0.0], vec![0.5, 0.5]).is_err());
        assert!(DiscreteDistribution::new(vec![0.0, 1.0], vec![-0.1, 1.1]).is_err());
        assert!(DiscreteDistribution::new(vec![0.0, 1.0], vec![0.0, 0.0]).is_err());
        assert!(DiscreteDistribution::new(vec![0.0, f64::NAN], vec![0.5, 0.5]).is_err());
    }

    #[test]
    fn empirical_sorts_and_dedups() {
        let d = DiscreteDistribution::empirical(&[2.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.support(), &[1.0, 2.0, 3.0]);
        assert!((d.masses()[0] - 0.25).abs() < 1e-15);
        assert!((d.masses()[1] - 0.5).abs() < 1e-15);
        assert!((d.masses()[2] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn empirical_rejects_bad_points() {
        assert!(DiscreteDistribution::empirical(&[]).is_err());
        assert!(DiscreteDistribution::empirical(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn moments() {
        let d = DiscreteDistribution::new(vec![0.0, 2.0], vec![0.5, 0.5]).unwrap();
        assert!((d.mean() - 1.0).abs() < 1e-15);
        assert!((d.variance() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_ends_at_one() {
        let d = DiscreteDistribution::new(vec![0.0, 1.0, 2.0], vec![0.2, 0.3, 0.5]).unwrap();
        let cdf = d.cdf();
        assert!((cdf[0] - 0.2).abs() < 1e-15);
        assert!((cdf[1] - 0.5).abs() < 1e-15);
        assert_eq!(cdf[2], 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let d = DiscreteDistribution::new(vec![0.0, 1.5], vec![0.4, 0.6]).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: DiscreteDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
