//! Cost matrices over product supports — the `C(qᵢ, qⱼ)` of Equation (13)
//! and line 6 of Algorithm 1.

use serde::{Deserialize, Serialize};

use crate::error::{OtError, Result};

/// A dense `n × m` cost matrix `C[i][j] = c(xᵢ, yⱼ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Axis grids when this cost is the squared-Euclidean distance of a
    /// d-axis self-product grid (see
    /// [`CostMatrix::squared_euclidean_grid_nd`]) — the structural hint
    /// the entropic solvers need to factorize their Gibbs kernel as
    /// `K₁ ⊗ … ⊗ K_d`. Runtime metadata, not part of the serialized
    /// cost (deserialized costs simply lose the hint and solve dense).
    #[serde(skip)]
    grid: Option<Vec<Vec<f64>>>,
}

impl CostMatrix {
    /// Build `C[i][j] = |xᵢ − yⱼ|^p` for `p ≥ 1` — the `L_p^p` ground cost
    /// on the real line. The paper uses `p = 2` (squared Euclidean,
    /// Section IV-A2) so that Brenier's theorem applies in the continuum
    /// limit.
    ///
    /// # Errors
    /// Requires non-empty supports, finite points, and `p ≥ 1`.
    pub fn lp(source: &[f64], target: &[f64], p: f64) -> Result<Self> {
        if source.is_empty() || target.is_empty() {
            return Err(OtError::EmptyInput("cost matrix support"));
        }
        if p < 1.0 || !p.is_finite() {
            return Err(OtError::InvalidParameter {
                name: "p",
                reason: format!("must be >= 1 and finite, got {p}"),
            });
        }
        if source.iter().chain(target).any(|x| !x.is_finite()) {
            return Err(OtError::InvalidParameter {
                name: "support",
                reason: "contains non-finite points".into(),
            });
        }
        let mut data = Vec::with_capacity(source.len() * target.len());
        for &x in source {
            for &y in target {
                let d = (x - y).abs();
                data.push(if p == 2.0 { d * d } else { d.powf(p) });
            }
        }
        Ok(Self {
            rows: source.len(),
            cols: target.len(),
            data,
            grid: None,
        })
    }

    /// Squared-Euclidean convenience constructor (`p = 2`).
    ///
    /// # Errors
    /// Same as [`CostMatrix::lp`].
    pub fn squared_euclidean(source: &[f64], target: &[f64]) -> Result<Self> {
        Self::lp(source, target, 2.0)
    }

    /// Squared-Euclidean cost of the **self-product grid** `gx × gy`
    /// (both sides the same flattened row-major support, `y` fastest):
    /// `C[(i,j),(k,l)] = (gx[i]−gx[k])² + (gy[j]−gy[l])²`. The dense
    /// matrix is identical to what [`CostMatrix::from_fn`] over the
    /// flattened points builds, but the axes are recorded as
    /// [`CostMatrix::grid2d`] metadata, which lets the entropic solvers
    /// factorize their Gibbs kernel as `Kx ⊗ Ky` (two `O(nQ³)` axis
    /// passes instead of one `O(nQ⁴)` dense matvec).
    ///
    /// # Errors
    /// Requires at least one point per axis and finite grid values.
    pub fn squared_euclidean_grid2d(gx: &[f64], gy: &[f64]) -> Result<Self> {
        Self::squared_euclidean_grid_nd(&[gx, gy])
    }

    /// Squared-Euclidean cost of the **d-axis self-product grid**
    /// `axes[0] × … × axes[d−1]` (both sides the same flattened
    /// row-major support, last axis fastest):
    /// `C[i,j] = Σ_a (g_a[i_a] − g_a[j_a])²`, accumulated over axes in
    /// order (so the d = 2 bytes are bitwise-identical to the original
    /// `dx² + dy²` spelling). The dense matrix is what
    /// [`CostMatrix::from_fn`] over the flattened points would build,
    /// but the axes are recorded as [`CostMatrix::grid_nd`] metadata,
    /// which lets the entropic solvers factorize their Gibbs kernel as
    /// `K₁ ⊗ … ⊗ K_d` (d `O(n·nᵢ)` axis passes instead of one `O(n²)`
    /// dense matvec).
    ///
    /// # Errors
    /// Requires at least one axis, at least one point per axis, and
    /// finite grid values.
    pub fn squared_euclidean_grid_nd(axes: &[&[f64]]) -> Result<Self> {
        if axes.is_empty() || axes.iter().any(|g| g.is_empty()) {
            return Err(OtError::EmptyInput("cost matrix grid axis"));
        }
        if axes.iter().flat_map(|g| g.iter()).any(|x| !x.is_finite()) {
            return Err(OtError::InvalidParameter {
                name: "support",
                reason: "contains non-finite points".into(),
            });
        }
        let d = axes.len();
        let n: usize = axes.iter().map(|g| g.len()).product();
        // Flattened point coordinates (row i = the d coordinates of
        // support point i), decoded once instead of per cell.
        let mut coords = vec![0.0f64; n * d];
        for i in 0..n {
            let mut r = i;
            for a in (0..d).rev() {
                let na = axes[a].len();
                coords[i * d + a] = axes[a][r % na];
                r /= na;
            }
        }
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            let ci = &coords[i * d..(i + 1) * d];
            for j in 0..n {
                let cj = &coords[j * d..(j + 1) * d];
                let mut acc = 0.0;
                for (x, y) in ci.iter().zip(cj) {
                    let dd = x - y;
                    acc += dd * dd;
                }
                data.push(acc);
            }
        }
        Ok(Self {
            rows: n,
            cols: n,
            data,
            grid: Some(axes.iter().map(|g| g.to_vec()).collect()),
        })
    }

    /// The axis grids of a 2-axis self-product squared-Euclidean cost,
    /// when this matrix was built by
    /// [`CostMatrix::squared_euclidean_grid2d`] (the hint that a Gibbs
    /// kernel over it factorizes as `Kx ⊗ Ky`). `None` for costs of any
    /// other shape, including deeper product grids — d-axis callers use
    /// [`CostMatrix::grid_nd`].
    pub fn grid2d(&self) -> Option<(&[f64], &[f64])> {
        match self.grid.as_deref() {
            Some([gx, gy]) => Some((gx.as_slice(), gy.as_slice())),
            _ => None,
        }
    }

    /// The axis grids of a d-axis self-product squared-Euclidean cost,
    /// when this matrix was built by
    /// [`CostMatrix::squared_euclidean_grid_nd`] (or the grid2d
    /// convenience wrapper) — the hint that a Gibbs kernel over it
    /// factorizes as `K₁ ⊗ … ⊗ K_d`.
    pub fn grid_nd(&self) -> Option<&[Vec<f64>]> {
        self.grid.as_deref()
    }

    /// Build from an arbitrary pairwise cost function on d-dimensional
    /// points: `C[i][j] = cost(source[i], target[j])`.
    ///
    /// # Errors
    /// Requires non-empty point sets and finite, non-negative costs.
    pub fn from_fn<T>(
        source: &[T],
        target: &[T],
        mut cost: impl FnMut(&T, &T) -> f64,
    ) -> Result<Self> {
        if source.is_empty() || target.is_empty() {
            return Err(OtError::EmptyInput("cost matrix point set"));
        }
        let mut data = Vec::with_capacity(source.len() * target.len());
        for x in source {
            for y in target {
                let c = cost(x, y);
                if !c.is_finite() || c < 0.0 {
                    return Err(OtError::InvalidParameter {
                        name: "cost",
                        reason: format!("cost function returned {c}"),
                    });
                }
                data.push(c);
            }
        }
        Ok(Self {
            rows: source.len(),
            cols: target.len(),
            data,
            grid: None,
        })
    }

    /// Number of source points.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target points.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of moving source `i` to target `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Largest entry (used by Sinkhorn's epsilon scaling).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_values() {
        let c = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 4.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn l1_cost() {
        let c = CostMatrix::lp(&[0.0], &[-3.0, 3.0], 1.0).unwrap();
        assert_eq!(c.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn rejects_invalid() {
        assert!(CostMatrix::lp(&[], &[1.0], 2.0).is_err());
        assert!(CostMatrix::lp(&[1.0], &[], 2.0).is_err());
        assert!(CostMatrix::lp(&[1.0], &[1.0], 0.5).is_err());
        assert!(CostMatrix::lp(&[f64::NAN], &[1.0], 2.0).is_err());
    }

    #[test]
    fn from_fn_2d_euclidean() {
        let a = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let b = vec![vec![1.0, 0.0]];
        let c = CostMatrix::from_fn(&a, &b, |x, y| {
            x.iter().zip(y).map(|(u, v)| (u - v) * (u - v)).sum()
        })
        .unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
    }

    #[test]
    fn from_fn_rejects_negative_cost() {
        let a = [1.0];
        assert!(CostMatrix::from_fn(&a, &a, |_, _| -1.0).is_err());
        assert!(CostMatrix::from_fn(&a, &a, |_, _| f64::NAN).is_err());
    }

    #[test]
    fn grid2d_cost_matches_from_fn_and_records_axes() {
        let gx = [0.0, 1.0, 3.0];
        let gy = [-1.0, 0.5];
        let c = CostMatrix::squared_euclidean_grid2d(&gx, &gy).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.cols(), 6);
        let points: Vec<(f64, f64)> = gx
            .iter()
            .flat_map(|&x| gy.iter().map(move |&y| (x, y)))
            .collect();
        let dense = CostMatrix::from_fn(&points, &points, |a, b| {
            let dx = a.0 - b.0;
            let dy = a.1 - b.1;
            dx * dx + dy * dy
        })
        .unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(c.get(i, j).to_bits(), dense.get(i, j).to_bits());
            }
        }
        let (ax, ay) = c.grid2d().unwrap();
        assert_eq!(ax, &gx);
        assert_eq!(ay, &gy);
        // Plain constructors carry no grid hint.
        assert!(dense.grid2d().is_none());
        assert!(CostMatrix::squared_euclidean(&gx, &gx)
            .unwrap()
            .grid2d()
            .is_none());
        // Degenerate axes are rejected.
        assert!(CostMatrix::squared_euclidean_grid2d(&[], &gy).is_err());
        assert!(CostMatrix::squared_euclidean_grid2d(&[f64::NAN], &gy).is_err());
    }

    #[test]
    fn grid_nd_cost_matches_from_fn_and_records_axes() {
        let g1 = [0.0, 1.0, 3.0];
        let g2 = [-1.0, 0.5];
        let g3 = [2.0, 2.5];
        let c = CostMatrix::squared_euclidean_grid_nd(&[&g1, &g2, &g3]).unwrap();
        let n = g1.len() * g2.len() * g3.len();
        assert_eq!(c.rows(), n);
        assert_eq!(c.cols(), n);
        // Flattened points, last axis fastest.
        let mut points: Vec<[f64; 3]> = Vec::with_capacity(n);
        for &x in &g1 {
            for &y in &g2 {
                for &z in &g3 {
                    points.push([x, y, z]);
                }
            }
        }
        let dense = CostMatrix::from_fn(&points, &points, |a, b| {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        })
        .unwrap();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c.get(i, j).to_bits(), dense.get(i, j).to_bits());
            }
        }
        let axes = c.grid_nd().unwrap();
        assert_eq!(axes.len(), 3);
        assert_eq!(axes[0], &g1);
        assert_eq!(axes[1], &g2);
        assert_eq!(axes[2], &g3);
        // A 3-axis grid is not a 2-axis grid.
        assert!(c.grid2d().is_none());
        // The grid hint is runtime metadata, lost over serde.
        let back: CostMatrix = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert!(back.grid_nd().is_none());
        // Degenerate axes are rejected.
        assert!(CostMatrix::squared_euclidean_grid_nd(&[]).is_err());
        assert!(CostMatrix::squared_euclidean_grid_nd(&[&g1, &[]]).is_err());
        assert!(CostMatrix::squared_euclidean_grid_nd(&[&[f64::NAN]]).is_err());
    }

    #[test]
    fn grid2d_is_the_two_axis_special_case_of_grid_nd() {
        let gx = [0.0, 1.0, 3.0];
        let gy = [-1.0, 0.5];
        let via_2d = CostMatrix::squared_euclidean_grid2d(&gx, &gy).unwrap();
        let via_nd = CostMatrix::squared_euclidean_grid_nd(&[&gx, &gy]).unwrap();
        for i in 0..via_2d.rows() {
            for j in 0..via_2d.cols() {
                assert_eq!(via_2d.get(i, j).to_bits(), via_nd.get(i, j).to_bits());
            }
        }
        assert!(via_2d.grid2d().is_some());
        assert_eq!(via_nd.grid_nd().unwrap().len(), 2);
    }

    #[test]
    fn max_entry() {
        let c = CostMatrix::squared_euclidean(&[0.0, 10.0], &[0.0]).unwrap();
        assert_eq!(c.max(), 100.0);
    }
}
