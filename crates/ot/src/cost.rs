//! Cost matrices over product supports — the `C(qᵢ, qⱼ)` of Equation (13)
//! and line 6 of Algorithm 1.

use serde::{Deserialize, Serialize};

use crate::error::{OtError, Result};

/// A dense `n × m` cost matrix `C[i][j] = c(xᵢ, yⱼ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Build `C[i][j] = |xᵢ − yⱼ|^p` for `p ≥ 1` — the `L_p^p` ground cost
    /// on the real line. The paper uses `p = 2` (squared Euclidean,
    /// Section IV-A2) so that Brenier's theorem applies in the continuum
    /// limit.
    ///
    /// # Errors
    /// Requires non-empty supports, finite points, and `p ≥ 1`.
    pub fn lp(source: &[f64], target: &[f64], p: f64) -> Result<Self> {
        if source.is_empty() || target.is_empty() {
            return Err(OtError::EmptyInput("cost matrix support"));
        }
        if p < 1.0 || !p.is_finite() {
            return Err(OtError::InvalidParameter {
                name: "p",
                reason: format!("must be >= 1 and finite, got {p}"),
            });
        }
        if source.iter().chain(target).any(|x| !x.is_finite()) {
            return Err(OtError::InvalidParameter {
                name: "support",
                reason: "contains non-finite points".into(),
            });
        }
        let mut data = Vec::with_capacity(source.len() * target.len());
        for &x in source {
            for &y in target {
                let d = (x - y).abs();
                data.push(if p == 2.0 { d * d } else { d.powf(p) });
            }
        }
        Ok(Self {
            rows: source.len(),
            cols: target.len(),
            data,
        })
    }

    /// Squared-Euclidean convenience constructor (`p = 2`).
    ///
    /// # Errors
    /// Same as [`CostMatrix::lp`].
    pub fn squared_euclidean(source: &[f64], target: &[f64]) -> Result<Self> {
        Self::lp(source, target, 2.0)
    }

    /// Build from an arbitrary pairwise cost function on d-dimensional
    /// points: `C[i][j] = cost(source[i], target[j])`.
    ///
    /// # Errors
    /// Requires non-empty point sets and finite, non-negative costs.
    pub fn from_fn<T>(
        source: &[T],
        target: &[T],
        mut cost: impl FnMut(&T, &T) -> f64,
    ) -> Result<Self> {
        if source.is_empty() || target.is_empty() {
            return Err(OtError::EmptyInput("cost matrix point set"));
        }
        let mut data = Vec::with_capacity(source.len() * target.len());
        for x in source {
            for y in target {
                let c = cost(x, y);
                if !c.is_finite() || c < 0.0 {
                    return Err(OtError::InvalidParameter {
                        name: "cost",
                        reason: format!("cost function returned {c}"),
                    });
                }
                data.push(c);
            }
        }
        Ok(Self {
            rows: source.len(),
            cols: target.len(),
            data,
        })
    }

    /// Number of source points.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target points.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of moving source `i` to target `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Largest entry (used by Sinkhorn's epsilon scaling).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_values() {
        let c = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 4.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 1), 1.0);
    }

    #[test]
    fn l1_cost() {
        let c = CostMatrix::lp(&[0.0], &[-3.0, 3.0], 1.0).unwrap();
        assert_eq!(c.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn rejects_invalid() {
        assert!(CostMatrix::lp(&[], &[1.0], 2.0).is_err());
        assert!(CostMatrix::lp(&[1.0], &[], 2.0).is_err());
        assert!(CostMatrix::lp(&[1.0], &[1.0], 0.5).is_err());
        assert!(CostMatrix::lp(&[f64::NAN], &[1.0], 2.0).is_err());
    }

    #[test]
    fn from_fn_2d_euclidean() {
        let a = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let b = vec![vec![1.0, 0.0]];
        let c = CostMatrix::from_fn(&a, &b, |x, y| {
            x.iter().zip(y).map(|(u, v)| (u - v) * (u - v)).sum()
        })
        .unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
    }

    #[test]
    fn from_fn_rejects_negative_cost() {
        let a = [1.0];
        assert!(CostMatrix::from_fn(&a, &a, |_, _| -1.0).is_err());
        assert!(CostMatrix::from_fn(&a, &a, |_, _| f64::NAN).is_err());
    }

    #[test]
    fn max_entry() {
        let c = CostMatrix::squared_euclidean(&[0.0, 10.0], &[0.0]).unwrap();
        assert_eq!(c.max(), 100.0);
    }
}
