//! Continuous interpolation of discrete distributions: the mass-midpoint
//! piecewise-linear CDF and its inverse.
//!
//! A discrete distribution on an ordered support is interpolated so that
//! atom `i`'s mass is centred on its own support point: the CDF passes
//! through `(x_i, c_{i-1} + p_i/2)` and is linear between consecutive
//! atoms (flat outside the hull). This convention is mean-preserving to
//! second order in the grid spacing and makes the quantile function the
//! exact inverse of the CDF — the pair of maps behind both the
//! 1-D Wasserstein geodesic (McCann interpolation) and the Monge
//! quantile-matching repair `x ↦ F_ν⁻¹(F_µ(x))`.

use serde::{Deserialize, Serialize};

use crate::discrete::DiscreteDistribution;

/// Mass-midpoint piecewise-linear interpolation of a discrete CDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MidpointCdf {
    support: Vec<f64>,
    /// Midpoint cumulative positions `m_i = cdf_i − p_i/2`, strictly
    /// non-decreasing with `0 < m_0` and `m_{n-1} < 1`.
    mids: Vec<f64>,
}

impl MidpointCdf {
    /// Build the interpolant for a discrete distribution.
    pub fn new(d: &DiscreteDistribution) -> Self {
        let cdf = d.cdf();
        let mids = cdf
            .iter()
            .zip(d.masses())
            .map(|(c, p)| c - 0.5 * p)
            .collect();
        Self {
            support: d.support().to_vec(),
            mids,
        }
    }

    /// The underlying support points.
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// Interpolated CDF `F(x) ∈ [m_0, m_{n-1}]` (clamped outside the
    /// support hull; degenerate one-point supports return their midpoint).
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.support.len();
        if x <= self.support[0] {
            return self.mids[0];
        }
        if x >= self.support[n - 1] {
            return self.mids[n - 1];
        }
        // Find i with support[i] <= x < support[i+1].
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.support[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.support[hi] - self.support[lo];
        if span <= 0.0 {
            return self.mids[lo];
        }
        let frac = (x - self.support[lo]) / span;
        self.mids[lo] + frac * (self.mids[hi] - self.mids[lo])
    }

    /// Interpolated quantile `F⁻¹(p)`, the exact inverse of
    /// [`MidpointCdf::cdf`] on the interior (flat extrapolation outside).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.mids.len();
        if p <= self.mids[0] {
            return self.support[0];
        }
        if p >= self.mids[n - 1] {
            return self.support[n - 1];
        }
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.mids[mid] <= p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span = self.mids[hi] - self.mids[lo];
        if span <= 0.0 {
            return self.support[lo];
        }
        let frac = ((p - self.mids[lo]) / span).clamp(0.0, 1.0);
        self.support[lo] + frac * (self.support[hi] - self.support[lo])
    }

    /// The Monge quantile-matching transport of `x` toward `target`:
    /// `T(x) = F_target⁻¹(F_self(x))` — the `nQ → ∞` limit of the
    /// Kantorovich plans of Algorithm 1 (Brenier/monotone rearrangement;
    /// paper Section VI).
    pub fn monge_to(&self, target: &MidpointCdf, x: f64) -> f64 {
        target.quantile(self.cdf(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd(support: &[f64], masses: &[f64]) -> DiscreteDistribution {
        DiscreteDistribution::new(support.to_vec(), masses.to_vec()).unwrap()
    }

    fn grid_gaussian(mean: f64, sd: f64, n: usize) -> DiscreteDistribution {
        let support: Vec<f64> = (0..n)
            .map(|i| mean - 4.0 * sd + 8.0 * sd * i as f64 / (n - 1) as f64)
            .collect();
        let masses: Vec<f64> = support
            .iter()
            .map(|&x| (-0.5 * ((x - mean) / sd).powi(2)).exp())
            .collect();
        DiscreteDistribution::new(support, masses).unwrap()
    }

    #[test]
    fn cdf_quantile_are_inverse_on_interior() {
        let d = dd(&[0.0, 1.0, 3.0, 4.5], &[0.1, 0.4, 0.3, 0.2]);
        let f = MidpointCdf::new(&d);
        // Interior of [m_0, m_last] = [0.05, 0.90] for these masses.
        for i in 0..=100 {
            let p = 0.06 + 0.83 * i as f64 / 100.0;
            let x = f.quantile(p);
            assert!((f.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let d = dd(&[-2.0, 0.0, 0.5, 7.0], &[0.25, 0.25, 0.25, 0.25]);
        let f = MidpointCdf::new(&d);
        let mut prev = -1.0;
        for i in 0..200 {
            let x = -3.0 + 11.0 * i as f64 / 199.0;
            let c = f.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn monge_between_identical_is_near_identity() {
        let d = grid_gaussian(0.0, 1.0, 101);
        let f = MidpointCdf::new(&d);
        for x in [-2.0, -0.5, 0.0, 1.3, 2.8] {
            let t = f.monge_to(&f, x);
            assert!((t - x).abs() < 0.05, "x = {x}, T(x) = {t}");
        }
    }

    #[test]
    fn monge_between_shifted_gaussians_is_shift() {
        let a = grid_gaussian(0.0, 1.0, 201);
        let b = grid_gaussian(2.0, 1.0, 201);
        let fa = MidpointCdf::new(&a);
        let fb = MidpointCdf::new(&b);
        for x in [-1.0, 0.0, 0.7, 1.5] {
            let t = fa.monge_to(&fb, x);
            assert!((t - (x + 2.0)).abs() < 0.05, "x = {x}, T(x) = {t}");
        }
    }

    #[test]
    fn monge_between_scaled_gaussians_is_affine() {
        // N(0,1) -> N(0,2): T(x) = 2x.
        let a = grid_gaussian(0.0, 1.0, 401);
        let b = grid_gaussian(0.0, 2.0, 401);
        let fa = MidpointCdf::new(&a);
        let fb = MidpointCdf::new(&b);
        for x in [-1.5, -0.5, 0.5, 1.5] {
            let t = fa.monge_to(&fb, x);
            assert!((t - 2.0 * x).abs() < 0.1, "x = {x}, T(x) = {t}");
        }
    }

    #[test]
    fn monge_is_monotone() {
        let a = dd(&[0.0, 1.0, 2.0, 5.0], &[0.4, 0.1, 0.3, 0.2]);
        let b = dd(&[-3.0, 0.0, 0.2, 0.9], &[0.2, 0.3, 0.1, 0.4]);
        let fa = MidpointCdf::new(&a);
        let fb = MidpointCdf::new(&b);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..100 {
            let x = -1.0 + 7.0 * i as f64 / 99.0;
            let t = fa.monge_to(&fb, x);
            assert!(t >= prev - 1e-12);
            prev = t;
        }
    }

    #[test]
    fn out_of_hull_clamps() {
        let d = dd(&[0.0, 1.0], &[0.5, 0.5]);
        let f = MidpointCdf::new(&d);
        assert_eq!(f.quantile(0.0), 0.0);
        assert_eq!(f.quantile(1.0), 1.0);
        assert_eq!(f.cdf(-10.0), f.cdf(0.0));
        assert_eq!(f.cdf(10.0), f.cdf(1.0));
    }

    #[test]
    fn serde_round_trip() {
        let d = dd(&[0.0, 2.0], &[0.3, 0.7]);
        let f = MidpointCdf::new(&d);
        let back: MidpointCdf = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
        assert_eq!(f, back);
    }
}
