//! Exact 1-D optimal transport via the monotone (north-west-corner)
//! coupling.
//!
//! For distributions on the real line and any cost `c(x, y) = h(x − y)`
//! with convex `h` (every `L_p^p`, `p ≥ 1`, in particular the paper's
//! squared Euclidean cost), the optimal Kantorovich plan is the *monotone*
//! coupling that pairs quantiles: sweep both supports in increasing order
//! and greedily match mass. This classical result (see Santambrogio,
//! *Optimal Transport for Applied Mathematicians*, §2.2) makes the
//! `O(n + m)` north-west-corner rule **exact** — not merely feasible — in
//! the 1-D case, which is precisely the setting of Algorithm 1 after the
//! paper's per-feature stratification.

use crate::coupling::OtPlan;
use crate::discrete::DiscreteDistribution;
use crate::error::Result;

/// Solve 1-D optimal transport between `mu` and `nu` for any convex
/// translation-invariant cost, returning the monotone coupling.
///
/// The returned plan has exactly `mu.masses()` / `nu.masses()` as its
/// marginals (up to round-off, with the final entries adjusted to absorb
/// accumulation error).
///
/// # Errors
/// Propagates construction failures; inputs are already validated by
/// [`DiscreteDistribution`].
pub fn solve_monotone_1d(mu: &DiscreteDistribution, nu: &DiscreteDistribution) -> Result<OtPlan> {
    let n = mu.len();
    let m = nu.len();
    let mut mass = vec![0.0f64; n * m];
    let mut a: Vec<f64> = mu.masses().to_vec();
    let mut b: Vec<f64> = nu.masses().to_vec();
    // Residual mass below this is treated as exhausted round-off.
    const TINY: f64 = 1e-15;

    let mut i = 0usize;
    let mut j = 0usize;
    while i < n && j < m {
        let moved = a[i].min(b[j]);
        mass[i * m + j] += moved;
        a[i] -= moved;
        b[j] -= moved;
        let a_done = a[i] <= TINY;
        let b_done = b[j] <= TINY;
        if a_done && b_done {
            // Advance both unless that would strand remaining mass: if one
            // side is at its last cell, only the other advances and the
            // follow-up iterations move the ~TINY residue.
            if i + 1 < n && j + 1 < m {
                // Fold the round-off residues into the next cells so the
                // marginals stay exact.
                if i + 1 < n {
                    a[i + 1] += a[i];
                }
                if j + 1 < m {
                    b[j + 1] += b[j];
                }
                i += 1;
                j += 1;
            } else if i + 1 < n {
                a[i + 1] += a[i];
                i += 1;
            } else if j + 1 < m {
                b[j + 1] += b[j];
                j += 1;
            } else {
                break;
            }
        } else if a_done {
            if i + 1 < n {
                a[i + 1] += a[i];
                i += 1;
            } else {
                // Sources exhausted: dump the target residue on this last row.
                mass[i * m + j] += b[j];
                j += 1;
            }
        } else if b_done {
            if j + 1 < m {
                b[j + 1] += b[j];
                j += 1;
            } else {
                // Targets exhausted: dump the source residue on this last column.
                mass[i * m + j] += a[i];
                i += 1;
            }
        }
    }
    // Any leftover round-off on either side lands in the far corner.
    while i < n {
        mass[i * m + (m - 1)] += a[i];
        i += 1;
    }
    while j < m {
        mass[(n - 1) * m + j] += b[j];
        j += 1;
    }

    let plan = OtPlan::from_dense(n, m, mass)?;
    // The greedy sweep conserves mass by construction; validate in debug
    // builds to catch regressions without taxing the hot path.
    debug_assert!(plan.validate_marginals(mu.masses(), nu.masses()).is_ok());
    Ok(plan)
}

/// Exact 1-D squared-`W₂` between two discrete distributions via the
/// monotone coupling (convenience wrapper used in tests and damage
/// metrics).
///
/// # Errors
/// Propagates solver failures.
pub fn monotone_w2_squared(mu: &DiscreteDistribution, nu: &DiscreteDistribution) -> Result<f64> {
    let plan = solve_monotone_1d(mu, nu)?;
    let cost = crate::cost::CostMatrix::squared_euclidean(mu.support(), nu.support())?;
    plan.transport_cost(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd(support: &[f64], masses: &[f64]) -> DiscreteDistribution {
        DiscreteDistribution::new(support.to_vec(), masses.to_vec()).unwrap()
    }

    #[test]
    fn identical_distributions_diagonal_plan() {
        let mu = dd(&[0.0, 1.0, 2.0], &[0.3, 0.4, 0.3]);
        let plan = solve_monotone_1d(&mu, &mu).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { mu.masses()[i] } else { 0.0 };
                assert!((plan.get(i, j) - want).abs() < 1e-12, "({i},{j})");
            }
        }
        assert!(monotone_w2_squared(&mu, &mu).unwrap() < 1e-15);
    }

    #[test]
    fn point_mass_to_point_mass() {
        let mu = dd(&[0.0], &[1.0]);
        let nu = dd(&[3.0], &[1.0]);
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        assert!((plan.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((monotone_w2_squared(&mu, &nu).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn translation_cost_is_square_of_shift() {
        // W2(mu, mu + c)^2 = c^2 for any distribution.
        let mu = dd(&[0.0, 1.0, 2.5], &[0.5, 0.25, 0.25]);
        let nu = dd(&[2.0, 3.0, 4.5], &[0.5, 0.25, 0.25]);
        assert!((monotone_w2_squared(&mu, &nu).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mass_split_when_supports_differ() {
        // mu: all mass at 0. nu: half at -1, half at +1.
        let mu = dd(&[0.0], &[1.0]);
        let nu = dd(&[-1.0, 1.0], &[0.5, 0.5]);
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        assert!((plan.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((plan.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((monotone_w2_squared(&mu, &nu).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_always_validate() {
        let mu = dd(&[0.0, 0.5, 1.0, 2.0], &[0.1, 0.2, 0.3, 0.4]);
        let nu = dd(&[-1.0, 0.25, 3.0], &[0.6, 0.1, 0.3]);
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        plan.validate_marginals(mu.masses(), nu.masses()).unwrap();
    }

    #[test]
    fn monotone_structure_no_crossings() {
        // If pi[i][j] > 0 and pi[i'][j'] > 0 with i < i', then j <= j'.
        let mu = dd(&[0.0, 1.0, 2.0, 3.0], &[0.25; 4]);
        let nu = dd(&[0.5, 1.5, 2.5], &[0.5, 0.25, 0.25]);
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        let mut max_j_so_far = 0usize;
        for i in 0..plan.rows() {
            let mut min_j = None;
            for j in 0..plan.cols() {
                if plan.get(i, j) > 1e-12 {
                    min_j.get_or_insert(j);
                    max_j_so_far = max_j_so_far.max(j);
                }
            }
            if let Some(mj) = min_j {
                assert!(
                    mj + 1 > max_j_so_far || mj >= max_j_so_far.saturating_sub(0),
                    "crossing at row {i}"
                );
            }
        }
    }

    #[test]
    fn uniform_grids_shift_by_one_cell() {
        // Uniform on {0..4} to uniform on {1..5}: monotone plan moves each
        // cell to its shifted twin; W2^2 = 1.
        let mu = dd(&[0.0, 1.0, 2.0, 3.0, 4.0], &[0.2; 5]);
        let nu = dd(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.2; 5]);
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        for i in 0..5 {
            assert!((plan.get(i, i) - 0.2).abs() < 1e-12);
        }
        assert!((monotone_w2_squared(&mu, &nu).unwrap() - 1.0).abs() < 1e-12);
    }
}
