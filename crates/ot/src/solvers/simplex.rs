//! Exact optimal transport for arbitrary cost matrices: the classical
//! transportation-simplex with MODI (u–v potential) pricing.
//!
//! This is the `O(nQ³ log nQ)`-class exact solver the paper cites for
//! unregularized OT (Section IV-A1, refs \[13\], \[32\]). In this workspace it
//! serves as (i) the ground-truth oracle against which the 1-D monotone
//! solver and Sinkhorn are property-tested, and (ii) the solver for
//! multi-dimensional cost structures where the monotone shortcut does not
//! apply (e.g. the joint-feature ablation).
//!
//! Implementation notes:
//! * The basis is maintained as a spanning tree of the bipartite
//!   row/column graph (`n + m − 1` cells, including degenerate zero-flow
//!   cells), initialized by the north-west-corner rule.
//! * Potentials are recomputed each iteration by a BFS over the basis
//!   tree; the entering cell is the most negative reduced cost (Dantzig
//!   pricing with first-index tie-breaking).
//! * The pivot cycle is the unique tree path between the entering cell's
//!   row and column nodes.

use crate::cost::CostMatrix;
use crate::coupling::OtPlan;
use crate::error::{OtError, Result};

/// Reduced-cost optimality tolerance, scaled by the largest cost entry.
const OPT_TOL: f64 = 1e-10;

/// Solve the transportation problem
/// `min Σ C[i][j] π[i][j]` s.t. row sums `= a`, column sums `= b`,
/// `π ≥ 0`, for arbitrary non-negative cost `C`.
///
/// `a` and `b` must be non-negative with equal totals (they are normalized
/// internally, so probability vectors are the expected input).
///
/// # Errors
/// * Validation errors for empty/mismatched/invalid inputs.
/// * [`OtError::NoConvergence`] if the pivot budget is exhausted (cycling
///   on a pathological degenerate instance).
pub fn solve_transportation_simplex(a: &[f64], b: &[f64], cost: &CostMatrix) -> Result<OtPlan> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Err(OtError::EmptyInput("transportation marginals"));
    }
    if cost.rows() != n || cost.cols() != m {
        return Err(OtError::LengthMismatch {
            what: "marginals vs cost matrix",
            left: n * m,
            right: cost.rows() * cost.cols(),
        });
    }
    let normalize = |v: &[f64], name: &str| -> Result<Vec<f64>> {
        let mut total = 0.0;
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 || x.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "{name}[{i}] = {x} is negative or NaN"
                )));
            }
            total += x;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("{name} total {total}")));
        }
        Ok(v.iter().map(|x| x / total).collect())
    };
    let mut a = normalize(a, "a")?;
    let mut b = normalize(b, "b")?;

    // --- Phase 0: north-west-corner initial basic feasible solution with
    // exactly n + m − 1 basis cells (degenerate zeros included).
    let mut flow = vec![0.0f64; n * m];
    let mut in_basis = vec![false; n * m];
    // Bipartite adjacency: node k in 0..n are rows, n..n+m are columns.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n + m];

    let add_basis = |cell: usize, in_basis: &mut Vec<bool>, adj: &mut Vec<Vec<(usize, usize)>>| {
        let (i, j) = (cell / m, cell % m);
        in_basis[cell] = true;
        adj[i].push((n + j, cell));
        adj[n + j].push((i, cell));
    };

    {
        let (mut i, mut j) = (0usize, 0usize);
        for step in 0..(n + m - 1) {
            let cell = i * m + j;
            let moved = if step == n + m - 2 {
                // Final cell absorbs accumulated round-off.
                a[i].max(b[j])
            } else {
                a[i].min(b[j])
            };
            flow[cell] = moved;
            add_basis(cell, &mut in_basis, &mut adj);
            a[i] -= moved;
            b[j] -= moved;
            // Advance exactly one index per step so the walk visits
            // n + m − 1 cells: forced along the last row/column, otherwise
            // toward the side with less remaining mass.
            if i == n - 1 || (j != m - 1 && a[i] > b[j]) {
                j += 1;
            } else {
                i += 1;
            }
            if i >= n || j >= m {
                break;
            }
        }
    }

    let tol = OPT_TOL * cost.max().max(1.0);
    let max_pivots = 50 * (n + m) * (n + m) + 1000;

    let mut u = vec![0.0f64; n];
    let mut v = vec![0.0f64; m];
    let mut seen = vec![false; n + m];
    let mut queue: Vec<usize> = Vec::with_capacity(n + m);
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n + m];

    for _pivot in 0..max_pivots {
        // --- MODI potentials via BFS over the basis tree.
        seen.iter_mut().for_each(|s| *s = false);
        queue.clear();
        queue.push(0);
        seen[0] = true;
        u[0] = 0.0;
        let mut head = 0;
        while head < queue.len() {
            let node = queue[head];
            head += 1;
            for &(next, cell) in &adj[node] {
                if seen[next] {
                    continue;
                }
                seen[next] = true;
                let (i, j) = (cell / m, cell % m);
                if next >= n {
                    v[next - n] = cost.get(i, j) - u[i];
                } else {
                    u[next] = cost.get(i, j) - v[j];
                }
                queue.push(next);
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(OtError::SolverInternal(
                "basis graph is not connected (lost tree invariant)".into(),
            ));
        }

        // --- Pricing: most negative reduced cost among non-basis cells.
        let mut best_cell = None;
        let mut best_red = -tol;
        for i in 0..n {
            let ui = u[i];
            for j in 0..m {
                let cell = i * m + j;
                if in_basis[cell] {
                    continue;
                }
                let red = cost.get(i, j) - ui - v[j];
                if red < best_red {
                    best_red = red;
                    best_cell = Some(cell);
                }
            }
        }
        let Some(entering) = best_cell else {
            // Optimal.
            let plan = OtPlan::from_dense(n, m, flow.clone())?;
            return Ok(plan);
        };
        let (ei, ej) = (entering / m, entering % m);

        // --- Cycle: tree path from row node ei to column node n + ej.
        parent.iter_mut().for_each(|p| *p = None);
        seen.iter_mut().for_each(|s| *s = false);
        queue.clear();
        queue.push(ei);
        seen[ei] = true;
        let target = n + ej;
        let mut head = 0;
        while head < queue.len() && !seen[target] {
            let node = queue[head];
            head += 1;
            for &(next, cell) in &adj[node] {
                if seen[next] {
                    continue;
                }
                seen[next] = true;
                parent[next] = Some((node, cell));
                queue.push(next);
            }
        }
        if !seen[target] {
            return Err(OtError::SolverInternal(
                "entering cell's endpoints are disconnected in the basis tree".into(),
            ));
        }
        // Walk back from the column node to the row node collecting cells.
        let mut path_cells: Vec<usize> = Vec::new();
        let mut node = target;
        while node != ei {
            let (prev, cell) = parent[node].expect("path exists");
            path_cells.push(cell);
            node = prev;
        }
        // Cycle = entering (+) followed by path cells with alternating
        // signs. path_cells is ordered column-end first; the cell adjacent
        // to the target column node shares column ej with the entering
        // cell, so it takes sign −, the next +, etc.
        let mut theta = f64::INFINITY;
        let mut leaving = None;
        for (k, &cell) in path_cells.iter().enumerate() {
            if k % 2 == 0 {
                // minus position
                if flow[cell] < theta {
                    theta = flow[cell];
                    leaving = Some(cell);
                }
            }
        }
        let Some(leaving) = leaving else {
            return Err(OtError::SolverInternal(
                "cycle had no minus positions".into(),
            ));
        };

        // --- Pivot.
        flow[entering] += theta;
        for (k, &cell) in path_cells.iter().enumerate() {
            if k % 2 == 0 {
                flow[cell] -= theta;
            } else {
                flow[cell] += theta;
            }
        }
        flow[leaving] = 0.0; // exact, avoids negative round-off residue
        in_basis[leaving] = false;
        in_basis[entering] = true;
        // Update adjacency: remove leaving edge, add entering edge.
        let (li, lj) = (leaving / m, leaving % m);
        adj[li].retain(|&(_, c)| c != leaving);
        adj[n + lj].retain(|&(_, c)| c != leaving);
        adj[ei].push((n + ej, entering));
        adj[n + ej].push((ei, entering));
    }

    Err(OtError::NoConvergence {
        solver: "transportation simplex",
        iterations: max_pivots,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteDistribution;
    use crate::solvers::monotone::solve_monotone_1d;

    #[test]
    fn trivial_1x1() {
        let c = CostMatrix::squared_euclidean(&[0.0], &[5.0]).unwrap();
        let plan = solve_transportation_simplex(&[1.0], &[1.0], &c).unwrap();
        assert!((plan.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classic_textbook_instance() {
        // 3 sources x 4 sinks; optimum 920 for the raw supplies/demands
        // (probabilities scale the optimal cost by 1/150).
        let costs = vec![
            4.0, 6.0, 8.0, 8.0, //
            6.0, 8.0, 6.0, 7.0, //
            5.0, 7.0, 6.0, 8.0,
        ];
        let cost =
            CostMatrix::from_fn(&[0, 1, 2], &[0, 1, 2, 3], |&i, &j| costs[i * 4 + j]).unwrap();
        let a = [40.0, 60.0, 50.0];
        let b = [20.0, 30.0, 50.0, 50.0];
        let plan = solve_transportation_simplex(&a, &b, &cost).unwrap();
        let total: f64 = a.iter().sum();
        let got = plan.transport_cost(&cost).unwrap() * total;
        // Optimum computed independently (e.g. by hand or scipy): 920.
        assert!((got - 920.0).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn marginals_respected() {
        let c = CostMatrix::squared_euclidean(&[0.0, 1.0, 2.0], &[0.5, 1.5]).unwrap();
        let a = [0.2, 0.5, 0.3];
        let b = [0.6, 0.4];
        let plan = solve_transportation_simplex(&a, &b, &c).unwrap();
        plan.validate_marginals(&a, &b).unwrap();
    }

    #[test]
    fn agrees_with_monotone_solver_1d() {
        // On 1-D convex costs the monotone coupling is optimal; the simplex
        // must find the same optimal cost.
        let mu = DiscreteDistribution::new(
            vec![-2.0, -0.5, 0.7, 1.3, 4.0],
            vec![0.1, 0.3, 0.2, 0.25, 0.15],
        )
        .unwrap();
        let nu =
            DiscreteDistribution::new(vec![-1.0, 0.0, 2.0, 3.0], vec![0.3, 0.3, 0.2, 0.2]).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let mono = solve_monotone_1d(&mu, &nu).unwrap();
        let simp = solve_transportation_simplex(mu.masses(), nu.masses(), &cost).unwrap();
        let cm = mono.transport_cost(&cost).unwrap();
        let cs = simp.transport_cost(&cost).unwrap();
        assert!((cm - cs).abs() < 1e-9, "monotone {cm} vs simplex {cs}");
    }

    #[test]
    fn degenerate_marginals_with_zeros() {
        let c = CostMatrix::squared_euclidean(&[0.0, 1.0, 2.0], &[0.0, 2.0]).unwrap();
        let a = [0.5, 0.0, 0.5];
        let b = [0.5, 0.5];
        let plan = solve_transportation_simplex(&a, &b, &c).unwrap();
        plan.validate_marginals(&a, &b).unwrap();
        // Optimal: 0 -> 0 and 2 -> 2, zero cost.
        assert!(plan.transport_cost(&c).unwrap() < 1e-10);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let c = CostMatrix::squared_euclidean(&[0.0], &[0.0]).unwrap();
        assert!(solve_transportation_simplex(&[], &[1.0], &c).is_err());
        assert!(solve_transportation_simplex(&[1.0], &[-1.0, 2.0], &c).is_err());
        assert!(solve_transportation_simplex(&[1.0, 1.0], &[1.0], &c).is_err());
        assert!(solve_transportation_simplex(&[0.0], &[1.0], &c).is_err());
    }

    #[test]
    fn anti_monotone_cost_reverses_matching() {
        // Cost rewarding crossings: c(i,j) = -(i*j) shifted positive. The
        // optimal plan pairs low with high.
        let cost = CostMatrix::from_fn(&[0.0, 1.0], &[0.0, 1.0], |x, y| 1.0 - x * y).unwrap();
        let plan = solve_transportation_simplex(&[0.5, 0.5], &[0.5, 0.5], &cost).unwrap();
        // Diagonal (1,1) carries mass to exploit the -xy term.
        assert!(plan.get(1, 1) > 0.49);
    }
}
