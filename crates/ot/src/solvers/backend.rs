//! The unified solver seam: one type that owns backend selection,
//! epsilon handling, and failure-fallback policy for every OT solve in
//! the workspace.
//!
//! Downstream crates (`otr-core`'s planners, the CLI's `--solver` flag,
//! the bench ablations) never match on solver variants: they hold a
//! [`SolverBackend`] and call [`Solver1d::solve_1d`] /
//! [`Solver1d::solve_with_cost`]. Adding a backend (a parallel design, a
//! new regularizer) means adding a variant *here* and nowhere else.
//!
//! Policy centralized here:
//! * **Backend selection** — the `match` over variants lives only in this
//!   module.
//! * **Epsilon handling** — Sinkhorn's regularization strength is carried
//!   by the variant and validated by [`SolverBackend::validate`].
//! * **Sinkhorn fallback** — a pathologically small `ε` on a wide support
//!   may exhaust the iteration budget; the exact transportation simplex
//!   is the documented fallback (same optimum, no regularization). That
//!   policy used to be inlined in `otr-core`'s per-feature planner and
//!   silently absent from the joint planner; it now applies uniformly.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::cost::CostMatrix;
use crate::coupling::OtPlan;
use crate::discrete::DiscreteDistribution;
use crate::error::{OtError, Result};
use crate::kernel::KernelChoice;
use crate::solvers::monotone::solve_monotone_1d;
use crate::solvers::simplex::solve_transportation_simplex;
use crate::solvers::sinkhorn::{sinkhorn_warm, EpsSchedule, SinkhornConfig, SinkhornDuals};

/// Which OT solver designs coupling plans.
///
/// Serialized with serde's external tagging (`"ExactMonotone"`,
/// `{"Sinkhorn":{"epsilon":0.05}}`), so persisted repair plans record the
/// backend that designed them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum SolverBackend {
    /// Exact 1-D monotone coupling (north-west-corner on sorted supports)
    /// — optimal for convex translation-invariant costs, `O(n + m)` per
    /// plan; the Algorithm 1 hot path. Requires 1-D geometry: it cannot
    /// serve [`Solver1d::solve_with_cost`] on arbitrary cost matrices.
    #[default]
    ExactMonotone,
    /// Exact transportation simplex (MODI) — any cost matrix, any
    /// dimension, `O(n³ log n)`-class. Ground truth and the fallback
    /// target for a non-converging Sinkhorn.
    Simplex,
    /// Entropic Sinkhorn–Knopp with the given regularization `ε` — the
    /// `O(n²/ε²)` alternative of Section IV-A1; plans are blurred by the
    /// entropy term, which the randomization of Algorithm 2 inherits.
    Sinkhorn {
        /// Regularization strength (in squared-feature units).
        epsilon: f64,
        /// Optional ε-annealing schedule with warm-started duals,
        /// ending at `epsilon` (see [`EpsSchedule`]). Absent in plan
        /// JSON written before the schedule existed, so it defaults to
        /// `None` on deserialization.
        #[serde(default)]
        eps_scaling: Option<EpsSchedule>,
    },
}

impl SolverBackend {
    /// Entropic Sinkhorn backend at the given `ε`, no annealing — the
    /// common spelling (the struct variant exists for serde and for the
    /// scheduled form).
    pub fn sinkhorn(epsilon: f64) -> Self {
        SolverBackend::Sinkhorn {
            epsilon,
            eps_scaling: None,
        }
    }

    /// Entropic Sinkhorn backend annealed along `schedule` down to
    /// `epsilon` ([`SolverBackend::sinkhorn`] with warm-started
    /// ε-scaling).
    pub fn sinkhorn_scaled(epsilon: f64, schedule: EpsSchedule) -> Self {
        SolverBackend::Sinkhorn {
            epsilon,
            eps_scaling: Some(schedule),
        }
    }

    /// Validate the backend's parameters (currently: Sinkhorn's `ε` must
    /// be positive and finite, and its optional ε-schedule well-formed).
    ///
    /// # Errors
    /// [`OtError::InvalidParameter`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if let SolverBackend::Sinkhorn {
            epsilon,
            eps_scaling,
        } = self
        {
            if !(*epsilon > 0.0) || !epsilon.is_finite() {
                return Err(OtError::InvalidParameter {
                    name: "solver.epsilon",
                    reason: format!("must be positive and finite, got {epsilon}"),
                });
            }
            if let Some(schedule) = eps_scaling {
                schedule.validate()?;
            }
        }
        Ok(())
    }
}

/// Largest plan size (rows × cols) the Sinkhorn failure path will hand
/// to the exact simplex. Covers every 1-D design the workspace runs
/// (`n_q ≤ 512`) while keeping huge product-support problems from
/// silently entering an `O(n³)`-class rescue.
pub const SIMPLEX_FALLBACK_MAX_CELLS: usize = 512 * 512;

/// The one interface through which every layer of the workspace solves
/// optimal transport. Object-safe, so callers may also hold
/// `&dyn Solver1d`.
pub trait Solver1d {
    /// Short diagnostic name of the backend.
    fn name(&self) -> &'static str;

    /// Solve 1-D OT between two distributions on ordered supports under
    /// squared-Euclidean cost (the Algorithm 1 setting).
    ///
    /// # Errors
    /// Propagates validation failures. Up to
    /// [`SIMPLEX_FALLBACK_MAX_CELLS`] the entropic backend does not fail
    /// for non-convergence — it falls back to the exact simplex (which
    /// can itself report [`OtError::NoConvergence`] on pathologically
    /// degenerate instances that exhaust its pivot budget).
    fn solve_1d(&self, mu: &DiscreteDistribution, nu: &DiscreteDistribution) -> Result<OtPlan>;

    /// Solve OT between two mass vectors under an explicit cost matrix
    /// (the joint/2-D setting, or any non-Euclidean geometry).
    ///
    /// # Errors
    /// [`OtError::InvalidParameter`] for backends that require 1-D
    /// structure ([`SolverBackend::ExactMonotone`]); otherwise as
    /// [`Solver1d::solve_1d`].
    fn solve_with_cost(&self, mu: &[f64], nu: &[f64], cost: &CostMatrix) -> Result<OtPlan>;

    /// [`Solver1d::solve_1d`] with an explicit worker-thread request for
    /// the backend's in-kernel parallelism (`0` = auto). The plan's
    /// bytes never depend on `threads` — only wall-clock time does —
    /// and backends without parallel kernels ignore it, which is the
    /// default implementation.
    ///
    /// # Errors
    /// As [`Solver1d::solve_1d`].
    fn solve_1d_threads(
        &self,
        mu: &DiscreteDistribution,
        nu: &DiscreteDistribution,
        threads: usize,
    ) -> Result<OtPlan> {
        let _ = threads;
        self.solve_1d(mu, nu)
    }

    /// [`Solver1d::solve_with_cost`] with an explicit worker-thread
    /// request (`0` = auto); same bytes-invariance contract as
    /// [`Solver1d::solve_1d_threads`].
    ///
    /// # Errors
    /// As [`Solver1d::solve_with_cost`].
    fn solve_with_cost_threads(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
    ) -> Result<OtPlan> {
        let _ = threads;
        self.solve_with_cost(mu, nu, cost)
    }

    /// [`Solver1d::solve_with_cost_threads`] with an explicit
    /// Gibbs-kernel representation preference for entropic backends on
    /// grid-separable costs (see [`KernelChoice`]). Backends without an
    /// entropic kernel ignore the preference, which is the default
    /// implementation; an unavailable preference degrades to dense,
    /// never errors.
    ///
    /// # Errors
    /// As [`Solver1d::solve_with_cost`].
    fn solve_with_cost_kernel(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
        kernel: KernelChoice,
    ) -> Result<OtPlan> {
        let _ = kernel;
        self.solve_with_cost_threads(mu, nu, cost, threads)
    }

    /// [`Solver1d::solve_with_cost_kernel`], additionally accepting and
    /// returning entropic dual potentials for warm-started re-solves.
    ///
    /// Entropic backends seed their iteration from `warm` when the
    /// potentials match the problem shape (a mismatch degrades to a cold
    /// solve — never an error, so callers may pass duals recorded under
    /// a different grid resolution) and return the converged duals of
    /// the plan they produce. A caller-provided warm start **replaces**
    /// any configured ε-schedule: the schedule exists only to warm the
    /// duals, which the caller has already done, so the solve runs
    /// directly at the final ε. Exact backends ignore `warm` and return
    /// `None` duals, which is the default implementation.
    ///
    /// # Errors
    /// As [`Solver1d::solve_with_cost`].
    fn solve_with_cost_warm(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
        kernel: KernelChoice,
        warm: Option<&SinkhornDuals>,
    ) -> Result<(OtPlan, Option<SinkhornDuals>)> {
        let _ = warm;
        Ok((
            self.solve_with_cost_kernel(mu, nu, cost, threads, kernel)?,
            None,
        ))
    }

    /// [`Solver1d::solve_1d_threads`] with the warm-dual contract of
    /// [`Solver1d::solve_with_cost_warm`].
    ///
    /// # Errors
    /// As [`Solver1d::solve_1d`].
    fn solve_1d_warm(
        &self,
        mu: &DiscreteDistribution,
        nu: &DiscreteDistribution,
        threads: usize,
        warm: Option<&SinkhornDuals>,
    ) -> Result<(OtPlan, Option<SinkhornDuals>)> {
        let _ = warm;
        Ok((self.solve_1d_threads(mu, nu, threads)?, None))
    }
}

impl Solver1d for SolverBackend {
    fn name(&self) -> &'static str {
        match self {
            SolverBackend::ExactMonotone => "exact-monotone",
            SolverBackend::Simplex => "simplex",
            SolverBackend::Sinkhorn { .. } => "sinkhorn",
        }
    }

    fn solve_1d(&self, mu: &DiscreteDistribution, nu: &DiscreteDistribution) -> Result<OtPlan> {
        self.solve_1d_threads(mu, nu, 0)
    }

    fn solve_with_cost(&self, mu: &[f64], nu: &[f64], cost: &CostMatrix) -> Result<OtPlan> {
        self.solve_with_cost_threads(mu, nu, cost, 0)
    }

    fn solve_1d_threads(
        &self,
        mu: &DiscreteDistribution,
        nu: &DiscreteDistribution,
        threads: usize,
    ) -> Result<OtPlan> {
        self.validate()?;
        match self {
            SolverBackend::ExactMonotone => solve_monotone_1d(mu, nu),
            SolverBackend::Simplex | SolverBackend::Sinkhorn { .. } => {
                let cost = CostMatrix::squared_euclidean(mu.support(), nu.support())?;
                self.solve_with_cost_threads(mu.masses(), nu.masses(), &cost, threads)
            }
        }
    }

    fn solve_with_cost_threads(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
    ) -> Result<OtPlan> {
        self.solve_with_cost_kernel(mu, nu, cost, threads, KernelChoice::Auto)
    }

    fn solve_with_cost_kernel(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
        kernel: KernelChoice,
    ) -> Result<OtPlan> {
        self.solve_with_cost_warm(mu, nu, cost, threads, kernel, None)
            .map(|(plan, _)| plan)
    }

    fn solve_with_cost_warm(
        &self,
        mu: &[f64],
        nu: &[f64],
        cost: &CostMatrix,
        threads: usize,
        kernel: KernelChoice,
        warm: Option<&SinkhornDuals>,
    ) -> Result<(OtPlan, Option<SinkhornDuals>)> {
        self.validate()?;
        match self {
            SolverBackend::ExactMonotone => Err(OtError::InvalidParameter {
                name: "solver",
                reason: "the exact monotone backend requires 1-D ordered supports; \
                         use `Simplex` or `Sinkhorn` for general cost matrices"
                    .into(),
            }),
            SolverBackend::Simplex => Ok((solve_transportation_simplex(mu, nu, cost)?, None)),
            SolverBackend::Sinkhorn {
                epsilon,
                eps_scaling,
            } => {
                // A shape-compatible warm start replaces the ε-schedule
                // (the schedule's only job is warming the duals); a
                // mismatch — duals recorded under a different grid —
                // degrades to the configured cold solve.
                let warm = warm.filter(|d| d.f.len() == mu.len() && d.g.len() == nu.len());
                let config = SinkhornConfig {
                    threads,
                    eps_scaling: if warm.is_some() { None } else { *eps_scaling },
                    kernel,
                    ..SinkhornConfig::with_epsilon(*epsilon)
                };
                match sinkhorn_warm(mu, nu, cost, config, warm) {
                    Ok((plan, duals)) => Ok((plan, Some(duals))),
                    // The single home of the Sinkhorn-failure policy: fall
                    // back to the exact simplex rather than surfacing a
                    // convergence error for a solvable problem — but only
                    // where the simplex is affordable. Beyond the cell cap
                    // (joint/product supports can reach n_q⁴ cells) an
                    // O(n³)-class rescue would hang for hours, so the
                    // convergence error surfaces instead.
                    Err(OtError::NoConvergence { .. })
                        if mu.len() * nu.len() <= SIMPLEX_FALLBACK_MAX_CELLS =>
                    {
                        Ok((solve_transportation_simplex(mu, nu, cost)?, None))
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn solve_1d_warm(
        &self,
        mu: &DiscreteDistribution,
        nu: &DiscreteDistribution,
        threads: usize,
        warm: Option<&SinkhornDuals>,
    ) -> Result<(OtPlan, Option<SinkhornDuals>)> {
        self.validate()?;
        match self {
            SolverBackend::ExactMonotone => Ok((solve_monotone_1d(mu, nu)?, None)),
            SolverBackend::Simplex | SolverBackend::Sinkhorn { .. } => {
                let cost = CostMatrix::squared_euclidean(mu.support(), nu.support())?;
                self.solve_with_cost_warm(
                    mu.masses(),
                    nu.masses(),
                    &cost,
                    threads,
                    KernelChoice::Auto,
                    warm,
                )
            }
        }
    }
}

impl fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverBackend::ExactMonotone => write!(f, "exact"),
            SolverBackend::Simplex => write!(f, "simplex"),
            SolverBackend::Sinkhorn {
                epsilon,
                eps_scaling: None,
            } => write!(f, "sinkhorn:{epsilon}"),
            SolverBackend::Sinkhorn {
                epsilon,
                eps_scaling: Some(s),
            } => {
                // The CLI spelling covers eps0/factor; stage budgets
                // keep their defaults on a round trip.
                if *s == EpsSchedule::default() {
                    write!(f, "sinkhorn:{epsilon}:scaled")
                } else {
                    write!(f, "sinkhorn:{epsilon}:scaled:{}:{}", s.eps0, s.factor)
                }
            }
        }
    }
}

impl FromStr for SolverBackend {
    type Err = OtError;

    /// Parse the CLI spelling: `exact` (or `monotone`), `simplex`,
    /// `sinkhorn:<eps>`, or the ε-scaled forms
    /// `sinkhorn:<eps>:scaled` (default schedule) and
    /// `sinkhorn:<eps>:scaled:<eps0>:<factor>`.
    fn from_str(s: &str) -> Result<Self> {
        let parse_f64 = |what: &str, v: &str| -> Result<f64> {
            v.parse::<f64>().map_err(|_| OtError::InvalidParameter {
                name: "solver",
                reason: format!("cannot parse Sinkhorn {what} from `{v}`"),
            })
        };
        let backend = match s {
            "exact" | "monotone" => SolverBackend::ExactMonotone,
            "simplex" => SolverBackend::Simplex,
            _ => match s.strip_prefix("sinkhorn:") {
                Some(rest) => {
                    let mut parts = rest.split(':');
                    let epsilon = parse_f64("epsilon", parts.next().unwrap_or(""))?;
                    let eps_scaling = match parts.next() {
                        None => None,
                        Some("scaled") => {
                            let tail: Vec<&str> = parts.collect();
                            match tail.as_slice() {
                                [] => Some(EpsSchedule::default()),
                                [eps0, factor] => Some(EpsSchedule::geometric(
                                    parse_f64("eps0", eps0)?,
                                    parse_f64("factor", factor)?,
                                )),
                                _ => {
                                    return Err(OtError::InvalidParameter {
                                        name: "solver",
                                        reason: format!(
                                            "expected `sinkhorn:<eps>:scaled` or \
                                             `sinkhorn:<eps>:scaled:<eps0>:<factor>`, got `{s}`"
                                        ),
                                    })
                                }
                            }
                        }
                        Some(other) => {
                            return Err(OtError::InvalidParameter {
                                name: "solver",
                                reason: format!(
                                    "unknown Sinkhorn option `{other}` (expected `scaled`)"
                                ),
                            })
                        }
                    };
                    SolverBackend::Sinkhorn {
                        epsilon,
                        eps_scaling,
                    }
                }
                None => {
                    return Err(OtError::InvalidParameter {
                        name: "solver",
                        reason: format!(
                            "unknown solver `{s}` (expected `exact`, `simplex`, \
                             `sinkhorn:<eps>`, or `sinkhorn:<eps>:scaled[:<eps0>:<factor>]`)"
                        ),
                    })
                }
            },
        };
        backend.validate()?;
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd(support: &[f64], masses: &[f64]) -> DiscreteDistribution {
        DiscreteDistribution::new(support.to_vec(), masses.to_vec()).unwrap()
    }

    fn all_backends() -> [SolverBackend; 3] {
        [
            SolverBackend::ExactMonotone,
            SolverBackend::Simplex,
            SolverBackend::sinkhorn(0.05),
        ]
    }

    #[test]
    fn all_backends_produce_valid_couplings_via_unified_interface() {
        let mu = dd(&[-1.0, 0.0, 1.0, 2.0], &[0.1, 0.4, 0.3, 0.2]);
        let nu = dd(&[-0.5, 0.5, 1.5], &[0.3, 0.4, 0.3]);
        for backend in all_backends() {
            let plan = backend.solve_1d(&mu, &nu).unwrap();
            plan.validate_marginals(mu.masses(), nu.masses())
                .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
        }
    }

    #[test]
    fn exact_backends_agree_on_transport_cost() {
        let mu = dd(&[0.0, 1.0, 2.0, 3.5], &[0.25, 0.25, 0.25, 0.25]);
        let nu = dd(&[0.5, 2.5, 4.0], &[0.5, 0.3, 0.2]);
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let mono = SolverBackend::ExactMonotone
            .solve_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();
        let simp = SolverBackend::Simplex
            .solve_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();
        assert!(
            (mono - simp).abs() < 1e-9 * (1.0 + mono),
            "{mono} vs {simp}"
        );
        // Entropic cost upper-bounds the exact optimum and converges to it.
        let entropic = SolverBackend::sinkhorn(0.01)
            .solve_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();
        assert!(entropic >= mono - 1e-9);
        assert!((entropic - mono).abs() < 0.05, "{entropic} vs {mono}");
    }

    #[test]
    fn sinkhorn_no_convergence_falls_back_to_simplex() {
        // eps = 1e-12 over a cost range of ~36 cannot converge in the
        // default iteration budget; the unified seam must silently hand
        // the problem to the exact simplex and return its optimum.
        let mu = dd(&[0.0, 3.0, 6.0], &[0.5, 0.25, 0.25]);
        let nu = dd(&[1.0, 4.0], &[0.6, 0.4]);
        let backend = SolverBackend::sinkhorn(1e-12);
        let plan = backend.solve_1d(&mu, &nu).unwrap();
        plan.validate_marginals(mu.masses(), nu.masses()).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let exact = SolverBackend::ExactMonotone
            .solve_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();
        let got = plan.transport_cost(&cost).unwrap();
        assert!(
            (got - exact).abs() < 1e-9 * (1.0 + exact),
            "fallback must hit the exact optimum: {got} vs {exact}"
        );
    }

    #[test]
    fn general_cost_matrices_dispatch_correctly() {
        // A 2-D-style problem: cost has no 1-D structure.
        let mu = [0.5, 0.5];
        let nu = [0.25, 0.75];
        let cost =
            CostMatrix::from_fn(&[0, 1], &[0, 1], |a, b| if a == b { 0.0 } else { 2.0 }).unwrap();
        for backend in [SolverBackend::Simplex, SolverBackend::sinkhorn(0.1)] {
            let plan = backend.solve_with_cost(&mu, &nu, &cost).unwrap();
            plan.validate_marginals(&mu, &nu).unwrap();
        }
        // The monotone backend must refuse rather than silently mis-solve.
        let err = SolverBackend::ExactMonotone.solve_with_cost(&mu, &nu, &cost);
        assert!(matches!(err, Err(OtError::InvalidParameter { .. })));
    }

    #[test]
    fn validate_rejects_bad_epsilon() {
        assert!(SolverBackend::sinkhorn(0.0).validate().is_err());
        assert!(SolverBackend::sinkhorn(-1.0).validate().is_err());
        assert!(SolverBackend::sinkhorn(f64::NAN).validate().is_err());
        assert!(SolverBackend::sinkhorn(f64::INFINITY).validate().is_err());
        assert!(SolverBackend::ExactMonotone.validate().is_ok());
        assert!(SolverBackend::Simplex.validate().is_ok());
        // Invalid parameters surface through the solve path too.
        let mu = dd(&[0.0, 1.0], &[0.5, 0.5]);
        assert!(SolverBackend::sinkhorn(-1.0).solve_1d(&mu, &mu).is_err());
    }

    #[test]
    fn parses_and_displays_cli_spellings() {
        assert_eq!(
            "exact".parse::<SolverBackend>().unwrap(),
            SolverBackend::ExactMonotone
        );
        assert_eq!(
            "monotone".parse::<SolverBackend>().unwrap(),
            SolverBackend::ExactMonotone
        );
        assert_eq!(
            "simplex".parse::<SolverBackend>().unwrap(),
            SolverBackend::Simplex
        );
        assert_eq!(
            "sinkhorn:0.05".parse::<SolverBackend>().unwrap(),
            SolverBackend::sinkhorn(0.05)
        );
        assert!("sinkhorn:".parse::<SolverBackend>().is_err());
        assert!("sinkhorn:-3".parse::<SolverBackend>().is_err());
        assert!("sinkhorn:abc".parse::<SolverBackend>().is_err());
        assert!("gurobi".parse::<SolverBackend>().is_err());
        // Display round-trips through FromStr.
        for backend in all_backends() {
            let back: SolverBackend = backend.to_string().parse().unwrap();
            assert_eq!(back, backend);
        }
    }

    #[test]
    fn serde_round_trips_all_variants() {
        for backend in all_backends() {
            let json = serde_json::to_string(&backend).unwrap();
            let back: SolverBackend = serde_json::from_str(&json).unwrap();
            assert_eq!(back, backend);
        }
        assert_eq!(
            serde_json::to_string(&SolverBackend::ExactMonotone).unwrap(),
            "\"ExactMonotone\""
        );
    }
}
