//! Optimal-transport solvers.
//!
//! Three solvers with one contract — given marginals (and where relevant a
//! cost matrix), return an [`crate::OtPlan`] satisfying the coupling
//! constraints of Equation (5):
//!
//! | Solver | Exactness | Complexity | Use |
//! |---|---|---|---|
//! | [`monotone`] | exact for convex 1-D costs | `O(n + m)` | Algorithm 1 hot path |
//! | [`simplex`]  | exact for any cost | `O(n³ log n)`-ish | ground truth, d > 1 |
//! | [`sinkhorn`] | ε-approximate | `O(n²/ε²)` | large supports (Sec. IV-A1) |
//!
//! Downstream code selects among them through the [`backend`] module's
//! [`SolverBackend`] / [`Solver1d`] seam, which owns backend dispatch,
//! epsilon validation, and the Sinkhorn→simplex fallback policy in one
//! place.

pub mod backend;
pub mod monotone;
pub mod simplex;
pub mod sinkhorn;

pub use backend::{Solver1d, SolverBackend};
