//! Entropic-regularized optimal transport: the Sinkhorn–Knopp algorithm
//! (Cuturi 2013, the paper's reference \[35\]), implemented in the log
//! domain for numerical stability at small regularization `ε`.
//!
//! Section IV-A1 of the paper contrasts unregularized OT's
//! `O(nQ³ log nQ)` with Sinkhorn's `O(nQ²/ε²)`; the `ablation_sinkhorn`
//! experiment in `otr-bench` measures the repair-quality/runtime trade-off
//! this buys.

use serde::{Deserialize, Serialize};

use crate::cost::CostMatrix;
use crate::coupling::OtPlan;
use crate::error::{OtError, Result};

/// Configuration for [`sinkhorn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinkhornConfig {
    /// Entropic regularization strength `ε > 0` (in cost units; it is NOT
    /// rescaled by the maximum cost internally).
    pub epsilon: f64,
    /// Maximum Sinkhorn iterations.
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tol: f64,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 1e-2,
            max_iters: 20_000,
            tol: 1e-6,
        }
    }
}

impl SinkhornConfig {
    /// Convenience constructor fixing `ε` and keeping default budget.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }
}

/// Solve entropic OT `min ⟨π, C⟩ − ε H(π)` subject to the coupling
/// constraints, via log-domain Sinkhorn iterations.
///
/// Returns an ε-approximate plan whose marginals match `a`/`b` within
/// `config.tol` in L1.
///
/// # Errors
/// * Validation errors for invalid inputs or non-positive `ε`.
/// * [`OtError::NoConvergence`] if the iteration budget is exhausted
///   before the marginal residual falls below `tol`.
pub fn sinkhorn(a: &[f64], b: &[f64], cost: &CostMatrix, config: SinkhornConfig) -> Result<OtPlan> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Err(OtError::EmptyInput("sinkhorn marginals"));
    }
    if cost.rows() != n || cost.cols() != m {
        return Err(OtError::LengthMismatch {
            what: "marginals vs cost matrix",
            left: n * m,
            right: cost.rows() * cost.cols(),
        });
    }
    if !(config.epsilon > 0.0) || !config.epsilon.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive and finite, got {}", config.epsilon),
        });
    }

    let normalize = |v: &[f64], name: &str| -> Result<Vec<f64>> {
        let mut total = 0.0;
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 || x.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "{name}[{i}] = {x} is negative or NaN"
                )));
            }
            total += x;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("{name} total {total}")));
        }
        Ok(v.iter().map(|x| x / total).collect())
    };
    let a = normalize(a, "a")?;
    let b = normalize(b, "b")?;

    // Zero-mass atoms break the log-domain updates; since a zero-mass row
    // or column carries no transport anyway, solve on the positive
    // sub-problem and re-embed.
    let rows_pos: Vec<usize> = (0..n).filter(|&i| a[i] > 0.0).collect();
    let cols_pos: Vec<usize> = (0..m).filter(|&j| b[j] > 0.0).collect();
    let np = rows_pos.len();
    let mp = cols_pos.len();

    let eps = config.epsilon;
    let log_a: Vec<f64> = rows_pos.iter().map(|&i| a[i].ln()).collect();
    let log_b: Vec<f64> = cols_pos.iter().map(|&j| b[j].ln()).collect();
    // Scaled negative cost kernel exponents: K[i][j] = -C[i][j]/eps.
    let mut neg_c_eps = vec![0.0f64; np * mp];
    for (pi, &i) in rows_pos.iter().enumerate() {
        for (pj, &j) in cols_pos.iter().enumerate() {
            neg_c_eps[pi * mp + pj] = -cost.get(i, j) / eps;
        }
    }

    // Log-domain dual potentials f, g (initialized at zero).
    let mut f = vec![0.0f64; np];
    let mut g = vec![0.0f64; mp];

    let log_sum_exp = |row: &[f64]| -> f64 {
        let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if mx == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let s: f64 = row.iter().map(|&x| (x - mx).exp()).sum();
        mx + s.ln()
    };

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    let mut scratch = vec![0.0f64; np.max(mp)];
    while iterations < config.max_iters {
        iterations += 1;
        // f update: f_i = eps*(log a_i - LSE_j((g_j - C_ij)/eps)) with our
        // scaling f, g stored as (dual / eps), making updates additive.
        for pi in 0..np {
            for pj in 0..mp {
                scratch[pj] = neg_c_eps[pi * mp + pj] + g[pj];
            }
            f[pi] = log_a[pi] - log_sum_exp(&scratch[..mp]);
        }
        // g update.
        for pj in 0..mp {
            for pi in 0..np {
                scratch[pi] = neg_c_eps[pi * mp + pj] + f[pi];
            }
            g[pj] = log_b[pj] - log_sum_exp(&scratch[..np]);
        }

        // Check marginal residual every few iterations to amortize cost.
        if iterations % 10 == 0 || iterations == config.max_iters {
            residual = 0.0;
            // After the g update, column marginals are exact; measure rows.
            for pi in 0..np {
                let mut row_sum = 0.0;
                for pj in 0..mp {
                    row_sum += (neg_c_eps[pi * mp + pj] + f[pi] + g[pj]).exp();
                }
                residual += (row_sum - log_a[pi].exp()).abs();
            }
            if residual < config.tol {
                break;
            }
        }
    }
    if residual >= config.tol && iterations >= config.max_iters {
        return Err(OtError::NoConvergence {
            solver: "sinkhorn",
            iterations,
            residual,
        });
    }

    // Materialize the plan on the positive sub-support.
    let mut sub = vec![0.0f64; np * mp];
    for pi in 0..np {
        for pj in 0..mp {
            sub[pi * mp + pj] = (neg_c_eps[pi * mp + pj] + f[pi] + g[pj]).exp();
        }
    }

    // Round to the exact feasible polytope (Altschuler–Weed–Rigollet,
    // NeurIPS 2017): scale down over-full rows, then over-full columns,
    // then restore the tiny missing mass with a rank-one correction. The
    // result satisfies the coupling constraints to machine precision, so a
    // Sinkhorn plan is a drop-in replacement for an exact plan downstream.
    let a_pos: Vec<f64> = rows_pos.iter().map(|&i| a[i]).collect();
    let b_pos: Vec<f64> = cols_pos.iter().map(|&j| b[j]).collect();
    for pi in 0..np {
        let r: f64 = sub[pi * mp..(pi + 1) * mp].iter().sum();
        if r > a_pos[pi] && r > 0.0 {
            let scale = a_pos[pi] / r;
            for v in &mut sub[pi * mp..(pi + 1) * mp] {
                *v *= scale;
            }
        }
    }
    let mut col_sums = vec![0.0f64; mp];
    for pi in 0..np {
        for pj in 0..mp {
            col_sums[pj] += sub[pi * mp + pj];
        }
    }
    for pj in 0..mp {
        if col_sums[pj] > b_pos[pj] && col_sums[pj] > 0.0 {
            let scale = b_pos[pj] / col_sums[pj];
            for pi in 0..np {
                sub[pi * mp + pj] *= scale;
            }
        }
    }
    let mut err_a = vec![0.0f64; np];
    let mut err_b = b_pos.clone();
    let mut err_total = 0.0;
    for pi in 0..np {
        let r: f64 = sub[pi * mp..(pi + 1) * mp].iter().sum();
        err_a[pi] = (a_pos[pi] - r).max(0.0);
        err_total += err_a[pi];
        for pj in 0..mp {
            err_b[pj] -= sub[pi * mp + pj];
        }
    }
    if err_total > 0.0 {
        for pi in 0..np {
            if err_a[pi] == 0.0 {
                continue;
            }
            for pj in 0..mp {
                sub[pi * mp + pj] += err_a[pi] * err_b[pj].max(0.0) / err_total;
            }
        }
    }

    // Embed into the full support.
    let mut mass = vec![0.0f64; n * m];
    for (pi, &i) in rows_pos.iter().enumerate() {
        for (pj, &j) in cols_pos.iter().enumerate() {
            mass[i * m + j] = sub[pi * mp + pj];
        }
    }
    OtPlan::from_dense(n, m, mass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteDistribution;
    use crate::solvers::monotone::solve_monotone_1d;

    #[test]
    fn marginals_match_within_tolerance() {
        let support_a = [0.0, 1.0, 2.0];
        let support_b = [0.5, 1.5];
        let a = [0.3, 0.4, 0.3];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        for (have, want) in plan.row_marginal().iter().zip(&a) {
            assert!((have - want).abs() < 1e-6);
        }
        for (have, want) in plan.col_marginal().iter().zip(&b) {
            assert!((have - want).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_approaches_exact_as_epsilon_shrinks() {
        let mu = DiscreteDistribution::new(vec![-1.0, 0.0, 1.0, 2.0], vec![0.25, 0.25, 0.25, 0.25])
            .unwrap();
        let nu = DiscreteDistribution::new(vec![0.0, 1.0, 3.0], vec![0.5, 0.3, 0.2]).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let exact = solve_monotone_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();

        let mut prev_gap = f64::INFINITY;
        for eps in [1.0, 0.3, 0.1] {
            let plan = sinkhorn(
                mu.masses(),
                nu.masses(),
                &cost,
                SinkhornConfig {
                    epsilon: eps,
                    max_iters: 200_000,
                    tol: 1e-6,
                },
            )
            .unwrap();
            let c = plan.transport_cost(&cost).unwrap();
            let gap = (c - exact).abs();
            assert!(
                gap <= prev_gap + 1e-9,
                "gap should shrink with eps: eps={eps}, gap={gap}, prev={prev_gap}"
            );
            prev_gap = gap;
        }
        assert!(prev_gap < 0.05, "final gap {prev_gap}");
    }

    #[test]
    fn small_epsilon_is_stable_in_log_domain() {
        // eps = 1e-3 with costs up to 9 would overflow naive exp(-C/eps);
        // the log-domain form must survive and stay close to exact.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 3.0], &[0.0, 3.0]).unwrap();
        let plan = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                epsilon: 1e-3,
                max_iters: 20_000,
                tol: 1e-10,
            },
        )
        .unwrap();
        // Optimal plan is the identity pairing.
        assert!((plan.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((plan.get(1, 1) - 0.5).abs() < 1e-6);
        assert!(plan.get(0, 1) < 1e-6);
    }

    #[test]
    fn zero_mass_atoms_are_ignored() {
        let a = [0.5, 0.0, 0.5];
        let b = [1.0, 0.0];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0, 2.0], &[1.0, 5.0]).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        assert!(plan.row_marginal()[1].abs() < 1e-12);
        assert!(plan.col_marginal()[1].abs() < 1e-12);
        assert!((plan.total_mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_config_and_inputs() {
        let cost = CostMatrix::squared_euclidean(&[0.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost, SinkhornConfig::with_epsilon(0.0)).is_err());
        assert!(sinkhorn(&[], &[1.0], &cost, SinkhornConfig::default()).is_err());
        assert!(sinkhorn(&[1.0], &[-1.0], &cost, SinkhornConfig::default()).is_err());
        let cost2 = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost2, SinkhornConfig::default()).is_err());
    }

    #[test]
    fn larger_epsilon_spreads_mass() {
        // Entropy regularization blurs the plan: off-diagonal mass grows
        // with eps.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let sharp = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(0.01)).unwrap();
        let blurry = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(10.0)).unwrap();
        assert!(blurry.get(0, 1) > sharp.get(0, 1));
        // At huge eps the plan approaches the independent coupling 0.25.
        assert!((blurry.get(0, 1) - 0.25).abs() < 0.05);
    }
}
