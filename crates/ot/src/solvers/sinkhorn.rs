//! Entropic-regularized optimal transport: the Sinkhorn–Knopp algorithm
//! (Cuturi 2013, the paper's reference \[35\]), built around three
//! coordinated performance ideas:
//!
//! * an **absorption-stabilized standard domain** — scaling vectors
//!   `u, v` against the *absorbed* Gibbs kernel
//!   `K̃ = exp((φ_i + ψ_j − C_ij)/ε)`, one multiply-add per cell per
//!   iteration; whenever the scalings drift too far from 1 their logs
//!   are absorbed into the dual potentials `φ, ψ` and the kernel is
//!   rebuilt (Schmitzer 2019's stabilization), so the fast path now
//!   serves *any* `ε` instead of only `max(C)/ε ≤ 500`;
//! * a **log-domain fallback** — dual potentials updated through
//!   log-sum-exp — entered only if the standard iteration turns
//!   non-finite or stalls (a pure function of the iterates, so the
//!   switch is deterministic);
//! * an optional **ε-scaling schedule with warm-started duals**
//!   ([`EpsSchedule`]): anneal geometrically from `ε₀` down to the
//!   target `ε`, carrying the converged potentials of each stage into
//!   the next ([`sinkhorn_warm`]). Warm duals cut the iteration count
//!   at the final (expensive) `ε` by an order of magnitude; the stage
//!   list is a pure function of the config, so scheduling never breaks
//!   the determinism contract below.
//!
//! The hot loops chunk their row/column scaling updates over
//! [`otr_par::par_chunks_mut`] once the kernel crosses the
//! [`otr_par::kernel_cells`] size threshold, and past the same
//! threshold the **column phase reads a transposed kernel copy**
//! ([`otr_par::par_transpose`]) instead of striding the row-major
//! kernel — the accumulation order over rows is unchanged, so the
//! transposed phase is bitwise-equal to the strided one. Every output
//! element is written by exactly one thread and accumulated in a fixed
//! order, and all cross-row reductions (marginal residuals, absorption
//! drift, rounding mass totals) are summed sequentially on the calling
//! thread: the returned plan is **bit-identical for any thread count**.
//!
//! Section IV-A1 of the paper contrasts unregularized OT's
//! `O(nQ³ log nQ)` with Sinkhorn's `O(nQ²/ε²)`; the `ablation_sinkhorn`
//! experiment in `otr-bench` measures the repair-quality/runtime trade-off
//! this buys.

use serde::{Deserialize, Serialize};

use otr_par::{par_chunks_mut, par_rows_mut, par_transpose};

use crate::cost::CostMatrix;
use crate::coupling::OtPlan;
use crate::error::{OtError, Result};
use crate::kernel::{KernelChoice, KernelRep};

/// Iterations between convergence / absorption checks: the `O(n²)`
/// residual amortizes to noise at this cadence.
const CHECK_CADENCE: usize = 10;

/// Largest `max(|ln u|, |ln v|)` scaling drift the standard-domain
/// iteration tolerates before absorbing the scalings into the dual
/// potentials and rebuilding the kernel. Products `u_i K̃_ij v_j` stay
/// below `exp(2 · 250) = e⁵⁰⁰`, comfortably inside f64 range.
const ABSORB_DRIFT: f64 = 250.0;

/// Consecutive non-improving residual checks before the standard
/// iteration is declared stalled and the log-domain fallback takes
/// over (30 checks × cadence 10 = 300 iterations of grace).
const STALL_CHECKS: usize = 30;

/// Largest `max(|ln U|, |ln V|)` total-scaling drift the **separable**
/// standard domain tolerates. Its factored kernel cannot be rebuilt
/// around the dual potentials (that would break the `Kx ⊗ Ky`
/// structure), so the scaling vectors carry the *full* duals; past this
/// bound the products `U_i · Kx·Ky · V_j` risk leaving f64 range and
/// the stage bails to the log domain instead
/// (`2 · 340 < ln f64::MAX ≈ 709`).
const SEPARABLE_SCALING_MAX: f64 = 340.0;

/// Hard cap on ε-schedule stages (a floor-bound geometric schedule with
/// a factor very close to 1 would otherwise explode); past the cap the
/// schedule jumps straight to the final ε.
const MAX_STAGES: usize = 64;

/// Default intermediate-stage iteration cap of [`EpsSchedule`]
/// (`stage_iters = 0` = auto).
const STAGE_ITERS_DEFAULT: usize = 200;

/// Default intermediate-stage tolerance of [`EpsSchedule`]
/// (`stage_tol = 0.0` = auto).
const STAGE_TOL_DEFAULT: f64 = 1e-4;

/// A deterministic geometric ε-annealing schedule: solve at
/// `ε₀, ε₀·factor, ε₀·factor², …` (each stage warm-starting the next's
/// dual potentials) until the sequence crosses the target ε, which is
/// always the final stage. A pure function of the config — the stage
/// list never depends on data, threads, or timing — so scheduled solves
/// keep the bit-identical-for-any-thread-count contract.
///
/// Intermediate stages only need to *warm the duals*, so they run under
/// a loose tolerance and a small iteration cap; only the final stage
/// enforces the caller's `tol`/`max_iters`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsSchedule {
    /// Starting regularization `ε₀` (> the target ε for the schedule to
    /// have any effect; a start at or below the target collapses to the
    /// single final stage).
    pub eps0: f64,
    /// Geometric decay factor per stage, strictly inside `(0, 1)`.
    pub factor: f64,
    /// Iteration cap per intermediate stage; `0` = auto (200). The
    /// final stage uses the solver's own budget.
    #[serde(default)]
    pub stage_iters: usize,
    /// Convergence tolerance for intermediate stages; `0.0` = auto
    /// (`1e-4`). The final stage uses the solver's own `tol`.
    #[serde(default)]
    pub stage_tol: f64,
}

impl Default for EpsSchedule {
    /// `ε₀ = 1.0`, factor `0.25`: for the paper's joint `ε = 0.05` this
    /// anneals through `1.0 → 0.25 → 0.0625 → 0.05`. Stage budget at
    /// auto.
    fn default() -> Self {
        Self {
            eps0: 1.0,
            factor: 0.25,
            stage_iters: 0,
            stage_tol: 0.0,
        }
    }
}

impl EpsSchedule {
    /// Schedule with the given start and decay, default stage budget.
    pub fn geometric(eps0: f64, factor: f64) -> Self {
        Self {
            eps0,
            factor,
            ..Self::default()
        }
    }

    /// Validate the schedule parameters.
    ///
    /// # Errors
    /// [`OtError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.eps0 > 0.0) || !self.eps0.is_finite() {
            return Err(OtError::InvalidParameter {
                name: "eps_scaling.eps0",
                reason: format!("must be positive and finite, got {}", self.eps0),
            });
        }
        if !(self.factor > 0.0 && self.factor < 1.0) {
            return Err(OtError::InvalidParameter {
                name: "eps_scaling.factor",
                reason: format!("must lie strictly in (0, 1), got {}", self.factor),
            });
        }
        if !(self.stage_tol >= 0.0) || !self.stage_tol.is_finite() {
            return Err(OtError::InvalidParameter {
                name: "eps_scaling.stage_tol",
                reason: format!("must be non-negative and finite, got {}", self.stage_tol),
            });
        }
        Ok(())
    }

    /// The intermediate-stage iteration cap (`stage_iters`, or the
    /// default 200 when left at `0` = auto).
    pub fn effective_stage_iters(&self) -> usize {
        if self.stage_iters == 0 {
            STAGE_ITERS_DEFAULT
        } else {
            self.stage_iters
        }
    }

    /// The intermediate-stage tolerance (`stage_tol`, or the default
    /// `1e-4` when left at `0.0` = auto).
    pub fn effective_stage_tol(&self) -> f64 {
        if self.stage_tol == 0.0 {
            STAGE_TOL_DEFAULT
        } else {
            self.stage_tol
        }
    }

    /// The stage ε sequence down to (and always ending exactly at)
    /// `eps_final`: strictly decreasing, geometric, capped at 64
    /// stages (past the cap the schedule jumps straight to the final
    /// ε).
    pub fn stages(&self, eps_final: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut eps = self.eps0;
        while eps > eps_final && out.len() < MAX_STAGES {
            out.push(eps);
            eps *= self.factor;
        }
        out.push(eps_final);
        out
    }
}

/// Configuration for [`sinkhorn`] / [`sinkhorn_warm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinkhornConfig {
    /// Entropic regularization strength `ε > 0` (in cost units; it is NOT
    /// rescaled by the maximum cost internally).
    pub epsilon: f64,
    /// Maximum Sinkhorn iterations (of the final stage, when an
    /// ε-schedule is set).
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tol: f64,
    /// Optional ε-annealing schedule ending at [`epsilon`](Self::epsilon).
    /// Part of the solve's mathematical definition (a scheduled solve
    /// converges to the same fixed point but along a different iterate
    /// path), so — unlike the runtime knobs below — it serializes
    /// (absent in pre-schedule JSON, defaulting to `None`).
    #[serde(default)]
    pub eps_scaling: Option<EpsSchedule>,
    /// Worker threads for the in-kernel scaling updates (`0` = auto:
    /// `OTR_THREADS` env or available parallelism). Runtime policy —
    /// never serialized, and never affects the returned plan's bytes.
    #[serde(skip)]
    pub threads: usize,
    /// Minimum kernel size (rows × cols) before the scaling updates
    /// chunk across threads — and before the column phase switches to
    /// the transposed kernel copy; `None` = auto (`OTR_KERNEL_CELLS`
    /// env or [`otr_par::KERNEL_CELLS_DEFAULT`]). Runtime policy, not
    /// serialized.
    #[serde(skip)]
    pub parallel_min_cells: Option<usize>,
    /// Gibbs-kernel representation on **grid-separable** costs (a
    /// self-product-grid squared-Euclidean [`CostMatrix`] with no
    /// zero-mass filtering): `Auto` (the default) factorizes the kernel
    /// as `Kx ⊗ Ky` — two `O(nQ³)` axis passes per scaling update
    /// instead of the `O(nQ⁴)` dense sweep — unless the `OTR_KERNEL`
    /// environment variable says otherwise; non-separable solves always
    /// run dense. Like [`eps_scaling`](Self::eps_scaling) this is part
    /// of the solve's definition (the representations group sums
    /// differently, agreeing to ~1e-12 relative, not bitwise); unlike
    /// it the choice is not serialized — a persisted plan stores the
    /// designed coupling itself, never the representation that built
    /// it.
    #[serde(skip)]
    pub kernel: KernelChoice,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 1e-2,
            max_iters: 20_000,
            tol: 1e-6,
            eps_scaling: None,
            threads: 0,
            parallel_min_cells: None,
            kernel: KernelChoice::Auto,
        }
    }
}

impl SinkhornConfig {
    /// Convenience constructor fixing `ε` and keeping default budget.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// Effective thread count for a kernel of `cells` matrix cells: the
    /// configured threads once the size threshold is crossed, else 1.
    fn kernel_threads(&self, cells: usize) -> usize {
        if cells >= otr_par::kernel_cells(self.parallel_min_cells) {
            self.threads // 0 = auto, resolved by the executor
        } else {
            1
        }
    }
}

/// Dual potentials `(f, g)` of a Sinkhorn solve in **cost units**
/// (`π_ij ∝ exp((f_i + g_j − C_ij)/ε)`), on the caller's full support
/// (zero at zero-mass atoms). Returned by [`sinkhorn_warm`] so a later
/// solve of a *nearby* problem — the next stage of an ε-schedule, the
/// next outer iteration of an alternating scheme, a slightly perturbed
/// marginal — can start from them instead of from uniform.
///
/// Because the potentials are stored ε-free, warm-starting across a
/// *change of ε* is exact: the solver just divides by its own ε.
///
/// Serializable so repair plans can persist the duals of the solve that
/// designed them and warm-start a later *re-design* against drifted
/// data (`RepairPlanner::redesign` in `otr-core`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkhornDuals {
    /// Row potential `f`, one entry per source atom.
    pub f: Vec<f64>,
    /// Column potential `g`, one entry per target atom.
    pub g: Vec<f64>,
}

/// Solve entropic OT `min ⟨π, C⟩ − ε H(π)` subject to the coupling
/// constraints, via (optionally ε-scheduled) Sinkhorn scaling
/// iterations — see the module docs for the iteration domains.
///
/// Returns an ε-approximate plan whose marginals match `a`/`b` within
/// `config.tol` in L1. The plan is bit-identical for any
/// `config.threads` setting.
///
/// # Errors
/// * Validation errors for invalid inputs or non-positive `ε`.
/// * [`OtError::NoConvergence`] if the iteration budget is exhausted
///   before the marginal residual falls below `tol`.
pub fn sinkhorn(a: &[f64], b: &[f64], cost: &CostMatrix, config: SinkhornConfig) -> Result<OtPlan> {
    sinkhorn_warm(a, b, cost, config, None).map(|(plan, _)| plan)
}

/// [`sinkhorn`] with an explicit dual warm start, returning the plan
/// **and** the converged duals (for chaining into the next nearby
/// solve). `warm = None` is the cold start from zero potentials.
///
/// # Errors
/// As [`sinkhorn`]; additionally rejects warm duals whose lengths do
/// not match the marginals.
pub fn sinkhorn_warm(
    a: &[f64],
    b: &[f64],
    cost: &CostMatrix,
    config: SinkhornConfig,
    warm: Option<&SinkhornDuals>,
) -> Result<(OtPlan, SinkhornDuals)> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Err(OtError::EmptyInput("sinkhorn marginals"));
    }
    if cost.rows() != n || cost.cols() != m {
        return Err(OtError::LengthMismatch {
            what: "marginals vs cost matrix",
            left: n * m,
            right: cost.rows() * cost.cols(),
        });
    }
    if !(config.epsilon > 0.0) || !config.epsilon.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive and finite, got {}", config.epsilon),
        });
    }
    if let Some(schedule) = &config.eps_scaling {
        schedule.validate()?;
    }
    if let Some(duals) = warm {
        if duals.f.len() != n || duals.g.len() != m {
            return Err(OtError::LengthMismatch {
                what: "warm duals vs marginals",
                left: duals.f.len() + duals.g.len(),
                right: n + m,
            });
        }
    }

    let normalize = |v: &[f64], name: &str| -> Result<Vec<f64>> {
        let mut total = 0.0;
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 || x.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "{name}[{i}] = {x} is negative or NaN"
                )));
            }
            total += x;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("{name} total {total}")));
        }
        Ok(v.iter().map(|x| x / total).collect())
    };
    let a = normalize(a, "a")?;
    let b = normalize(b, "b")?;

    // Zero-mass atoms break the scaling updates; since a zero-mass row
    // or column carries no transport anyway, solve on the positive
    // sub-problem and re-embed.
    let rows_pos: Vec<usize> = (0..n).filter(|&i| a[i] > 0.0).collect();
    let cols_pos: Vec<usize> = (0..m).filter(|&j| b[j] > 0.0).collect();
    let np = rows_pos.len();
    let mp = cols_pos.len();

    let threads = config.kernel_threads(np * mp);
    let transposed = np * mp >= otr_par::kernel_cells(config.parallel_min_cells);

    // The separable (Kronecker) standard domain engages only when the
    // cost is grid-separable AND no zero-mass filtering narrowed the
    // support (filtering breaks the product structure); the kernel
    // choice then still gets the last word. Its per-matvec work is
    // `n·Σnᵢ` cells, so it resolves its own threshold.
    let separable = cost
        .grid_nd()
        .filter(|axes| {
            np == n && mp == m && n == m && axes.iter().map(|g| g.len()).product::<usize>() == n
        })
        .filter(|_| config.kernel.resolve(true))
        .map(|axes| axes.to_vec());
    let sep_threads = separable.as_ref().map_or(1, |axes: &Vec<Vec<f64>>| {
        config.kernel_threads(np * axes.iter().map(|g| g.len()).sum::<usize>())
    });

    // Negated cost -C on the positive sub-support (ε-free, so one build
    // serves every schedule stage), built row-parallel — but only for
    // dense solves. The separable path rebuilds it on demand from its
    // axis grids if (and only if) a stage ever falls back to the log
    // domain; its happy path never touches the O(n²) matrix.
    let neg_c = std::sync::OnceLock::new();
    if separable.is_none() {
        let mut dense = vec![0.0f64; np * mp];
        par_chunks_mut(&mut dense, threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = -cost.get(rows_pos[idx / mp], cols_pos[idx % mp]);
            }
        });
        let _ = neg_c.set(dense);
    }

    let sub = SubProblem {
        np,
        mp,
        neg_c,
        a_pos: rows_pos.iter().map(|&i| a[i]).collect(),
        b_pos: cols_pos.iter().map(|&j| b[j]).collect(),
        threads,
        transposed,
        separable,
        sep_threads,
    };

    // Dual potentials in cost units on the sub-support, warm or zero.
    let mut phi = vec![0.0f64; np];
    let mut psi = vec![0.0f64; mp];
    if let Some(duals) = warm {
        for (slot, &i) in phi.iter_mut().zip(&rows_pos) {
            *slot = duals.f[i];
        }
        for (slot, &j) in psi.iter_mut().zip(&cols_pos) {
            *slot = duals.g[j];
        }
    }

    let stages = match &config.eps_scaling {
        Some(schedule) => schedule.stages(config.epsilon),
        None => vec![config.epsilon],
    };
    let (stage_iters, stage_tol) = match &config.eps_scaling {
        Some(s) => (s.effective_stage_iters(), s.effective_stage_tol()),
        None => (0, 0.0), // unused: a single stage is always final
    };
    let mut solved = Vec::new();
    for (si, &eps) in stages.iter().enumerate() {
        let last = si + 1 == stages.len();
        let (cap, tol) = if last {
            (config.max_iters, config.tol)
        } else {
            (stage_iters, stage_tol)
        };
        if let Some(plan) = sub.run_stage(eps, cap, tol, &mut phi, &mut psi, last)? {
            solved = plan;
        }
    }
    let rounded = sub.round_to_feasible(solved);

    // Embed the plan and the duals into the full support.
    let mut mass = vec![0.0f64; n * m];
    for (pi, &i) in rows_pos.iter().enumerate() {
        for (pj, &j) in cols_pos.iter().enumerate() {
            mass[i * m + j] = rounded[pi * mp + pj];
        }
    }
    let mut duals = SinkhornDuals {
        f: vec![0.0f64; n],
        g: vec![0.0f64; m],
    };
    for (pi, &i) in rows_pos.iter().enumerate() {
        duals.f[i] = phi[pi];
    }
    for (pj, &j) in cols_pos.iter().enumerate() {
        duals.g[j] = psi[pj];
    }
    Ok((OtPlan::from_dense(n, m, mass)?, duals))
}

/// Outcome of a standard-domain stage attempt.
enum StandardOutcome {
    /// Residual fell below the stage tolerance (plan present when the
    /// stage was asked to materialize).
    Converged(Option<Vec<f64>>),
    /// Iteration cap exhausted with finite iterates; the duals hold the
    /// absorbed final scalings (fine for an intermediate stage).
    Exhausted,
    /// Non-finite iterates or a stalled residual; the duals hold the
    /// last healthy absorption. The caller should fall back to the
    /// log domain.
    Unstable,
}

/// The strictly-positive sub-problem a [`sinkhorn`] call reduces to,
/// plus the resolved in-kernel execution policy. All schedule stages,
/// both iteration domains, and the feasibility rounding operate on this.
struct SubProblem {
    np: usize,
    mp: usize,
    /// Negated cost `-C` (ε-free), row-major `np × mp`. Built eagerly
    /// for dense solves; the separable fast path defers it — only the
    /// log-domain fallback needs the dense cost there, and the common
    /// case (every stage converging in the factorized domain) never
    /// pays the `O(n²)` build. Access through [`SubProblem::neg_c`].
    neg_c: std::sync::OnceLock<Vec<f64>>,
    a_pos: Vec<f64>,
    b_pos: Vec<f64>,
    /// Effective worker threads (1 = stay sequential; the size
    /// threshold has already been applied).
    threads: usize,
    /// Column phase reads a transposed kernel copy (true once the
    /// kernel crosses the [`otr_par::kernel_cells`] threshold).
    transposed: bool,
    /// Axis grids when the standard domain runs against the factorized
    /// kernel `K₁ ⊗ … ⊗ K_d` (grid-separable cost, unfiltered support,
    /// kernel choice resolved to separable); `None` = dense.
    separable: Option<Vec<Vec<f64>>>,
    /// Effective worker threads of the separable passes (thresholded on
    /// their own `n·Σnᵢ` work measure; 1 when `separable` is `None`).
    sep_threads: usize,
}

impl SubProblem {
    /// The negated cost `-C`, row-major `np × mp` — eager for dense
    /// solves, reconstructed from the separable axis grids on first use
    /// (bit-identical to the eager build: the squared axis distances
    /// are accumulated in the same forward axis order, then negated).
    fn neg_c(&self) -> &[f64] {
        self.neg_c.get_or_init(|| {
            let axes = self
                .separable
                .as_ref()
                .expect("dense sub-problems build neg_c eagerly");
            let d = axes.len();
            // suffix[a] = Π axes[a..].len(), for decoding the flattened
            // (last-axis-fastest) multi-indices.
            let mut suffix = vec![1usize; d + 1];
            for a in (0..d).rev() {
                suffix[a] = suffix[a + 1] * axes[a].len();
            }
            let m = self.mp;
            let mut dense = vec![0.0f64; self.np * m];
            par_chunks_mut(&mut dense, self.threads, |start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let idx = start + off;
                    let (r, c) = (idx / m, idx % m);
                    let mut acc = 0.0;
                    for (a, g) in axes.iter().enumerate() {
                        let na = g.len();
                        let dd = g[(r / suffix[a + 1]) % na] - g[(c / suffix[a + 1]) % na];
                        acc += dd * dd;
                    }
                    *slot = -acc;
                }
            });
            dense
        })
    }

    /// One ε-stage: try the absorption-stabilized standard domain, fall
    /// back to the log domain if it turns non-finite or stalls. `phi` /
    /// `psi` (cost-unit duals) are the warm-start input and the stage's
    /// output. Only the final stage (`last`) materializes a plan and
    /// treats an exhausted budget as [`OtError::NoConvergence`];
    /// intermediate stages exist solely to warm the duals.
    fn run_stage(
        &self,
        eps: f64,
        max_iters: usize,
        tol: f64,
        phi: &mut [f64],
        psi: &mut [f64],
        last: bool,
    ) -> Result<Option<Vec<f64>>> {
        let standard = if self.separable.is_some() {
            self.iterate_separable(eps, max_iters, tol, phi, psi, last)
        } else {
            self.iterate_standard(eps, max_iters, tol, phi, psi, last)
        };
        match standard {
            StandardOutcome::Converged(plan) => Ok(plan),
            StandardOutcome::Exhausted if !last => Ok(None),
            // Final-stage exhaustion or instability: the log-sum-exp
            // domain is unconditionally stable, so retry there before
            // reporting failure. The fallback decision is a pure
            // function of the iterates, so determinism is unaffected.
            StandardOutcome::Exhausted | StandardOutcome::Unstable => {
                self.iterate_log(eps, max_iters, tol, phi, psi, last)
            }
        }
    }

    /// Standard-domain Sinkhorn against the **factorized** kernel
    /// `K₁ ⊗ … ⊗ K_d` of a grid-separable cost: every scaling update
    /// contracts one axis at a time (d `O(n·nᵢ)` passes through
    /// [`KernelRep::matvec`]) instead of sweeping the `O(n²)` dense
    /// kernel.
    ///
    /// Unlike [`SubProblem::iterate_standard`] this domain cannot
    /// absorb drifting scalings into the kernel — rebuilding
    /// `exp((φ_i + ψ_j − C_ij)/ε)` cell-wise would destroy the product
    /// structure — so the scaling vectors `U = exp(φ/ε)·u`,
    /// `V = exp(ψ/ε)·v` carry the *full* duals (warm-started via the
    /// one free dual constant, which centres the two exponent ranges).
    /// If they drift past [`SEPARABLE_SCALING_MAX`] or turn non-finite
    /// the stage returns [`StandardOutcome::Unstable`] and the caller
    /// falls back to the (dense) log domain — a pure function of the
    /// iterates, so determinism is unaffected. Update order matches the
    /// other domains (row scaling, column scaling, residual on rows).
    fn iterate_separable(
        &self,
        eps: f64,
        max_iters: usize,
        tol: f64,
        phi: &mut [f64],
        psi: &mut [f64],
        materialize: bool,
    ) -> StandardOutcome {
        let axes = self.separable.as_ref().expect("separable axes");
        let axis_refs: Vec<&[f64]> = axes.iter().map(Vec::as_slice).collect();
        let kernel = KernelRep::separable_grid_nd(&axis_refs, eps);
        let n = self.np;
        let threads = self.sep_threads;
        const FLOOR: f64 = 1e-300;

        // Warm start: fold the duals into the scalings, spending the
        // free dual constant (φ ↦ φ − s, ψ ↦ ψ + s leaves every
        // π_ij = exp((φ_i + ψ_j − C_ij)/ε) unchanged) on centring the
        // two exponent ranges around a common mean.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let shift = (mean(phi) - mean(psi)) / 2.0;
        let mut u: Vec<f64> = phi.iter().map(|p| ((p - shift) / eps).exp()).collect();
        let mut v: Vec<f64> = psi.iter().map(|p| ((p + shift) / eps).exp()).collect();
        if u.iter().chain(&v).any(|x| !x.is_finite() || *x <= 0.0) {
            // The warm duals themselves exceed the factored domain's
            // range; let the log domain handle this stage.
            return StandardOutcome::Unstable;
        }
        let write_duals = |phi: &mut [f64], psi: &mut [f64], u: &[f64], v: &[f64]| {
            for (p, ui) in phi.iter_mut().zip(u) {
                *p = eps * ui.max(FLOOR).ln() + shift;
            }
            for (p, vj) in psi.iter_mut().zip(v) {
                *p = eps * vj.max(FLOOR).ln() - shift;
            }
        };

        let mut kv = vec![0.0f64; n];
        let mut ku = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        let mut iterations = 0;
        let mut best_residual = f64::INFINITY;
        let mut stalled_checks = 0;
        while iterations < max_iters {
            iterations += 1;
            // U_i = a_i / (K V)_i (row marginals exact after this).
            kernel.matvec(&v, &mut kv, &mut scratch, threads);
            for i in 0..n {
                u[i] = self.a_pos[i] / kv[i].max(FLOOR);
            }
            // V_j = b_j / (Kᵀ U)_j; the kernel is symmetric (self-grid
            // cost), so the same two axis passes serve the transpose.
            kernel.matvec(&u, &mut ku, &mut scratch, threads);
            for j in 0..n {
                v[j] = self.b_pos[j] / ku[j].max(FLOOR);
            }

            // Convergence / stability checks on the standard cadence.
            // The residual matvec and the sequential folds mirror the
            // dense domain: every cross-row reduction happens on the
            // calling thread, so the outcome is thread-count-free.
            if iterations % CHECK_CADENCE == 0 || iterations == max_iters {
                kernel.matvec(&v, &mut kv, &mut scratch, threads);
                let mut residual = 0.0;
                for i in 0..n {
                    residual += (u[i] * kv[i] - self.a_pos[i]).abs();
                }
                if !residual.is_finite() {
                    return StandardOutcome::Unstable;
                }
                if residual < tol {
                    let plan = materialize.then(|| self.materialize_separable(&kernel, &u, &v));
                    write_duals(phi, psi, &u, &v);
                    return StandardOutcome::Converged(plan);
                }
                if residual >= best_residual * 0.999 {
                    stalled_checks += 1;
                    if stalled_checks >= STALL_CHECKS {
                        return StandardOutcome::Unstable;
                    }
                } else {
                    stalled_checks = 0;
                }
                best_residual = best_residual.min(residual);

                // Factored-domain overflow guard (see the method docs).
                let drift = u
                    .iter()
                    .chain(&v)
                    .map(|x| x.ln().abs())
                    .fold(0.0f64, f64::max);
                if !drift.is_finite() || drift > SEPARABLE_SCALING_MAX {
                    return StandardOutcome::Unstable;
                }
            }
        }
        write_duals(phi, psi, &u, &v);
        StandardOutcome::Exhausted
    }

    /// Materialize `π_ij = U_i · K_ij · V_j` from the factorized kernel
    /// (the plan itself is dense — `O(n²)` cells once, vs the per-
    /// iteration savings of the axis-pass matvecs), chunk-parallel and
    /// elementwise pure, so bit-identical for any thread count.
    fn materialize_separable(&self, kernel: &KernelRep, u: &[f64], v: &[f64]) -> Vec<f64> {
        let KernelRep::SeparableNd { axes } = kernel else {
            unreachable!("separable materialization needs a factorized kernel")
        };
        let n = self.np;
        let d = axes.len();
        // suffix[a] = Π axes[a..].n for the multi-index decode; the
        // axis factors multiply left-to-right so the d = 2 product is
        // the exact `u·kx·ky·v` association of the 2-axis original.
        let mut suffix = vec![1usize; d + 1];
        for a in (0..d).rev() {
            suffix[a] = suffix[a + 1] * axes[a].n;
        }
        let mut plan = vec![0.0f64; n * n];
        par_chunks_mut(&mut plan, self.sep_threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                let (r, c) = (idx / n, idx % n);
                let mut acc = u[r];
                for (a, ax) in axes.iter().enumerate() {
                    let ia = (r / suffix[a + 1]) % ax.n;
                    let ja = (c / suffix[a + 1]) % ax.n;
                    acc *= ax.k[ia * ax.n + ja];
                }
                *slot = acc * v[c];
            }
        });
        plan
    }

    /// Build the absorbed Gibbs kernel `K̃_ij = exp((φ_i + ψ_j − C_ij)/ε)`
    /// (and, past the size threshold, its transposed copy for the
    /// column phase), chunk-parallel.
    fn build_absorbed_kernel(
        &self,
        eps: f64,
        phi: &[f64],
        psi: &[f64],
        kernel: &mut [f64],
        kernel_t: &mut [f64],
    ) {
        let mp = self.mp;
        let neg_c = self.neg_c();
        par_chunks_mut(kernel, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = ((phi[idx / mp] + psi[idx % mp] + neg_c[idx]) / eps).exp();
            }
        });
        if self.transposed {
            par_transpose(kernel, self.np, mp, kernel_t, self.threads);
        }
    }

    /// Standard-domain Sinkhorn against the absorbed kernel, with
    /// periodic absorption of drifting scalings into `phi`/`psi`.
    ///
    /// Update order matches the log-domain path (row scaling, then
    /// column scaling, residual measured on rows), so both paths
    /// converge on the same cadence.
    fn iterate_standard(
        &self,
        eps: f64,
        max_iters: usize,
        tol: f64,
        phi: &mut [f64],
        psi: &mut [f64],
        materialize: bool,
    ) -> StandardOutcome {
        let (np, mp) = (self.np, self.mp);
        let mut kernel = vec![0.0f64; np * mp];
        let mut kernel_t = if self.transposed {
            vec![0.0f64; np * mp]
        } else {
            Vec::new()
        };
        self.build_absorbed_kernel(eps, phi, psi, &mut kernel, &mut kernel_t);

        const FLOOR: f64 = 1e-300;
        let absorb = |phi: &mut [f64], psi: &mut [f64], u: &[f64], v: &[f64]| {
            for (p, ui) in phi.iter_mut().zip(u) {
                *p += eps * ui.ln();
            }
            for (p, vj) in psi.iter_mut().zip(v) {
                *p += eps * vj.ln();
            }
        };

        let mut u = vec![1.0f64; np];
        let mut v = vec![1.0f64; mp];
        let mut iterations = 0;
        let mut row_res = vec![0.0f64; np];
        let mut best_residual = f64::INFINITY;
        let mut stalled_checks = 0;
        while iterations < max_iters {
            iterations += 1;
            // u_i = a_i / Σ_j K̃_ij v_j (row marginals exact after this).
            par_chunks_mut(&mut u, self.threads, |start, chunk| {
                for (off, ui) in chunk.iter_mut().enumerate() {
                    let pi = start + off;
                    let row = &kernel[pi * mp..(pi + 1) * mp];
                    let mut acc = 0.0;
                    for (kij, vj) in row.iter().zip(&v) {
                        acc += kij * vj;
                    }
                    *ui = self.a_pos[pi] / acc.max(FLOOR);
                }
            });
            // v_j = b_j / Σ_i K̃_ij u_i (column marginals exact after
            // this). Past the size threshold the sum reads row pj of the
            // transposed copy — contiguous instead of stride-mp — in the
            // same pi order, so the accumulated bits are unchanged.
            if self.transposed {
                let kernel_t = &kernel_t;
                let u_ref = &u;
                par_chunks_mut(&mut v, self.threads, |start, chunk| {
                    for (off, vj) in chunk.iter_mut().enumerate() {
                        let pj = start + off;
                        let col = &kernel_t[pj * np..(pj + 1) * np];
                        let mut acc = 0.0;
                        for (kij, ui) in col.iter().zip(u_ref) {
                            acc += kij * ui;
                        }
                        *vj = self.b_pos[pj] / acc.max(FLOOR);
                    }
                });
            } else {
                let kernel_ref = &kernel;
                let u_ref = &u;
                par_chunks_mut(&mut v, self.threads, |start, chunk| {
                    for (off, vj) in chunk.iter_mut().enumerate() {
                        let pj = start + off;
                        let mut acc = 0.0;
                        for pi in 0..np {
                            acc += kernel_ref[pi * mp + pj] * u_ref[pi];
                        }
                        *vj = self.b_pos[pj] / acc.max(FLOOR);
                    }
                });
            }

            // Convergence / absorption checks every few iterations to
            // amortize their O(n²) / O(n) cost. Per-row contributions
            // are computed elementwise in parallel; every cross-row
            // reduction (residual sum, drift max) stays sequential so
            // the outcome is thread-count-independent.
            if iterations % CHECK_CADENCE == 0 || iterations == max_iters {
                par_chunks_mut(&mut row_res, self.threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let pi = start + off;
                        let row = &kernel[pi * mp..(pi + 1) * mp];
                        let mut acc = 0.0;
                        for (kij, vj) in row.iter().zip(&v) {
                            acc += kij * vj;
                        }
                        *slot = (u[pi] * acc - self.a_pos[pi]).abs();
                    }
                });
                let residual: f64 = row_res.iter().sum();
                if !residual.is_finite() {
                    return StandardOutcome::Unstable;
                }
                if residual < tol {
                    // Materialize π_ij = u_i K̃_ij v_j before the final
                    // absorption folds the scalings away.
                    let plan = materialize.then(|| {
                        let mut plan = vec![0.0f64; np * mp];
                        let kernel_ref = &kernel;
                        let (u_ref, v_ref) = (&u, &v);
                        par_chunks_mut(&mut plan, self.threads, |start, chunk| {
                            for (off, slot) in chunk.iter_mut().enumerate() {
                                let idx = start + off;
                                *slot = u_ref[idx / mp] * kernel_ref[idx] * v_ref[idx % mp];
                            }
                        });
                        plan
                    });
                    absorb(phi, psi, &u, &v);
                    return StandardOutcome::Converged(plan);
                }
                if residual >= best_residual * 0.999 {
                    stalled_checks += 1;
                    if stalled_checks >= STALL_CHECKS {
                        return StandardOutcome::Unstable;
                    }
                } else {
                    stalled_checks = 0;
                }
                best_residual = best_residual.min(residual);

                // Absorb drifting scalings into the duals and rebuild
                // the kernel around them, keeping every product the
                // iteration forms inside f64 range.
                let drift = u
                    .iter()
                    .chain(&v)
                    .map(|x| x.ln().abs())
                    .fold(0.0f64, f64::max);
                if !drift.is_finite() {
                    return StandardOutcome::Unstable;
                }
                if drift > ABSORB_DRIFT {
                    absorb(phi, psi, &u, &v);
                    self.build_absorbed_kernel(eps, phi, psi, &mut kernel, &mut kernel_t);
                    u.fill(1.0);
                    v.fill(1.0);
                }
            }
        }
        absorb(phi, psi, &u, &v);
        StandardOutcome::Exhausted
    }

    /// Log-domain Sinkhorn: dual potentials via log-sum-exp. Stable for
    /// any `ε > 0`; roughly 3–5× the per-cell cost of the standard path.
    /// Entered only as the fallback when [`Self::iterate_standard`]
    /// turns non-finite or stalls.
    fn iterate_log(
        &self,
        eps: f64,
        max_iters: usize,
        tol: f64,
        phi: &mut [f64],
        psi: &mut [f64],
        last: bool,
    ) -> Result<Option<Vec<f64>>> {
        let (np, mp) = (self.np, self.mp);
        let log_a: Vec<f64> = self.a_pos.iter().map(|x| x.ln()).collect();
        let log_b: Vec<f64> = self.b_pos.iter().map(|x| x.ln()).collect();
        // Kernel exponents -C/ε for this stage, plus the transposed
        // copy for the column phase past the size threshold (the
        // elementwise scaling commutes with the transpose, so either
        // build order yields the same bits).
        let mut neg_c_eps = vec![0.0f64; np * mp];
        let neg_c = self.neg_c();
        par_chunks_mut(&mut neg_c_eps, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = neg_c[start + off] / eps;
            }
        });
        let mut neg_c_eps_t = Vec::new();
        if self.transposed {
            neg_c_eps_t = vec![0.0f64; np * mp];
            par_transpose(&neg_c_eps, np, mp, &mut neg_c_eps_t, self.threads);
        }

        // Log-domain dual potentials (stored as dual/ε so updates are
        // additive), warm-started from the cost-unit duals.
        let mut f: Vec<f64> = phi.iter().map(|x| x / eps).collect();
        let mut g: Vec<f64> = psi.iter().map(|x| x / eps).collect();

        let log_sum_exp = |row: &[f64]| -> f64 {
            let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if mx == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            let s: f64 = row.iter().map(|&x| (x - mx).exp()).sum();
            mx + s.ln()
        };

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut row_res = vec![0.0f64; np];
        while iterations < max_iters {
            iterations += 1;
            // f update: f_i = log a_i - LSE_j(-C_ij/eps + g_j). Each
            // chunk owns its rows and a private scratch buffer.
            par_chunks_mut(&mut f, self.threads, |start, chunk| {
                let mut scratch = vec![0.0f64; mp];
                for (off, fi) in chunk.iter_mut().enumerate() {
                    let pi = start + off;
                    for pj in 0..mp {
                        scratch[pj] = neg_c_eps[pi * mp + pj] + g[pj];
                    }
                    *fi = log_a[pi] - log_sum_exp(&scratch);
                }
            });
            // g update (column-parallel; contiguous reads off the
            // transposed exponents past the size threshold).
            if self.transposed {
                let t = &neg_c_eps_t;
                let f_ref = &f;
                par_chunks_mut(&mut g, self.threads, |start, chunk| {
                    let mut scratch = vec![0.0f64; np];
                    for (off, gj) in chunk.iter_mut().enumerate() {
                        let pj = start + off;
                        let col = &t[pj * np..(pj + 1) * np];
                        for (slot, (nc, fi)) in scratch.iter_mut().zip(col.iter().zip(f_ref)) {
                            *slot = nc + fi;
                        }
                        *gj = log_b[pj] - log_sum_exp(&scratch);
                    }
                });
            } else {
                let f_ref = &f;
                par_chunks_mut(&mut g, self.threads, |start, chunk| {
                    let mut scratch = vec![0.0f64; np];
                    for (off, gj) in chunk.iter_mut().enumerate() {
                        let pj = start + off;
                        for pi in 0..np {
                            scratch[pi] = neg_c_eps[pi * mp + pj] + f_ref[pi];
                        }
                        *gj = log_b[pj] - log_sum_exp(&scratch);
                    }
                });
            }

            // Residual cadence as in the standard path; after the g
            // update column marginals are exact, so measure rows.
            if iterations % CHECK_CADENCE == 0 || iterations == max_iters {
                par_chunks_mut(&mut row_res, self.threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let pi = start + off;
                        let mut row_sum = 0.0;
                        for pj in 0..mp {
                            row_sum += (neg_c_eps[pi * mp + pj] + f[pi] + g[pj]).exp();
                        }
                        *slot = (row_sum - self.a_pos[pi]).abs();
                    }
                });
                residual = row_res.iter().sum();
                if residual < tol {
                    break;
                }
            }
        }
        if residual >= tol && iterations >= max_iters && last {
            return Err(OtError::NoConvergence {
                solver: "sinkhorn",
                iterations,
                residual,
            });
        }

        // Write the duals back in cost units for the next stage/caller.
        for (p, fi) in phi.iter_mut().zip(&f) {
            *p = fi * eps;
        }
        for (p, gj) in psi.iter_mut().zip(&g) {
            *p = gj * eps;
        }
        if !last {
            return Ok(None);
        }
        // Materialize the plan on the positive sub-support.
        let mut plan = vec![0.0f64; np * mp];
        par_chunks_mut(&mut plan, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = (neg_c_eps[idx] + f[idx / mp] + g[idx % mp]).exp();
            }
        });
        Ok(Some(plan))
    }

    /// Round to the exact feasible polytope (Altschuler–Weed–Rigollet,
    /// NeurIPS 2017): scale down over-full rows, then over-full columns,
    /// then restore the tiny missing mass with a rank-one correction. The
    /// result satisfies the coupling constraints to machine precision, so a
    /// Sinkhorn plan is a drop-in replacement for an exact plan downstream.
    /// Row/column passes are chunk-parallel (each output owned by one
    /// thread, accumulated in fixed order); the scalar mass totals are
    /// summed sequentially — thread-count-independent throughout.
    fn round_to_feasible(&self, mut sub: Vec<f64>) -> Vec<f64> {
        let (np, mp) = (self.np, self.mp);
        let (a_pos, b_pos) = (&self.a_pos, &self.b_pos);
        // Over-full rows: whole rows are chunk units, so each thread
        // computes its rows' sums and rescales them locally.
        par_rows_mut(&mut sub, mp, self.threads, |pi, row| {
            let r: f64 = row.iter().sum();
            if r > a_pos[pi] && r > 0.0 {
                let scale = a_pos[pi] / r;
                for v in row {
                    *v *= scale;
                }
            }
        });
        // Over-full columns: per-column sums scan all rows (strided).
        let mut col_scale = vec![1.0f64; mp];
        par_chunks_mut(&mut col_scale, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pj = start + off;
                let mut col_sum = 0.0;
                for pi in 0..np {
                    col_sum += sub[pi * mp + pj];
                }
                if col_sum > b_pos[pj] && col_sum > 0.0 {
                    *slot = b_pos[pj] / col_sum;
                }
            }
        });
        par_rows_mut(&mut sub, mp, self.threads, |_, row| {
            for (v, s) in row.iter_mut().zip(&col_scale) {
                *v *= s;
            }
        });
        // Missing row/column mass after the down-scaling.
        let mut err_a = vec![0.0f64; np];
        par_chunks_mut(&mut err_a, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pi = start + off;
                let r: f64 = sub[pi * mp..(pi + 1) * mp].iter().sum();
                *slot = (a_pos[pi] - r).max(0.0);
            }
        });
        let mut err_b = vec![0.0f64; mp];
        par_chunks_mut(&mut err_b, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pj = start + off;
                let mut col_sum = 0.0;
                for pi in 0..np {
                    col_sum += sub[pi * mp + pj];
                }
                *slot = b_pos[pj] - col_sum;
            }
        });
        let err_total: f64 = err_a.iter().sum();
        if err_total > 0.0 {
            par_rows_mut(&mut sub, mp, self.threads, |pi, row| {
                if err_a[pi] == 0.0 {
                    return;
                }
                for (v, eb) in row.iter_mut().zip(&err_b) {
                    *v += err_a[pi] * eb.max(0.0) / err_total;
                }
            });
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteDistribution;
    use crate::solvers::monotone::solve_monotone_1d;

    #[test]
    fn marginals_match_within_tolerance() {
        let support_a = [0.0, 1.0, 2.0];
        let support_b = [0.5, 1.5];
        let a = [0.3, 0.4, 0.3];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        for (have, want) in plan.row_marginal().iter().zip(&a) {
            assert!((have - want).abs() < 1e-6);
        }
        for (have, want) in plan.col_marginal().iter().zip(&b) {
            assert!((have - want).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_approaches_exact_as_epsilon_shrinks() {
        let mu = DiscreteDistribution::new(vec![-1.0, 0.0, 1.0, 2.0], vec![0.25, 0.25, 0.25, 0.25])
            .unwrap();
        let nu = DiscreteDistribution::new(vec![0.0, 1.0, 3.0], vec![0.5, 0.3, 0.2]).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let exact = solve_monotone_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();

        let mut prev_gap = f64::INFINITY;
        for eps in [1.0, 0.3, 0.1] {
            let plan = sinkhorn(
                mu.masses(),
                nu.masses(),
                &cost,
                SinkhornConfig {
                    epsilon: eps,
                    max_iters: 200_000,
                    tol: 1e-6,
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            let c = plan.transport_cost(&cost).unwrap();
            let gap = (c - exact).abs();
            assert!(
                gap <= prev_gap + 1e-9,
                "gap should shrink with eps: eps={eps}, gap={gap}, prev={prev_gap}"
            );
            prev_gap = gap;
        }
        assert!(prev_gap < 0.05, "final gap {prev_gap}");
    }

    #[test]
    fn small_epsilon_is_stable() {
        // eps = 1e-3 with costs up to 9 would overflow a naive raw
        // exp(-C/eps) iteration; the absorption-stabilized standard
        // domain (or its log fallback) must survive and stay close to
        // exact.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 3.0], &[0.0, 3.0]).unwrap();
        let plan = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                epsilon: 1e-3,
                max_iters: 20_000,
                tol: 1e-10,
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        // Optimal plan is the identity pairing.
        assert!((plan.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((plan.get(1, 1) - 0.5).abs() < 1e-6);
        assert!(plan.get(0, 1) < 1e-6);
    }

    #[test]
    fn zero_mass_atoms_are_ignored() {
        let a = [0.5, 0.0, 0.5];
        let b = [1.0, 0.0];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0, 2.0], &[1.0, 5.0]).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        assert!(plan.row_marginal()[1].abs() < 1e-12);
        assert!(plan.col_marginal()[1].abs() < 1e-12);
        assert!((plan.total_mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_config_and_inputs() {
        let cost = CostMatrix::squared_euclidean(&[0.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost, SinkhornConfig::with_epsilon(0.0)).is_err());
        assert!(sinkhorn(&[], &[1.0], &cost, SinkhornConfig::default()).is_err());
        assert!(sinkhorn(&[1.0], &[-1.0], &cost, SinkhornConfig::default()).is_err());
        let cost2 = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost2, SinkhornConfig::default()).is_err());
        // Malformed schedules and warm duals are rejected up front.
        let mut cfg = SinkhornConfig::with_epsilon(0.1);
        cfg.eps_scaling = Some(EpsSchedule::geometric(1.0, 1.5));
        assert!(sinkhorn(&[1.0], &[1.0], &cost, cfg).is_err());
        let mut cfg = SinkhornConfig::with_epsilon(0.1);
        cfg.eps_scaling = Some(EpsSchedule::geometric(-1.0, 0.5));
        assert!(sinkhorn(&[1.0], &[1.0], &cost, cfg).is_err());
        let bad_duals = SinkhornDuals {
            f: vec![0.0; 3],
            g: vec![0.0; 1],
        };
        assert!(sinkhorn_warm(
            &[1.0],
            &[1.0],
            &cost,
            SinkhornConfig::default(),
            Some(&bad_duals)
        )
        .is_err());
    }

    #[test]
    fn eps_schedule_stage_lists_are_geometric_and_floored() {
        let s = EpsSchedule::geometric(1.0, 0.25);
        assert_eq!(s.stages(0.05), vec![1.0, 0.25, 0.0625, 0.05]);
        assert_eq!(s.stages(1.0), vec![1.0]);
        // A start at or below the target collapses to the single stage.
        assert_eq!(s.stages(2.0), vec![2.0]);
        // The stage count is capped even for absurd factors.
        let slow = EpsSchedule::geometric(1.0, 0.999_999);
        assert!(slow.stages(1e-9).len() <= MAX_STAGES + 1);
        assert_eq!(*slow.stages(1e-9).last().unwrap(), 1e-9);
    }

    #[test]
    fn scheduled_solve_agrees_with_cold_start_at_final_epsilon() {
        // The ε-schedule changes the route, not the destination: at the
        // same final ε and tolerance, the scheduled plan must match the
        // cold-start plan within solver tolerance, cell by cell.
        let support_a: Vec<f64> = (0..23).map(|i| i as f64 * 0.31).collect();
        let support_b: Vec<f64> = (0..19).map(|i| 0.05 + i as f64 * 0.37).collect();
        let a: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..19).map(|i| 1.0 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        let cold_cfg = SinkhornConfig {
            epsilon: 0.05,
            tol: 1e-8,
            ..SinkhornConfig::default()
        };
        let cold = sinkhorn(&a, &b, &cost, cold_cfg).unwrap();
        let scheduled_cfg = SinkhornConfig {
            eps_scaling: Some(EpsSchedule::default()),
            ..cold_cfg
        };
        let scheduled = sinkhorn(&a, &b, &cost, scheduled_cfg).unwrap();
        for i in 0..a.len() {
            for j in 0..b.len() {
                assert!(
                    (cold.get(i, j) - scheduled.get(i, j)).abs() < 1e-5,
                    "cell ({i}, {j}): cold {} vs scheduled {}",
                    cold.get(i, j),
                    scheduled.get(i, j)
                );
            }
        }
    }

    #[test]
    fn warm_started_resolve_converges_fast_and_agrees() {
        // Solving, then re-solving the same problem from the returned
        // duals, must reproduce the same plan (within tolerance) — the
        // warm-start contract an ε-schedule stage relies on.
        let support: Vec<f64> = (0..17).map(|i| i as f64 * 0.4).collect();
        let a: Vec<f64> = (0..17).map(|i| 1.0 + ((i * 5) % 7) as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| 1.0 + ((i * 11) % 6) as f64).collect();
        let cost = CostMatrix::squared_euclidean(&support, &support).unwrap();
        let cfg = SinkhornConfig {
            epsilon: 0.1,
            tol: 1e-8,
            ..SinkhornConfig::default()
        };
        let (first, duals) = sinkhorn_warm(&a, &b, &cost, cfg, None).unwrap();
        let (second, _) = sinkhorn_warm(&a, &b, &cost, cfg, Some(&duals)).unwrap();
        for i in 0..17 {
            for j in 0..17 {
                assert!(
                    (first.get(i, j) - second.get(i, j)).abs() < 1e-6,
                    "cell ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn transposed_column_phase_bitwise_equal_to_strided() {
        // The transposed kernel copy changes memory layout, never the
        // accumulation order — forcing it on (min_cells = 1) must
        // reproduce the strided sequential solve bit for bit, for both
        // a cold and a scheduled solve.
        let support_a: Vec<f64> = (0..23).map(|i| i as f64 * 0.031).collect();
        let support_b: Vec<f64> = (0..17).map(|i| 0.01 + i as f64 * 0.04).collect();
        let a: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| 1.0 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        for eps_scaling in [None, Some(EpsSchedule::default())] {
            let strided = sinkhorn(
                &a,
                &b,
                &cost,
                SinkhornConfig {
                    epsilon: 0.05,
                    eps_scaling,
                    threads: 1,
                    parallel_min_cells: Some(usize::MAX),
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            let transposed = sinkhorn(
                &a,
                &b,
                &cost,
                SinkhornConfig {
                    epsilon: 0.05,
                    eps_scaling,
                    threads: 1,
                    parallel_min_cells: Some(1),
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            for i in 0..a.len() {
                for j in 0..b.len() {
                    assert_eq!(
                        transposed.get(i, j).to_bits(),
                        strided.get(i, j).to_bits(),
                        "scheduled = {}, cell ({i}, {j})",
                        eps_scaling.is_some()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_kernels_bit_identical_to_sequential() {
        // The in-kernel determinism contract: chunking the scaling
        // updates across any thread count returns the *exact same
        // bytes* as the sequential solve. `parallel_min_cells = 1`
        // forces the chunked path even on this small problem; the two
        // epsilons pin both a no-absorption regime and one that
        // absorbs repeatedly.
        let support_a: Vec<f64> = (0..23).map(|i| i as f64 * 0.031).collect();
        let support_b: Vec<f64> = (0..17).map(|i| 0.01 + i as f64 * 0.04).collect();
        let a: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| 1.0 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        assert_parallel_matches_sequential(&a, &b, &cost, 0.05, None);

        // Deep-ε leg on a shared support with equal marginals; also run
        // it scheduled so every stage of the annealing is pinned.
        let support: Vec<f64> = (0..23).map(|i| i as f64 * 0.31).collect();
        let cost_sq = CostMatrix::squared_euclidean(&support, &support).unwrap();
        let m: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 5) % 7) as f64).collect();
        assert_parallel_matches_sequential(&m, &m, &cost_sq, 1e-4, None);
        assert_parallel_matches_sequential(&m, &m, &cost_sq, 1e-4, Some(EpsSchedule::default()));
    }

    /// Chunked (2/3/7 threads, threshold forced to 1 cell) vs
    /// sequential solve of the same problem: the plans' bytes must
    /// match exactly.
    fn assert_parallel_matches_sequential(
        a: &[f64],
        b: &[f64],
        cost: &CostMatrix,
        eps: f64,
        eps_scaling: Option<EpsSchedule>,
    ) {
        let sequential = sinkhorn(
            a,
            b,
            cost,
            SinkhornConfig {
                epsilon: eps,
                eps_scaling,
                threads: 1,
                parallel_min_cells: Some(1),
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        for threads in [2usize, 3, 7] {
            let parallel = sinkhorn(
                a,
                b,
                cost,
                SinkhornConfig {
                    epsilon: eps,
                    eps_scaling,
                    threads,
                    parallel_min_cells: Some(1),
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            for i in 0..a.len() {
                for j in 0..b.len() {
                    assert_eq!(
                        parallel.get(i, j).to_bits(),
                        sequential.get(i, j).to_bits(),
                        "eps = {eps}, threads = {threads}, cell ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn standard_domain_agrees_with_log_domain() {
        // Both iteration domains share one fixed point; drive them on
        // the same sub-problem directly and compare the unrounded plans
        // within the convergence tolerance.
        let mu_support = [0.0, 1.0, 2.0, 3.0];
        let nu_support = [0.5, 1.5, 2.5];
        let a = [0.3, 0.2, 0.3, 0.2];
        let b = [0.4, 0.3, 0.3];
        let cost = CostMatrix::squared_euclidean(&mu_support, &nu_support).unwrap();
        let eps = 0.05;
        let (np, mp) = (a.len(), b.len());
        let mut neg_c = vec![0.0f64; np * mp];
        for i in 0..np {
            for j in 0..mp {
                neg_c[i * mp + j] = -cost.get(i, j);
            }
        }
        let neg_c_cell = std::sync::OnceLock::new();
        let _ = neg_c_cell.set(neg_c);
        let sub = SubProblem {
            np,
            mp,
            neg_c: neg_c_cell,
            a_pos: a.to_vec(),
            b_pos: b.to_vec(),
            threads: 1,
            transposed: false,
            separable: None,
            sep_threads: 1,
        };
        let mut phi = vec![0.0f64; np];
        let mut psi = vec![0.0f64; mp];
        let standard = match sub.iterate_standard(eps, 200_000, 1e-9, &mut phi, &mut psi, true) {
            StandardOutcome::Converged(Some(plan)) => plan,
            other => panic!(
                "standard domain should converge on stable inputs, got {}",
                match other {
                    StandardOutcome::Converged(None) => "no plan",
                    StandardOutcome::Exhausted => "exhausted",
                    StandardOutcome::Unstable => "unstable",
                    StandardOutcome::Converged(Some(_)) => unreachable!(),
                }
            ),
        };
        let mut phi = vec![0.0f64; np];
        let mut psi = vec![0.0f64; mp];
        let log = sub
            .iterate_log(eps, 200_000, 1e-9, &mut phi, &mut psi, true)
            .unwrap()
            .expect("final stage materializes");
        for (idx, (s, l)) in standard.iter().zip(&log).enumerate() {
            assert!((s - l).abs() < 1e-6, "cell {idx}: standard {s} vs log {l}");
        }
    }

    /// A grid-separable product-grid problem: pmfs on the `gx × gy`
    /// self-product support (strictly positive so no filtering breaks
    /// the structure).
    fn product_grid_problem() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, CostMatrix) {
        let gx: Vec<f64> = (0..6).map(|i| -1.0 + 0.4 * i as f64).collect();
        let gy: Vec<f64> = (0..5).map(|i| 0.1 + 0.35 * i as f64).collect();
        let n = gx.len() * gy.len();
        let a: Vec<f64> = (0..n).map(|i| 0.2 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 0.3 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean_grid2d(&gx, &gy).unwrap();
        (gx, gy, a, b, cost)
    }

    #[test]
    fn separable_kernel_agrees_with_dense_on_product_grids() {
        // Same fixed point, different sum grouping: the factorized and
        // dense solves of one problem must agree within the solver
        // tolerance, cell by cell — cold and ε-scheduled.
        let (_, _, a, b, cost) = product_grid_problem();
        for eps_scaling in [None, Some(EpsSchedule::default())] {
            let base = SinkhornConfig {
                epsilon: 0.1,
                tol: 1e-9,
                eps_scaling,
                ..SinkhornConfig::default()
            };
            let dense = sinkhorn(
                &a,
                &b,
                &cost,
                SinkhornConfig {
                    kernel: KernelChoice::Dense,
                    ..base
                },
            )
            .unwrap();
            let sep = sinkhorn(
                &a,
                &b,
                &cost,
                SinkhornConfig {
                    kernel: KernelChoice::Separable,
                    ..base
                },
            )
            .unwrap();
            sep.validate_marginals(
                &a.iter()
                    .map(|x| x / a.iter().sum::<f64>())
                    .collect::<Vec<_>>(),
                &b.iter()
                    .map(|x| x / b.iter().sum::<f64>())
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            for i in 0..dense.rows() {
                for j in 0..dense.cols() {
                    assert!(
                        (dense.get(i, j) - sep.get(i, j)).abs() < 1e-7,
                        "scheduled = {}, cell ({i}, {j}): dense {} vs separable {}",
                        eps_scaling.is_some(),
                        dense.get(i, j),
                        sep.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn separable_kernel_bit_identical_across_thread_counts() {
        let (_, _, a, b, cost) = product_grid_problem();
        for eps_scaling in [None, Some(EpsSchedule::default())] {
            let sequential = sinkhorn(
                &a,
                &b,
                &cost,
                SinkhornConfig {
                    epsilon: 0.08,
                    eps_scaling,
                    threads: 1,
                    parallel_min_cells: Some(1),
                    kernel: KernelChoice::Separable,
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            for threads in [2usize, 3, 7] {
                let parallel = sinkhorn(
                    &a,
                    &b,
                    &cost,
                    SinkhornConfig {
                        epsilon: 0.08,
                        eps_scaling,
                        threads,
                        parallel_min_cells: Some(1),
                        kernel: KernelChoice::Separable,
                        ..SinkhornConfig::default()
                    },
                )
                .unwrap();
                for i in 0..a.len() {
                    for j in 0..b.len() {
                        assert_eq!(
                            parallel.get(i, j).to_bits(),
                            sequential.get(i, j).to_bits(),
                            "scheduled = {}, threads = {threads}, cell ({i}, {j})",
                            eps_scaling.is_some()
                        );
                    }
                }
            }
        }
    }

    /// A 3-axis grid-separable problem: pmfs on the `g1 × g2 × g3`
    /// self-product support (strictly positive, unfiltered).
    fn product_grid_problem_3d() -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, CostMatrix) {
        let g1: Vec<f64> = (0..5).map(|i| -1.0 + 0.4 * i as f64).collect();
        let g2: Vec<f64> = (0..4).map(|i| 0.1 + 0.35 * i as f64).collect();
        let g3: Vec<f64> = (0..3).map(|i| -0.2 + 0.5 * i as f64).collect();
        let n = g1.len() * g2.len() * g3.len();
        let a: Vec<f64> = (0..n).map(|i| 0.2 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 0.3 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean_grid_nd(&[&g1, &g2, &g3]).unwrap();
        (vec![g1, g2, g3], a, b, cost)
    }

    #[test]
    fn separable_kernel_agrees_with_dense_on_3d_product_grids() {
        let (_, a, b, cost) = product_grid_problem_3d();
        let base = SinkhornConfig {
            epsilon: 0.1,
            tol: 1e-9,
            eps_scaling: Some(EpsSchedule::default()),
            ..SinkhornConfig::default()
        };
        let dense = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                kernel: KernelChoice::Dense,
                ..base
            },
        )
        .unwrap();
        let sep = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                kernel: KernelChoice::Separable,
                ..base
            },
        )
        .unwrap();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                assert!(
                    (dense.get(i, j) - sep.get(i, j)).abs() < 1e-7,
                    "cell ({i}, {j}): dense {} vs separable {}",
                    dense.get(i, j),
                    sep.get(i, j)
                );
            }
        }
    }

    #[test]
    fn separable_kernel_3d_bit_identical_across_thread_counts() {
        let (_, a, b, cost) = product_grid_problem_3d();
        let cfg = |threads| SinkhornConfig {
            epsilon: 0.08,
            eps_scaling: Some(EpsSchedule::default()),
            threads,
            parallel_min_cells: Some(1),
            kernel: KernelChoice::Separable,
            ..SinkhornConfig::default()
        };
        let sequential = sinkhorn(&a, &b, &cost, cfg(1)).unwrap();
        for threads in [2usize, 7] {
            let parallel = sinkhorn(&a, &b, &cost, cfg(threads)).unwrap();
            for i in 0..a.len() {
                for j in 0..b.len() {
                    assert_eq!(
                        parallel.get(i, j).to_bits(),
                        sequential.get(i, j).to_bits(),
                        "threads = {threads}, cell ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn lazy_neg_c_3d_reconstruction_bitwise_matches_eager_build() {
        let (axes, a, b, cost) = product_grid_problem_3d();
        let n = a.len();
        let lazy = SubProblem {
            np: n,
            mp: b.len(),
            neg_c: std::sync::OnceLock::new(),
            a_pos: a.clone(),
            b_pos: b.clone(),
            threads: 1,
            transposed: false,
            separable: Some(axes),
            sep_threads: 1,
        };
        let got = lazy.neg_c();
        for r in 0..n {
            for c in 0..n {
                assert_eq!(
                    got[r * n + c].to_bits(),
                    (-cost.get(r, c)).to_bits(),
                    "cell ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn lazy_neg_c_reconstruction_bitwise_matches_eager_build() {
        // A separable sub-problem defers its O(n²) negated-cost build;
        // when the log-domain fallback does demand it, the axis-grid
        // reconstruction must reproduce the eager `-cost.get(i, j)`
        // build bit for bit.
        let (gx, gy, a, b, cost) = product_grid_problem();
        let n = a.len();
        let lazy = SubProblem {
            np: n,
            mp: b.len(),
            neg_c: std::sync::OnceLock::new(),
            a_pos: a.clone(),
            b_pos: b.clone(),
            threads: 1,
            transposed: false,
            separable: Some(vec![gx, gy]),
            sep_threads: 1,
        };
        let got = lazy.neg_c();
        for r in 0..n {
            for c in 0..n {
                assert_eq!(
                    got[r * n + c].to_bits(),
                    (-cost.get(r, c)).to_bits(),
                    "cell ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn separable_preference_degrades_to_dense_off_product_grids() {
        // A non-separable cost under an explicit Separable preference
        // must solve dense (and correctly), never error; and zero-mass
        // filtering on a product-grid cost also falls back cleanly.
        let support_a = [0.0, 1.0, 2.0];
        let support_b = [0.5, 1.5];
        let a = [0.3, 0.4, 0.3];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        let plan = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                kernel: KernelChoice::Separable,
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        plan.validate_marginals(&a, &b).unwrap();

        let (gx, gy, mut a2, b2, cost2) = product_grid_problem();
        a2[3] = 0.0; // filtering narrows the support → product structure gone
        let _ = (gx, gy);
        let plan2 = sinkhorn(
            &a2,
            &b2,
            &cost2,
            SinkhornConfig {
                epsilon: 0.1,
                kernel: KernelChoice::Separable,
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        assert!(plan2.row_marginal()[3].abs() < 1e-12);
    }

    #[test]
    fn larger_epsilon_spreads_mass() {
        // Entropy regularization blurs the plan: off-diagonal mass grows
        // with eps.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let sharp = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(0.01)).unwrap();
        let blurry = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(10.0)).unwrap();
        assert!(blurry.get(0, 1) > sharp.get(0, 1));
        // At huge eps the plan approaches the independent coupling 0.25.
        assert!((blurry.get(0, 1) - 0.25).abs() < 0.05);
    }

    #[test]
    fn schedule_serde_defaults_stage_budget() {
        // A schedule persisted without the stage-budget fields (or
        // written by hand) deserializes with the defaults.
        let s: EpsSchedule = serde_json::from_str(r#"{"eps0":0.5,"factor":0.5}"#).unwrap();
        assert_eq!(s.effective_stage_iters(), STAGE_ITERS_DEFAULT);
        assert_eq!(s.effective_stage_tol(), STAGE_TOL_DEFAULT);
        let round: EpsSchedule =
            serde_json::from_str(&serde_json::to_string(&EpsSchedule::default()).unwrap()).unwrap();
        assert_eq!(round, EpsSchedule::default());
    }
}
