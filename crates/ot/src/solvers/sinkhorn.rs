//! Entropic-regularized optimal transport: the Sinkhorn–Knopp algorithm
//! (Cuturi 2013, the paper's reference \[35\]), with two iteration
//! domains behind one entry point:
//!
//! * a **standard-domain** fast path — scaling vectors `u, v` against a
//!   precomputed Gibbs kernel `K = exp(−C/ε)`, one multiply-add per cell
//!   per iteration — taken when `max(C)/ε` is small enough that the
//!   kernel cannot underflow destructively;
//! * the **log-domain** path — dual potentials updated through
//!   log-sum-exp — for small `ε` on wide cost ranges, and as the
//!   fallback if the standard path ever turns non-finite.
//!
//! Both paths chunk their row/column scaling updates over
//! [`otr_par::par_chunks_mut`] once the kernel crosses the
//! [`otr_par::kernel_cells`] size threshold: every output element is
//! written by exactly one thread and accumulated in a fixed order, so
//! the returned plan is **bit-identical for any thread count**. All
//! cross-row reductions (marginal residuals, rounding mass totals) are
//! summed sequentially on the calling thread for the same reason.
//!
//! Section IV-A1 of the paper contrasts unregularized OT's
//! `O(nQ³ log nQ)` with Sinkhorn's `O(nQ²/ε²)`; the `ablation_sinkhorn`
//! experiment in `otr-bench` measures the repair-quality/runtime trade-off
//! this buys.

use serde::{Deserialize, Serialize};

use otr_par::{par_chunks_mut, par_rows_mut};

use crate::cost::CostMatrix;
use crate::coupling::OtPlan;
use crate::error::{OtError, Result};

/// Largest `max(C)/ε` ratio the standard-domain path accepts: kernel
/// entries stay ≥ `exp(−500)` ≈ 7e−218, comfortably inside f64 range,
/// so the plain multiply-add iteration cannot underflow to hard zero.
const STANDARD_DOMAIN_MAX_EXPONENT: f64 = 500.0;

/// Configuration for [`sinkhorn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinkhornConfig {
    /// Entropic regularization strength `ε > 0` (in cost units; it is NOT
    /// rescaled by the maximum cost internally).
    pub epsilon: f64,
    /// Maximum Sinkhorn iterations.
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tol: f64,
    /// Worker threads for the in-kernel scaling updates (`0` = auto:
    /// `OTR_THREADS` env or available parallelism). Runtime policy —
    /// never serialized, and never affects the returned plan's bytes.
    #[serde(skip)]
    pub threads: usize,
    /// Minimum kernel size (rows × cols) before the scaling updates
    /// chunk across threads; `None` = auto (`OTR_KERNEL_CELLS` env or
    /// [`otr_par::KERNEL_CELLS_DEFAULT`]). Runtime policy, not
    /// serialized.
    #[serde(skip)]
    pub parallel_min_cells: Option<usize>,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 1e-2,
            max_iters: 20_000,
            tol: 1e-6,
            threads: 0,
            parallel_min_cells: None,
        }
    }
}

impl SinkhornConfig {
    /// Convenience constructor fixing `ε` and keeping default budget.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// Effective thread count for a kernel of `cells` matrix cells: the
    /// configured threads once the size threshold is crossed, else 1.
    fn kernel_threads(&self, cells: usize) -> usize {
        if cells >= otr_par::kernel_cells(self.parallel_min_cells) {
            self.threads // 0 = auto, resolved by the executor
        } else {
            1
        }
    }
}

/// Solve entropic OT `min ⟨π, C⟩ − ε H(π)` subject to the coupling
/// constraints, via Sinkhorn scaling iterations (standard-domain when
/// `max(C)/ε` permits, log-domain otherwise — see the module docs).
///
/// Returns an ε-approximate plan whose marginals match `a`/`b` within
/// `config.tol` in L1. The plan is bit-identical for any
/// `config.threads` setting.
///
/// # Errors
/// * Validation errors for invalid inputs or non-positive `ε`.
/// * [`OtError::NoConvergence`] if the iteration budget is exhausted
///   before the marginal residual falls below `tol`.
pub fn sinkhorn(a: &[f64], b: &[f64], cost: &CostMatrix, config: SinkhornConfig) -> Result<OtPlan> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Err(OtError::EmptyInput("sinkhorn marginals"));
    }
    if cost.rows() != n || cost.cols() != m {
        return Err(OtError::LengthMismatch {
            what: "marginals vs cost matrix",
            left: n * m,
            right: cost.rows() * cost.cols(),
        });
    }
    if !(config.epsilon > 0.0) || !config.epsilon.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive and finite, got {}", config.epsilon),
        });
    }

    let normalize = |v: &[f64], name: &str| -> Result<Vec<f64>> {
        let mut total = 0.0;
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 || x.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "{name}[{i}] = {x} is negative or NaN"
                )));
            }
            total += x;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("{name} total {total}")));
        }
        Ok(v.iter().map(|x| x / total).collect())
    };
    let a = normalize(a, "a")?;
    let b = normalize(b, "b")?;

    // Zero-mass atoms break the scaling updates; since a zero-mass row
    // or column carries no transport anyway, solve on the positive
    // sub-problem and re-embed.
    let rows_pos: Vec<usize> = (0..n).filter(|&i| a[i] > 0.0).collect();
    let cols_pos: Vec<usize> = (0..m).filter(|&j| b[j] > 0.0).collect();
    let np = rows_pos.len();
    let mp = cols_pos.len();

    let eps = config.epsilon;
    // Scaled negative cost kernel exponents: -C[i][j]/eps, built
    // row-parallel (each chunk writes its own disjoint rows).
    let threads = config.kernel_threads(np * mp);
    let mut neg_c_eps = vec![0.0f64; np * mp];
    par_chunks_mut(&mut neg_c_eps, threads, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let idx = start + off;
            *slot = -cost.get(rows_pos[idx / mp], cols_pos[idx % mp]) / eps;
        }
    });

    let sub = SubProblem {
        np,
        mp,
        neg_c_eps,
        a_pos: rows_pos.iter().map(|&i| a[i]).collect(),
        b_pos: cols_pos.iter().map(|&j| b[j]).collect(),
        threads,
        config,
    };

    let max_exponent = sub
        .neg_c_eps
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()));
    let solved = if max_exponent <= STANDARD_DOMAIN_MAX_EXPONENT {
        match sub.solve_standard() {
            Ok(Some(plan)) => plan,
            // The standard path turned non-finite (pathological inputs)
            // or stalled — FLOOR-clamped underflow of K·v products can
            // pin its residual above tol on skewed marginals the
            // log-domain iteration still solves. Log-sum-exp is
            // unconditionally stable, so retry there before reporting
            // failure; the fallback decision is a pure function of the
            // inputs, so determinism is unaffected.
            Ok(None) | Err(OtError::NoConvergence { .. }) => sub.solve_log()?,
            Err(e) => return Err(e),
        }
    } else {
        sub.solve_log()?
    };
    let rounded = sub.round_to_feasible(solved);

    // Embed into the full support.
    let mut mass = vec![0.0f64; n * m];
    for (pi, &i) in rows_pos.iter().enumerate() {
        for (pj, &j) in cols_pos.iter().enumerate() {
            mass[i * m + j] = rounded[pi * mp + pj];
        }
    }
    OtPlan::from_dense(n, m, mass)
}

/// The strictly-positive sub-problem a [`sinkhorn`] call reduces to,
/// plus the resolved in-kernel thread count. Both iteration domains and
/// the feasibility rounding operate on this.
struct SubProblem {
    np: usize,
    mp: usize,
    /// Kernel exponents `-C/ε`, row-major `np × mp`.
    neg_c_eps: Vec<f64>,
    a_pos: Vec<f64>,
    b_pos: Vec<f64>,
    /// Effective worker threads (1 = stay sequential; the size
    /// threshold has already been applied).
    threads: usize,
    config: SinkhornConfig,
}

impl SubProblem {
    /// Standard-domain Sinkhorn: scaling vectors against the explicit
    /// Gibbs kernel. Returns `Ok(None)` if the iteration turns
    /// non-finite and the caller should fall back to the log domain.
    ///
    /// Update order matches the log-domain path (row scaling, then
    /// column scaling, residual measured on rows), so both paths
    /// converge on the same cadence.
    fn solve_standard(&self) -> Result<Option<Vec<f64>>> {
        let (np, mp) = (self.np, self.mp);
        let kernel: Vec<f64> = {
            let mut k = vec![0.0f64; np * mp];
            par_chunks_mut(&mut k, self.threads, |start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = self.neg_c_eps[start + off].exp();
                }
            });
            k
        };

        const FLOOR: f64 = 1e-300;
        let mut u = vec![1.0f64; np];
        let mut v = vec![1.0f64; mp];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut row_res = vec![0.0f64; np];
        while iterations < self.config.max_iters {
            iterations += 1;
            // u_i = a_i / Σ_j K_ij v_j (row marginals exact after this).
            par_chunks_mut(&mut u, self.threads, |start, chunk| {
                for (off, ui) in chunk.iter_mut().enumerate() {
                    let pi = start + off;
                    let row = &kernel[pi * mp..(pi + 1) * mp];
                    let mut acc = 0.0;
                    for (kij, vj) in row.iter().zip(&v) {
                        acc += kij * vj;
                    }
                    *ui = self.a_pos[pi] / acc.max(FLOOR);
                }
            });
            // v_j = b_j / Σ_i K_ij u_i (column marginals exact after this).
            par_chunks_mut(&mut v, self.threads, |start, chunk| {
                for (off, vj) in chunk.iter_mut().enumerate() {
                    let pj = start + off;
                    let mut acc = 0.0;
                    for pi in 0..np {
                        acc += kernel[pi * mp + pj] * u[pi];
                    }
                    *vj = self.b_pos[pj] / acc.max(FLOOR);
                }
            });

            // Check marginal residual every few iterations to amortize
            // cost. Per-row contributions are computed elementwise in
            // parallel; the cross-row sum stays sequential so the
            // accumulated residual is thread-count-independent.
            if iterations % 10 == 0 || iterations == self.config.max_iters {
                par_chunks_mut(&mut row_res, self.threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let pi = start + off;
                        let row = &kernel[pi * mp..(pi + 1) * mp];
                        let mut acc = 0.0;
                        for (kij, vj) in row.iter().zip(&v) {
                            acc += kij * vj;
                        }
                        *slot = (u[pi] * acc - self.a_pos[pi]).abs();
                    }
                });
                residual = row_res.iter().sum();
                if !residual.is_finite() {
                    return Ok(None);
                }
                if residual < self.config.tol {
                    break;
                }
            }
        }
        if residual >= self.config.tol && iterations >= self.config.max_iters {
            return Err(OtError::NoConvergence {
                solver: "sinkhorn",
                iterations,
                residual,
            });
        }

        // Materialize π_ij = u_i K_ij v_j on the sub-support.
        let mut plan = vec![0.0f64; np * mp];
        par_chunks_mut(&mut plan, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = u[idx / mp] * kernel[idx] * v[idx % mp];
            }
        });
        Ok(Some(plan))
    }

    /// Log-domain Sinkhorn: dual potentials via log-sum-exp. Stable for
    /// any `ε > 0`; roughly 3–5× the per-cell cost of the standard path.
    fn solve_log(&self) -> Result<Vec<f64>> {
        let (np, mp) = (self.np, self.mp);
        let log_a: Vec<f64> = self.a_pos.iter().map(|x| x.ln()).collect();
        let log_b: Vec<f64> = self.b_pos.iter().map(|x| x.ln()).collect();
        let neg_c_eps = &self.neg_c_eps;

        // Log-domain dual potentials f, g (initialized at zero), stored
        // as (dual / eps) so updates are additive.
        let mut f = vec![0.0f64; np];
        let mut g = vec![0.0f64; mp];

        let log_sum_exp = |row: &[f64]| -> f64 {
            let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if mx == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            let s: f64 = row.iter().map(|&x| (x - mx).exp()).sum();
            mx + s.ln()
        };

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut row_res = vec![0.0f64; np];
        while iterations < self.config.max_iters {
            iterations += 1;
            // f update: f_i = log a_i - LSE_j(-C_ij/eps + g_j). Each
            // chunk owns its rows and a private scratch buffer.
            par_chunks_mut(&mut f, self.threads, |start, chunk| {
                let mut scratch = vec![0.0f64; mp];
                for (off, fi) in chunk.iter_mut().enumerate() {
                    let pi = start + off;
                    for pj in 0..mp {
                        scratch[pj] = neg_c_eps[pi * mp + pj] + g[pj];
                    }
                    *fi = log_a[pi] - log_sum_exp(&scratch);
                }
            });
            // g update (column-parallel; strided kernel reads).
            par_chunks_mut(&mut g, self.threads, |start, chunk| {
                let mut scratch = vec![0.0f64; np];
                for (off, gj) in chunk.iter_mut().enumerate() {
                    let pj = start + off;
                    for pi in 0..np {
                        scratch[pi] = neg_c_eps[pi * mp + pj] + f[pi];
                    }
                    *gj = log_b[pj] - log_sum_exp(&scratch);
                }
            });

            // Residual cadence as in the standard path; after the g
            // update column marginals are exact, so measure rows.
            if iterations % 10 == 0 || iterations == self.config.max_iters {
                par_chunks_mut(&mut row_res, self.threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let pi = start + off;
                        let mut row_sum = 0.0;
                        for pj in 0..mp {
                            row_sum += (neg_c_eps[pi * mp + pj] + f[pi] + g[pj]).exp();
                        }
                        *slot = (row_sum - self.a_pos[pi]).abs();
                    }
                });
                residual = row_res.iter().sum();
                if residual < self.config.tol {
                    break;
                }
            }
        }
        if residual >= self.config.tol && iterations >= self.config.max_iters {
            return Err(OtError::NoConvergence {
                solver: "sinkhorn",
                iterations,
                residual,
            });
        }

        // Materialize the plan on the positive sub-support.
        let mut plan = vec![0.0f64; np * mp];
        par_chunks_mut(&mut plan, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = (neg_c_eps[idx] + f[idx / mp] + g[idx % mp]).exp();
            }
        });
        Ok(plan)
    }

    /// Round to the exact feasible polytope (Altschuler–Weed–Rigollet,
    /// NeurIPS 2017): scale down over-full rows, then over-full columns,
    /// then restore the tiny missing mass with a rank-one correction. The
    /// result satisfies the coupling constraints to machine precision, so a
    /// Sinkhorn plan is a drop-in replacement for an exact plan downstream.
    /// Row/column passes are chunk-parallel (each output owned by one
    /// thread, accumulated in fixed order); the scalar mass totals are
    /// summed sequentially — thread-count-independent throughout.
    fn round_to_feasible(&self, mut sub: Vec<f64>) -> Vec<f64> {
        let (np, mp) = (self.np, self.mp);
        let (a_pos, b_pos) = (&self.a_pos, &self.b_pos);
        // Over-full rows: whole rows are chunk units, so each thread
        // computes its rows' sums and rescales them locally.
        par_rows_mut(&mut sub, mp, self.threads, |pi, row| {
            let r: f64 = row.iter().sum();
            if r > a_pos[pi] && r > 0.0 {
                let scale = a_pos[pi] / r;
                for v in row {
                    *v *= scale;
                }
            }
        });
        // Over-full columns: per-column sums scan all rows (strided).
        let mut col_scale = vec![1.0f64; mp];
        par_chunks_mut(&mut col_scale, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pj = start + off;
                let mut col_sum = 0.0;
                for pi in 0..np {
                    col_sum += sub[pi * mp + pj];
                }
                if col_sum > b_pos[pj] && col_sum > 0.0 {
                    *slot = b_pos[pj] / col_sum;
                }
            }
        });
        par_rows_mut(&mut sub, mp, self.threads, |_, row| {
            for (v, s) in row.iter_mut().zip(&col_scale) {
                *v *= s;
            }
        });
        // Missing row/column mass after the down-scaling.
        let mut err_a = vec![0.0f64; np];
        par_chunks_mut(&mut err_a, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pi = start + off;
                let r: f64 = sub[pi * mp..(pi + 1) * mp].iter().sum();
                *slot = (a_pos[pi] - r).max(0.0);
            }
        });
        let mut err_b = vec![0.0f64; mp];
        par_chunks_mut(&mut err_b, self.threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let pj = start + off;
                let mut col_sum = 0.0;
                for pi in 0..np {
                    col_sum += sub[pi * mp + pj];
                }
                *slot = b_pos[pj] - col_sum;
            }
        });
        let err_total: f64 = err_a.iter().sum();
        if err_total > 0.0 {
            par_rows_mut(&mut sub, mp, self.threads, |pi, row| {
                if err_a[pi] == 0.0 {
                    return;
                }
                for (v, eb) in row.iter_mut().zip(&err_b) {
                    *v += err_a[pi] * eb.max(0.0) / err_total;
                }
            });
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteDistribution;
    use crate::solvers::monotone::solve_monotone_1d;

    #[test]
    fn marginals_match_within_tolerance() {
        let support_a = [0.0, 1.0, 2.0];
        let support_b = [0.5, 1.5];
        let a = [0.3, 0.4, 0.3];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        for (have, want) in plan.row_marginal().iter().zip(&a) {
            assert!((have - want).abs() < 1e-6);
        }
        for (have, want) in plan.col_marginal().iter().zip(&b) {
            assert!((have - want).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_approaches_exact_as_epsilon_shrinks() {
        let mu = DiscreteDistribution::new(vec![-1.0, 0.0, 1.0, 2.0], vec![0.25, 0.25, 0.25, 0.25])
            .unwrap();
        let nu = DiscreteDistribution::new(vec![0.0, 1.0, 3.0], vec![0.5, 0.3, 0.2]).unwrap();
        let cost = CostMatrix::squared_euclidean(mu.support(), nu.support()).unwrap();
        let exact = solve_monotone_1d(&mu, &nu)
            .unwrap()
            .transport_cost(&cost)
            .unwrap();

        let mut prev_gap = f64::INFINITY;
        for eps in [1.0, 0.3, 0.1] {
            let plan = sinkhorn(
                mu.masses(),
                nu.masses(),
                &cost,
                SinkhornConfig {
                    epsilon: eps,
                    max_iters: 200_000,
                    tol: 1e-6,
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            let c = plan.transport_cost(&cost).unwrap();
            let gap = (c - exact).abs();
            assert!(
                gap <= prev_gap + 1e-9,
                "gap should shrink with eps: eps={eps}, gap={gap}, prev={prev_gap}"
            );
            prev_gap = gap;
        }
        assert!(prev_gap < 0.05, "final gap {prev_gap}");
    }

    #[test]
    fn small_epsilon_is_stable_in_log_domain() {
        // eps = 1e-3 with costs up to 9 would overflow naive exp(-C/eps);
        // the log-domain form must survive and stay close to exact.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 3.0], &[0.0, 3.0]).unwrap();
        let plan = sinkhorn(
            &a,
            &b,
            &cost,
            SinkhornConfig {
                epsilon: 1e-3,
                max_iters: 20_000,
                tol: 1e-10,
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        // Optimal plan is the identity pairing.
        assert!((plan.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((plan.get(1, 1) - 0.5).abs() < 1e-6);
        assert!(plan.get(0, 1) < 1e-6);
    }

    #[test]
    fn zero_mass_atoms_are_ignored() {
        let a = [0.5, 0.0, 0.5];
        let b = [1.0, 0.0];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0, 2.0], &[1.0, 5.0]).unwrap();
        let plan = sinkhorn(&a, &b, &cost, SinkhornConfig::default()).unwrap();
        assert!(plan.row_marginal()[1].abs() < 1e-12);
        assert!(plan.col_marginal()[1].abs() < 1e-12);
        assert!((plan.total_mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_invalid_config_and_inputs() {
        let cost = CostMatrix::squared_euclidean(&[0.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost, SinkhornConfig::with_epsilon(0.0)).is_err());
        assert!(sinkhorn(&[], &[1.0], &cost, SinkhornConfig::default()).is_err());
        assert!(sinkhorn(&[1.0], &[-1.0], &cost, SinkhornConfig::default()).is_err());
        let cost2 = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0]).unwrap();
        assert!(sinkhorn(&[1.0], &[1.0], &cost2, SinkhornConfig::default()).is_err());
    }

    #[test]
    fn parallel_kernels_bit_identical_to_sequential() {
        // The in-kernel determinism contract: chunking the scaling
        // updates across any thread count returns the *exact same
        // bytes* as the sequential solve. `parallel_min_cells = 1`
        // forces the chunked path even on this small problem; epsilons
        // straddle the standard/log-domain switch so both paths are
        // pinned.
        // Standard-domain leg: 23 × 17 kernel, max-cost/eps ≈ 9 so the
        // contraction is strong and the fast path converges.
        let support_a: Vec<f64> = (0..23).map(|i| i as f64 * 0.031).collect();
        let support_b: Vec<f64> = (0..17).map(|i| 0.01 + i as f64 * 0.04).collect();
        let a: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| 1.0 + ((i * 3) % 4) as f64).collect();
        let cost = CostMatrix::squared_euclidean(&support_a, &support_b).unwrap();
        assert_parallel_matches_sequential(&a, &b, &cost, 0.05);

        // Log-domain leg: a shared support with equal marginals keeps
        // the near-diagonal kernel convergent at an eps small enough
        // (max-cost/eps > 500) to force the log-sum-exp path.
        let support: Vec<f64> = (0..23).map(|i| i as f64 * 0.31).collect();
        let cost_sq = CostMatrix::squared_euclidean(&support, &support).unwrap();
        let m: Vec<f64> = (0..23).map(|i| 1.0 + ((i * 5) % 7) as f64).collect();
        assert_parallel_matches_sequential(&m, &m, &cost_sq, 1e-4);
    }

    /// Chunked (2/3/7 threads, threshold forced to 1 cell) vs
    /// sequential solve of the same problem: the plans' bytes must
    /// match exactly.
    fn assert_parallel_matches_sequential(a: &[f64], b: &[f64], cost: &CostMatrix, eps: f64) {
        let sequential = sinkhorn(
            a,
            b,
            cost,
            SinkhornConfig {
                epsilon: eps,
                threads: 1,
                ..SinkhornConfig::default()
            },
        )
        .unwrap();
        for threads in [2usize, 3, 7] {
            let parallel = sinkhorn(
                a,
                b,
                cost,
                SinkhornConfig {
                    epsilon: eps,
                    threads,
                    parallel_min_cells: Some(1),
                    ..SinkhornConfig::default()
                },
            )
            .unwrap();
            for i in 0..a.len() {
                for j in 0..b.len() {
                    assert_eq!(
                        parallel.get(i, j).to_bits(),
                        sequential.get(i, j).to_bits(),
                        "eps = {eps}, threads = {threads}, cell ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn standard_domain_agrees_with_log_domain() {
        // Both iteration domains share one fixed point; drive them on
        // the same sub-problem directly and compare the unrounded plans
        // within the convergence tolerance.
        let mu_support = [0.0, 1.0, 2.0, 3.0];
        let nu_support = [0.5, 1.5, 2.5];
        let a = [0.3, 0.2, 0.3, 0.2];
        let b = [0.4, 0.3, 0.3];
        let cost = CostMatrix::squared_euclidean(&mu_support, &nu_support).unwrap();
        let eps = 0.05; // max-cost/eps = 125 → standard-domain eligible
        let config = SinkhornConfig {
            epsilon: eps,
            tol: 1e-9,
            max_iters: 200_000,
            ..SinkhornConfig::default()
        };
        let (np, mp) = (a.len(), b.len());
        let mut neg_c_eps = vec![0.0f64; np * mp];
        for i in 0..np {
            for j in 0..mp {
                neg_c_eps[i * mp + j] = -cost.get(i, j) / eps;
            }
        }
        let sub = SubProblem {
            np,
            mp,
            neg_c_eps,
            a_pos: a.to_vec(),
            b_pos: b.to_vec(),
            threads: 1,
            config,
        };
        let standard = sub.solve_standard().unwrap().expect("stable inputs");
        let log = sub.solve_log().unwrap();
        for (idx, (s, l)) in standard.iter().zip(&log).enumerate() {
            assert!((s - l).abs() < 1e-6, "cell {idx}: standard {s} vs log {l}");
        }
    }

    #[test]
    fn larger_epsilon_spreads_mass() {
        // Entropy regularization blurs the plan: off-diagonal mass grows
        // with eps.
        let a = [0.5, 0.5];
        let b = [0.5, 0.5];
        let cost = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        let sharp = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(0.01)).unwrap();
        let blurry = sinkhorn(&a, &b, &cost, SinkhornConfig::with_epsilon(10.0)).unwrap();
        assert!(blurry.get(0, 1) > sharp.get(0, 1));
        // At huge eps the plan approaches the independent coupling 0.25.
        assert!((blurry.get(0, 1) - 0.25).abs() < 0.05);
    }
}
