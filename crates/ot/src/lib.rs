//! # otr-ot — optimal-transport substrate for `ot-fair-repair`
//!
//! A from-scratch implementation of the discrete optimal-transport tooling
//! the paper relies on (Sections III–IV):
//!
//! * [`discrete`] — discrete probability distributions on ordered supports
//!   ([`DiscreteDistribution`]).
//! * [`cost`] — `L_p^p` cost matrices on product supports (Equation 5's
//!   `C(x₀, x₁) = ‖x₀ − x₁‖_p^p`).
//! * [`coupling`] — the [`OtPlan`] type: a joint distribution over the
//!   product support with marginal-validation and transport-cost queries.
//! * [`solvers::monotone`] — **exact 1-D OT** via the monotone
//!   (north-west-corner) coupling, provably optimal for convex costs on
//!   sorted supports; the hot path of Algorithm 1.
//! * [`solvers::simplex`] — an exact **transportation-simplex (MODI)**
//!   solver for arbitrary cost matrices, used as ground truth in tests and
//!   for non-1-D problems.
//! * [`solvers::sinkhorn`] — the **Sinkhorn–Knopp** entropic solver
//!   (absorption-stabilized fast path with a log-domain fallback, plus
//!   an optional warm-started ε-scaling schedule, [`EpsSchedule`]), the
//!   `O(nQ²/ε²)` alternative discussed in Section IV-A1.
//! * [`kernel`] — the **Gibbs-kernel representation seam**:
//!   [`KernelRep`] serves every entropic matvec either dense or — on
//!   product-grid squared-Euclidean costs — factorized as `Kx ⊗ Ky`
//!   (two `O(nQ³)` axis passes instead of one `O(nQ⁴)` sweep), selected
//!   by [`KernelChoice`] (`auto|dense|separable`, `OTR_KERNEL` env).
//! * [`solvers::backend`] — the **unified solver seam**: [`SolverBackend`]
//!   and the [`Solver1d`] interface own backend selection, epsilon
//!   validation, and the Sinkhorn→simplex fallback policy; every
//!   downstream solve dispatches through it.
//! * [`barycentre`] — Wasserstein-2 barycentres (Equation 7): the exact
//!   1-D quantile-interpolation construction (McCann interpolation) pushed
//!   onto a fixed support, plus the entropic fixed-support
//!   iterative-Bregman barycentre as a regularized alternative.
//! * [`wasserstein`] — `W_p` distances between discrete distributions on
//!   ordered supports (closed-form 1-D CDF formula, cross-checked against
//!   the solvers).
//!
//! The expensive kernels (Sinkhorn scaling updates, barycentre matvecs)
//! are chunk-parallel with **bit-identical output for any thread
//! count**; see `docs/determinism.md` at the workspace root.
//!
//! ## Example
//!
//! Solve a 1-D optimal-transport problem through the unified seam and
//! check the plan is a valid coupling:
//!
//! ```
//! use otr_ot::{DiscreteDistribution, Solver1d as _, SolverBackend};
//!
//! let mu = DiscreteDistribution::new(vec![0.0, 1.0, 2.0], vec![0.2, 0.5, 0.3]).unwrap();
//! let nu = DiscreteDistribution::new(vec![0.5, 1.5], vec![0.6, 0.4]).unwrap();
//! let plan = SolverBackend::ExactMonotone.solve_1d(&mu, &nu).unwrap();
//! plan.validate_marginals(mu.masses(), nu.masses()).unwrap();
//! ```

pub mod barycentre;
pub mod cost;
pub mod coupling;
pub mod discrete;
pub mod error;
pub mod interp;
pub mod kernel;
pub mod solvers;
pub mod wasserstein;

pub use barycentre::{
    entropic_barycentre, entropic_barycentre_grid2d, entropic_barycentre_grid_nd,
    entropic_barycentre_points2d, entropic_barycentre_with, quantile_barycentre, BarycentreConfig,
    BarycentreDiagnostics,
};
pub use cost::CostMatrix;
pub use coupling::OtPlan;
pub use discrete::DiscreteDistribution;
pub use error::OtError;
pub use interp::MidpointCdf;
pub use kernel::{AxisKernel, KernelChoice, KernelRep, KERNEL_ENV};
pub use solvers::backend::{Solver1d, SolverBackend};
pub use solvers::monotone::solve_monotone_1d;
pub use solvers::simplex::solve_transportation_simplex;
pub use solvers::sinkhorn::{sinkhorn, sinkhorn_warm, EpsSchedule, SinkhornConfig, SinkhornDuals};
pub use wasserstein::{wasserstein_1d, wasserstein_from_plan};
