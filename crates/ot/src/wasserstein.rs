//! Wasserstein distances between discrete distributions.
//!
//! The 1-D `W_p` has the closed quantile form
//! `W_p^p(µ, ν) = ∫₀¹ |F_µ⁻¹(q) − F_ν⁻¹(q)|^p dq`,
//! which we evaluate exactly for discrete measures by sweeping the merged
//! CDF breakpoints — no solver needed. It doubles as an oracle for the
//! monotone/simplex/Sinkhorn solvers in tests, and as the data-damage
//! metric of the partial-repair ablation.

use crate::discrete::DiscreteDistribution;
use crate::error::{OtError, Result};

/// Exact 1-D `W_p^p(µ, ν)` via the quantile-function formula.
///
/// # Errors
/// Requires `p ≥ 1`.
pub fn wasserstein_1d(mu: &DiscreteDistribution, nu: &DiscreteDistribution, p: f64) -> Result<f64> {
    if p < 1.0 || !p.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "p",
            reason: format!("must be >= 1 and finite, got {p}"),
        });
    }
    // Sweep the merged cumulative-probability breakpoints. Between two
    // consecutive breakpoints both quantile functions are constant, so the
    // integral is piecewise exact.
    let cdf_mu = mu.cdf();
    let cdf_nu = nu.cdf();
    let mut acc = 0.0;
    let mut q_prev = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < cdf_mu.len() && j < cdf_nu.len() {
        let q_next = cdf_mu[i].min(cdf_nu[j]);
        let seg = q_next - q_prev;
        if seg > 0.0 {
            let d = (mu.support()[i] - nu.support()[j]).abs();
            acc += seg * if p == 2.0 { d * d } else { d.powf(p) };
        }
        // Advance whichever CDF reached the breakpoint (both on ties).
        if cdf_mu[i] <= q_next + f64::EPSILON {
            i += 1;
        }
        if cdf_nu[j] <= q_next + f64::EPSILON {
            j += 1;
        }
        q_prev = q_next;
    }
    Ok(acc)
}

/// Exact 1-D `W₂(µ, ν)` (the square root of [`wasserstein_1d`] at `p=2`).
///
/// # Errors
/// Never fails for valid distributions; signature kept fallible for
/// uniformity.
pub fn w2(mu: &DiscreteDistribution, nu: &DiscreteDistribution) -> Result<f64> {
    Ok(wasserstein_1d(mu, nu, 2.0)?.sqrt())
}

/// Transport cost of an explicit plan under the `L_p^p` ground cost on the
/// two supports — `W_p^p` when the plan is optimal.
///
/// # Errors
/// Propagates shape mismatches.
pub fn wasserstein_from_plan(
    plan: &crate::OtPlan,
    source_support: &[f64],
    target_support: &[f64],
    p: f64,
) -> Result<f64> {
    let cost = crate::cost::CostMatrix::lp(source_support, target_support, p)?;
    plan.transport_cost(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::monotone::solve_monotone_1d;

    fn dd(support: &[f64], masses: &[f64]) -> DiscreteDistribution {
        DiscreteDistribution::new(support.to_vec(), masses.to_vec()).unwrap()
    }

    #[test]
    fn identical_is_zero() {
        let mu = dd(&[0.0, 1.0, 5.0], &[0.2, 0.5, 0.3]);
        assert!(wasserstein_1d(&mu, &mu, 2.0).unwrap() < 1e-15);
        assert!(wasserstein_1d(&mu, &mu, 1.0).unwrap() < 1e-15);
    }

    #[test]
    fn point_masses_distance() {
        let mu = dd(&[1.0], &[1.0]);
        let nu = dd(&[4.0], &[1.0]);
        assert!((wasserstein_1d(&mu, &nu, 1.0).unwrap() - 3.0).abs() < 1e-12);
        assert!((wasserstein_1d(&mu, &nu, 2.0).unwrap() - 9.0).abs() < 1e-12);
        assert!((w2(&mu, &nu).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn translation_invariance_of_shape() {
        // W_p(mu, mu + c)^p = |c|^p.
        let mu = dd(&[0.0, 2.0, 3.0], &[0.5, 0.3, 0.2]);
        let nu = dd(&[1.5, 3.5, 4.5], &[0.5, 0.3, 0.2]);
        assert!((wasserstein_1d(&mu, &nu, 2.0).unwrap() - 2.25).abs() < 1e-12);
        assert!((wasserstein_1d(&mu, &nu, 1.0).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_monotone_plan_cost() {
        let mu = dd(&[-2.0, -1.0, 0.5, 2.2], &[0.1, 0.4, 0.3, 0.2]);
        let nu = dd(&[-1.5, 0.0, 1.0], &[0.3, 0.4, 0.3]);
        let direct = wasserstein_1d(&mu, &nu, 2.0).unwrap();
        let plan = solve_monotone_1d(&mu, &nu).unwrap();
        let via_plan = wasserstein_from_plan(&plan, mu.support(), nu.support(), 2.0).unwrap();
        assert!(
            (direct - via_plan).abs() < 1e-10,
            "direct {direct} vs plan {via_plan}"
        );
    }

    #[test]
    fn triangle_inequality_w2() {
        let a = dd(&[0.0, 1.0], &[0.5, 0.5]);
        let b = dd(&[0.5, 2.0], &[0.4, 0.6]);
        let c = dd(&[1.0, 3.0], &[0.7, 0.3]);
        let ab = w2(&a, &b).unwrap();
        let bc = w2(&b, &c).unwrap();
        let ac = w2(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = dd(&[0.0, 1.0, 2.0], &[0.3, 0.3, 0.4]);
        let b = dd(&[-1.0, 0.5], &[0.6, 0.4]);
        assert!(
            (wasserstein_1d(&a, &b, 2.0).unwrap() - wasserstein_1d(&b, &a, 2.0).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn rejects_bad_p() {
        let a = dd(&[0.0], &[1.0]);
        assert!(wasserstein_1d(&a, &a, 0.5).is_err());
        assert!(wasserstein_1d(&a, &a, f64::INFINITY).is_err());
    }
}
