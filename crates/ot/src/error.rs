//! Error type for the optimal-transport substrate.

use std::fmt;

/// Errors produced by OT construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum OtError {
    /// A support or mass vector was empty.
    EmptyInput(&'static str),
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Context of the mismatch.
        what: &'static str,
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A mass vector was invalid (negative, NaN, or zero total).
    InvalidMass(String),
    /// A support violated an ordering requirement.
    UnsortedSupport(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An iterative solver failed to converge within its budget.
    NoConvergence {
        /// Solver name.
        solver: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual when the budget ran out.
        residual: f64,
    },
    /// Internal invariant violation in a solver (reported rather than
    /// panicking so that batch experiments can skip a pathological case).
    SolverInternal(String),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtError::EmptyInput(what) => write!(f, "empty input: {what}"),
            OtError::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch in {what}: {left} vs {right}")
            }
            OtError::InvalidMass(msg) => write!(f, "invalid mass vector: {msg}"),
            OtError::UnsortedSupport(what) => {
                write!(f, "support must be strictly increasing: {what}")
            }
            OtError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            OtError::NoConvergence {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            OtError::SolverInternal(msg) => write!(f, "solver internal error: {msg}"),
        }
    }
}

impl std::error::Error for OtError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, OtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OtError::EmptyInput("mu").to_string().contains("mu"));
        assert!(OtError::NoConvergence {
            solver: "sinkhorn",
            iterations: 10,
            residual: 1e-3
        }
        .to_string()
        .contains("sinkhorn"));
        assert!(OtError::UnsortedSupport("target")
            .to_string()
            .contains("strictly increasing"));
    }
}
