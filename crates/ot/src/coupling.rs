//! Transport plans (couplings): joint distributions over the product of a
//! source and a target support, with marginal validation — the `π` of
//! Equation (5) and the `π*_s` outputs of Algorithm 1.

use serde::{Deserialize, Serialize};

use crate::cost::CostMatrix;
use crate::error::{OtError, Result};

/// Tolerance used when validating that a plan's marginals match the
/// prescribed ones.
pub const MARGINAL_TOL: f64 = 1e-8;

/// A dense transport plan `π ∈ ℝ^{n×m}`, with row marginal `µ` (source)
/// and column marginal `ν` (target).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OtPlan {
    rows: usize,
    cols: usize,
    /// Row-major joint masses.
    mass: Vec<f64>,
}

impl OtPlan {
    /// Wrap a row-major mass matrix as a plan, validating shape and
    /// non-negativity. Use [`OtPlan::validate_marginals`] to check the
    /// coupling constraints against specific marginals.
    ///
    /// # Errors
    /// Rejects empty, misshapen, negative, NaN, or zero-total mass.
    pub fn from_dense(rows: usize, cols: usize, mass: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(OtError::EmptyInput("plan dimensions"));
        }
        if mass.len() != rows * cols {
            return Err(OtError::LengthMismatch {
                what: "plan mass vs dimensions",
                left: mass.len(),
                right: rows * cols,
            });
        }
        let mut total = 0.0;
        for (k, &m) in mass.iter().enumerate() {
            if m < 0.0 || m.is_nan() {
                return Err(OtError::InvalidMass(format!(
                    "plan mass[{k}] = {m} is negative or NaN"
                )));
            }
            total += m;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(OtError::InvalidMass(format!("plan total mass {total}")));
        }
        Ok(Self { rows, cols, mass })
    }

    /// Number of source points.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target points.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Joint mass transported from source `i` to target `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.mass[i * self.cols + j]
    }

    /// Row `i` of the plan — the conditional transport pattern of source
    /// point `i`, which Algorithm 2 normalizes into the multinomial of
    /// Equation (15).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.mass[i * self.cols..(i + 1) * self.cols]
    }

    /// Row marginal (push-forward onto the source): `Σ_j π[i][j]`.
    pub fn row_marginal(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Column marginal (push-forward onto the target): `Σ_i π[i][j]`.
    pub fn col_marginal(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, &m) in self.row(i).iter().enumerate() {
                out[j] += m;
            }
        }
        out
    }

    /// Verify the coupling constraints `T_{x₀}♯π = µ`, `T_{x₁}♯π = ν`
    /// within [`MARGINAL_TOL`].
    ///
    /// # Errors
    /// Returns [`OtError::SolverInternal`] describing the first violated
    /// constraint.
    pub fn validate_marginals(&self, mu: &[f64], nu: &[f64]) -> Result<()> {
        if mu.len() != self.rows {
            return Err(OtError::LengthMismatch {
                what: "row marginal",
                left: mu.len(),
                right: self.rows,
            });
        }
        if nu.len() != self.cols {
            return Err(OtError::LengthMismatch {
                what: "column marginal",
                left: nu.len(),
                right: self.cols,
            });
        }
        for (i, (&have, &want)) in self.row_marginal().iter().zip(mu).enumerate() {
            if (have - want).abs() > MARGINAL_TOL {
                return Err(OtError::SolverInternal(format!(
                    "row marginal {i}: {have} vs {want}"
                )));
            }
        }
        for (j, (&have, &want)) in self.col_marginal().iter().zip(nu).enumerate() {
            if (have - want).abs() > MARGINAL_TOL {
                return Err(OtError::SolverInternal(format!(
                    "column marginal {j}: {have} vs {want}"
                )));
            }
        }
        Ok(())
    }

    /// Expected transport cost `⟨π, C⟩ = Σ_{ij} π[i][j] C[i][j]` —
    /// the objective of Equation (5).
    ///
    /// # Errors
    /// Returns [`OtError::LengthMismatch`] on shape mismatch.
    pub fn transport_cost(&self, cost: &CostMatrix) -> Result<f64> {
        if cost.rows() != self.rows || cost.cols() != self.cols {
            return Err(OtError::LengthMismatch {
                what: "plan vs cost matrix",
                left: self.rows * self.cols,
                right: cost.rows() * cost.cols(),
            });
        }
        let mut acc = 0.0;
        for i in 0..self.rows {
            let r = self.row(i);
            let c = cost.row(i);
            for (m, cc) in r.iter().zip(c) {
                acc += m * cc;
            }
        }
        Ok(acc)
    }

    /// Barycentric projection of source point `i`: the conditional mean of
    /// the target given source `i`, `E_π[y | xᵢ]`. Returns `None` when row
    /// `i` carries no mass.
    pub fn barycentric_projection(&self, i: usize, target_support: &[f64]) -> Option<f64> {
        let row = self.row(i);
        let mass: f64 = row.iter().sum();
        if mass <= 0.0 {
            return None;
        }
        let weighted: f64 = row.iter().zip(target_support).map(|(m, y)| m * y).sum();
        Some(weighted / mass)
    }

    /// The total transported mass (≈ 1 for a probability coupling).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plan() -> OtPlan {
        // 2x2 product coupling of [0.4, 0.6] x [0.5, 0.5].
        OtPlan::from_dense(2, 2, vec![0.2, 0.2, 0.3, 0.3]).unwrap()
    }

    #[test]
    fn from_dense_rejects_invalid() {
        assert!(OtPlan::from_dense(0, 2, vec![]).is_err());
        assert!(OtPlan::from_dense(2, 2, vec![0.5; 3]).is_err());
        assert!(OtPlan::from_dense(1, 2, vec![-0.5, 1.5]).is_err());
        assert!(OtPlan::from_dense(1, 1, vec![0.0]).is_err());
        assert!(OtPlan::from_dense(1, 1, vec![f64::NAN]).is_err());
    }

    #[test]
    fn marginals() {
        let p = simple_plan();
        assert_eq!(p.row_marginal(), vec![0.4, 0.6]);
        assert_eq!(p.col_marginal(), vec![0.5, 0.5]);
        p.validate_marginals(&[0.4, 0.6], &[0.5, 0.5]).unwrap();
        assert!(p.validate_marginals(&[0.5, 0.5], &[0.5, 0.5]).is_err());
        assert!(p.validate_marginals(&[0.4], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn transport_cost_hand_computed() {
        let p = simple_plan();
        let c = CostMatrix::squared_euclidean(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        // cost = 0.2*0 + 0.2*1 + 0.3*1 + 0.3*0 = 0.5
        assert!((p.transport_cost(&c).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn transport_cost_shape_mismatch() {
        let p = simple_plan();
        let c = CostMatrix::squared_euclidean(&[0.0], &[0.0, 1.0]).unwrap();
        assert!(p.transport_cost(&c).is_err());
    }

    #[test]
    fn barycentric_projection_conditional_mean() {
        let p = simple_plan();
        // Row 0 mass [0.2, 0.2] over targets [10, 20] -> mean 15.
        assert_eq!(p.barycentric_projection(0, &[10.0, 20.0]), Some(15.0));
    }

    #[test]
    fn barycentric_projection_empty_row() {
        let p = OtPlan::from_dense(2, 1, vec![1.0, 0.0]).unwrap();
        assert_eq!(p.barycentric_projection(1, &[5.0]), None);
    }

    #[test]
    fn total_mass_one() {
        assert!((simple_plan().total_mass() - 1.0).abs() < 1e-15);
    }
}
