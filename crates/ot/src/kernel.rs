//! Gibbs-kernel representations — the `KernelRep` seam behind every
//! entropic matvec in the workspace.
//!
//! The entropic solvers (Sinkhorn scaling updates, Bregman-barycentre
//! projections) spend essentially all of their time computing
//! `out = K v` against the Gibbs kernel `K_ij = exp(−C_ij / ε)`. For an
//! arbitrary cost that kernel is an `n × n` dense matrix and the matvec
//! is `O(n²)`. But for the **squared-Euclidean cost on a 2-D product
//! grid** — the joint-repair setting, where the support is
//! `Q² = gx × gy` flattened row-major — the kernel factorizes as a
//! Kronecker product:
//!
//! ```text
//! C[(i,j),(k,l)] = (gx[i]−gx[k])² + (gy[j]−gy[l])²
//! ⇒ K = Kx ⊗ Ky,   Kx[i,k] = exp(−(gx[i]−gx[k])²/ε),
//!                  Ky[j,l] = exp(−(gy[j]−gy[l])²/ε)
//! ```
//!
//! so the matvec contracts one axis at a time:
//!
//! ```text
//! tmp[k, j] = Σ_l Ky[j,l] · v[k, l]      (contract y)
//! out[i, j] = Σ_k Kx[i,k] · tmp[k, j]    (contract x)
//! ```
//!
//! — two `O(nQ³)` passes instead of one `O(nQ⁴)` sweep, a `~nQ/2`-fold
//! saving (12× at `nQ = 24`).
//!
//! The same factorization holds on a **d-axis product grid** (the
//! ≥3-feature joint-repair setting): `K = K₁ ⊗ … ⊗ K_d`, and
//! [`KernelRep::SeparableNd`] contracts one axis per pass —
//! `O(n·Σnᵢ)` total per matvec instead of `O(n²)`, where `n = Πnᵢ`.
//! At `d = 3`, `nQ = 16` the dense kernel is `nQ⁶ ≈ 1.7e7` cells per
//! *row block* (16.8M cells, 134 MB — infeasible to iterate), while the
//! separable matvec touches `n·3nQ ≈ 2.0e5` cells: separability is the
//! enabling representation, not an optimization.
//!
//! **Determinism.** Each pass writes every output element from exactly
//! one thread ([`otr_par::par_rows_mut`] chunks whole rows of the outer
//! axis) and accumulates its contraction in a fixed sequential order
//! (`l` ascending, then `k` ascending), so the separable matvec is
//! **bit-identical for any thread count** — the same contract the dense
//! matvec honours. Separable and dense outputs *group the same sum
//! differently*, so they agree to rounding (~1e-12 relative; pinned at
//! 1e-9 by `tests/kernel_equivalence.rs`) but are not bitwise equal:
//! the kernel representation is part of the solve's definition, like an
//! ε-schedule, not a free runtime knob.
//!
//! [`KernelChoice`] is the selection policy: `Dense` and `Separable`
//! force a representation, `Auto` (the default) consults the
//! [`KERNEL_ENV`] environment variable and otherwise picks separable
//! whenever the cost is grid-separable.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use otr_par::{par_chunks_mut, par_rows_mut};

use crate::error::OtError;

/// Environment variable steering [`KernelChoice::Auto`]: `dense`,
/// `separable`, or `auto` (anything else is ignored). Explicit config
/// choices always win over the environment.
pub const KERNEL_ENV: &str = "OTR_KERNEL";

/// Which Gibbs-kernel representation an entropic solve uses on
/// separable (product-grid squared-Euclidean) costs.
///
/// Serialized like the other config enums (`"Auto"`, `"Dense"`,
/// `"Separable"`); the CLI spelling is lowercase (`auto|dense|separable`,
/// via [`FromStr`]/[`fmt::Display`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Consult [`KERNEL_ENV`], else pick separable whenever the cost is
    /// grid-separable. The default.
    #[default]
    Auto,
    /// Always the dense `n × n` kernel, even on product grids.
    Dense,
    /// Prefer the factorized `Kx ⊗ Ky` kernel; solves whose cost is not
    /// grid-separable (or whose support was filtered) fall back to
    /// dense — the preference is never an error.
    Separable,
}

impl KernelChoice {
    /// Resolve the choice for one solve: `true` = use the separable
    /// representation. `separable_available` says whether the solve's
    /// cost actually factorizes (product-grid squared-Euclidean support,
    /// no zero-mass filtering); an unavailable preference degrades to
    /// dense rather than erroring. `Auto` consults [`KERNEL_ENV`]
    /// first (unparseable values are ignored).
    pub fn resolve(self, separable_available: bool) -> bool {
        let effective = match self {
            KernelChoice::Auto => std::env::var(KERNEL_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<KernelChoice>().ok())
                .unwrap_or(KernelChoice::Auto),
            explicit => explicit,
        };
        match effective {
            KernelChoice::Dense => false,
            KernelChoice::Separable | KernelChoice::Auto => separable_available,
        }
    }
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Dense => "dense",
            KernelChoice::Separable => "separable",
        })
    }
}

impl FromStr for KernelChoice {
    type Err = OtError;

    fn from_str(s: &str) -> Result<Self, OtError> {
        match s {
            "auto" => Ok(KernelChoice::Auto),
            "dense" => Ok(KernelChoice::Dense),
            "separable" => Ok(KernelChoice::Separable),
            other => Err(OtError::InvalidParameter {
                name: "kernel",
                reason: format!(
                    "unknown kernel `{other}` (expected `auto`, `dense`, or `separable`)"
                ),
            }),
        }
    }
}

/// One axis factor of a [`KernelRep::SeparableNd`] kernel: the Gibbs
/// kernel of the squared-Euclidean cost restricted to a single grid
/// axis, `K[i,j] = exp(−(g[i]−g[j])²/ε)`.
#[derive(Debug, Clone)]
pub struct AxisKernel {
    /// Axis kernel cells, row-major `n × n`.
    pub k: Vec<f64>,
    /// Grid length of this axis.
    pub n: usize,
}

impl AxisKernel {
    /// Build the axis kernel of grid `g` at temperature `eps`.
    pub fn from_grid(g: &[f64], eps: f64) -> Self {
        let n = g.len();
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let d = g[i] - g[j];
                k[i * n + j] = (-(d * d) / eps).exp();
            }
        }
        AxisKernel { k, n }
    }
}

/// A symmetric Gibbs kernel in one of three representations, behind one
/// [`matvec`](KernelRep::matvec).
#[derive(Debug, Clone)]
pub enum KernelRep {
    /// The dense `n × n` kernel, row-major.
    Dense {
        /// Kernel cells `exp(−C_ij/ε)`, row-major `n × n`.
        k: Vec<f64>,
        /// Side length.
        n: usize,
    },
    /// The factorized kernel `Kx ⊗ Ky` of a squared-Euclidean cost on
    /// the product grid `gx × gy` (flattened row-major, `y` fastest).
    Separable {
        /// Axis kernel `exp(−(gx[i]−gx[k])²/ε)`, row-major `nx × nx`.
        kx: Vec<f64>,
        /// Axis kernel `exp(−(gy[j]−gy[l])²/ε)`, row-major `ny × ny`.
        ky: Vec<f64>,
        /// `gx` length.
        nx: usize,
        /// `gy` length.
        ny: usize,
    },
    /// The factorized kernel `K₁ ⊗ … ⊗ K_d` of a squared-Euclidean cost
    /// on a d-axis product grid, flattened row-major with the **last
    /// axis fastest**. The d = 2 matvec is bitwise-identical to
    /// [`KernelRep::Separable`] (pinned by `tests/kernel_equivalence.rs`);
    /// the 2-axis variant is kept as the long-standing grid2d spelling.
    SeparableNd {
        /// Per-axis kernels, outermost (slowest-varying) axis first.
        axes: Vec<AxisKernel>,
    },
}

impl KernelRep {
    /// Build the dense `n × n` kernel `exp(−sq_dist(i,j)/ε)`,
    /// chunk-parallel over cells (cells are disjoint, so the bytes are
    /// thread-count-independent).
    pub fn dense_square(
        n: usize,
        eps: f64,
        threads: usize,
        sq_dist: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Self {
        let mut k = vec![0.0f64; n * n];
        par_chunks_mut(&mut k, threads, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let idx = start + off;
                *slot = (-sq_dist(idx / n, idx % n) / eps).exp();
            }
        });
        KernelRep::Dense { k, n }
    }

    /// Build the factorized kernel of the squared-Euclidean cost on the
    /// self-product grid `gx × gy`: two tiny axis kernels (`nx²` and
    /// `ny²` cells — noise next to the `(nx·ny)²` dense build).
    pub fn separable_grid2d(gx: &[f64], gy: &[f64], eps: f64) -> Self {
        let kx = AxisKernel::from_grid(gx, eps);
        let ky = AxisKernel::from_grid(gy, eps);
        KernelRep::Separable {
            kx: kx.k,
            ky: ky.k,
            nx: kx.n,
            ny: ky.n,
        }
    }

    /// Build the factorized kernel of the squared-Euclidean cost on the
    /// d-axis product grid `axes[0] × … × axes[d−1]` (flattened
    /// row-major, last axis fastest): d tiny axis kernels, `Σnᵢ²` cells
    /// total where the dense build would be `(Πnᵢ)²`.
    pub fn separable_grid_nd(axes: &[&[f64]], eps: f64) -> Self {
        KernelRep::SeparableNd {
            axes: axes.iter().map(|g| AxisKernel::from_grid(g, eps)).collect(),
        }
    }

    /// Number of support points the kernel acts on.
    pub fn len(&self) -> usize {
        match self {
            KernelRep::Dense { n, .. } => *n,
            KernelRep::Separable { nx, ny, .. } => nx * ny,
            KernelRep::SeparableNd { axes } => axes.iter().map(|a| a.n).product(),
        }
    }

    /// True when the kernel acts on an empty support.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Matrix cells one matvec actually touches — the work measure the
    /// [`otr_par::kernel_cells`] parallelism threshold compares against
    /// (`n²` dense; `n·(nx + ny)` separable; `n·Σnᵢ` for d axes).
    pub fn work_cells(&self) -> usize {
        match self {
            KernelRep::Dense { n, .. } => n * n,
            KernelRep::Separable { nx, ny, .. } => nx * ny * (nx + ny),
            KernelRep::SeparableNd { axes } => self.len() * axes.iter().map(|a| a.n).sum::<usize>(),
        }
    }

    /// `out = K v` (the kernel is symmetric, so this also serves `Kᵀ v`).
    /// `scratch` must hold `len()` slots (used by the separable passes;
    /// the dense path ignores it).
    ///
    /// Deterministic for any `threads`: every output element is written
    /// by exactly one thread and accumulated in an order fixed by the
    /// representation, never by the chunking.
    ///
    /// # Panics
    /// `v`, `out`, and `scratch` must all hold `len()` elements.
    pub fn matvec(&self, v: &[f64], out: &mut [f64], scratch: &mut [f64], threads: usize) {
        let n = self.len();
        assert_eq!(v.len(), n, "kernel matvec: input length");
        assert_eq!(out.len(), n, "kernel matvec: output length");
        assert_eq!(scratch.len(), n, "kernel matvec: scratch length");
        match self {
            KernelRep::Dense { k, n } => {
                let n = *n;
                par_chunks_mut(out, threads, |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let row = &k[(start + off) * n..(start + off + 1) * n];
                        let mut acc = 0.0;
                        for (kij, vj) in row.iter().zip(v) {
                            acc += kij * vj;
                        }
                        *slot = acc;
                    }
                });
            }
            KernelRep::Separable { kx, ky, nx, ny } => {
                let (nx, ny) = (*nx, *ny);
                // Pass 1 (contract y): tmp[k, j] = Σ_l Ky[j, l] v[k, l].
                // Whole x-rows are the chunk unit; inside a row the
                // (j, l) loops run in a fixed order on one thread.
                par_rows_mut(scratch, ny, threads, |k, tmp_row| {
                    let v_row = &v[k * ny..(k + 1) * ny];
                    for (j, slot) in tmp_row.iter_mut().enumerate() {
                        let ky_row = &ky[j * ny..(j + 1) * ny];
                        let mut acc = 0.0;
                        for (kjl, vl) in ky_row.iter().zip(v_row) {
                            acc += kjl * vl;
                        }
                        *slot = acc;
                    }
                });
                // Pass 2 (contract x): out[i, j] = Σ_k Kx[i, k] tmp[k, j],
                // accumulated over k in ascending order per output row.
                let tmp = &*scratch;
                par_rows_mut(out, ny, threads, |i, out_row| {
                    out_row.fill(0.0);
                    let kx_row = &kx[i * nx..(i + 1) * nx];
                    for (k, &w) in kx_row.iter().enumerate() {
                        let tmp_row = &tmp[k * ny..(k + 1) * ny];
                        for (slot, t) in out_row.iter_mut().zip(tmp_row) {
                            *slot += w * t;
                        }
                    }
                });
            }
            KernelRep::SeparableNd { axes } => {
                let d = axes.len();
                assert!(d > 0, "kernel matvec: SeparableNd needs ≥ 1 axis");
                // suffix[a] = Π axes[a..].n, so suffix[a + 1] is the
                // row length R of the contraction over axis a.
                let mut suffix = vec![1usize; d + 1];
                for a in (0..d).rev() {
                    suffix[a] = suffix[a + 1] * axes[a].n;
                }
                // One contraction pass over axis `a`, viewing the flat
                // tensor as (P, n_a, R) with R = suffix[a + 1]. The
                // accumulation order inside each output row is fixed by
                // the representation (l / k ascending), never by the
                // chunking, and at d = 2 both passes reproduce the
                // 2-axis variant's loops exactly — so the output is
                // bit-identical to `Separable` there and across thread
                // counts everywhere.
                let contract = |a: usize, src: &[f64], dst: &mut [f64]| {
                    let ax = &axes[a];
                    let na = ax.n;
                    if a == d - 1 {
                        // Last axis: contiguous rows of length n_d; per
                        // output j a dot product over l ascending.
                        par_rows_mut(dst, na, threads, |r, dst_row| {
                            let src_row = &src[r * na..(r + 1) * na];
                            for (j, slot) in dst_row.iter_mut().enumerate() {
                                let k_row = &ax.k[j * na..(j + 1) * na];
                                let mut acc = 0.0;
                                for (kjl, vl) in k_row.iter().zip(src_row) {
                                    acc += kjl * vl;
                                }
                                *slot = acc;
                            }
                        });
                    } else {
                        // Earlier axis: rows of length R, strided by
                        // n_a·R between the k-slices of one (p, ·, R)
                        // block; axpy over k ascending per output row.
                        let r_len = suffix[a + 1];
                        par_rows_mut(dst, r_len, threads, |r, dst_row| {
                            let (p, i) = (r / na, r % na);
                            dst_row.fill(0.0);
                            let k_row = &ax.k[i * na..(i + 1) * na];
                            for (k, &w) in k_row.iter().enumerate() {
                                let base = (p * na + k) * r_len;
                                let src_row = &src[base..base + r_len];
                                for (slot, t) in dst_row.iter_mut().zip(src_row) {
                                    *slot += w * t;
                                }
                            }
                        });
                    }
                };
                // Contract last axis first; ping-pong between the two
                // buffers so the final pass always lands in `out`
                // (even d starts in `scratch`, odd d in `out`).
                for (step, a) in (0..d).rev().enumerate() {
                    let dst_is_out = (d - step) % 2 == 1;
                    match (step == 0, dst_is_out) {
                        (true, true) => contract(a, v, out),
                        (true, false) => contract(a, v, scratch),
                        (false, true) => contract(a, scratch, out),
                        (false, false) => contract(a, out, scratch),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64)
            .collect()
    }

    /// Dense kernel over the flattened product grid, for comparison.
    fn dense_of_grid(gx: &[f64], gy: &[f64], eps: f64) -> KernelRep {
        let points: Vec<(f64, f64)> = gx
            .iter()
            .flat_map(|&x| gy.iter().map(move |&y| (x, y)))
            .collect();
        KernelRep::dense_square(points.len(), eps, 1, |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            dx * dx + dy * dy
        })
    }

    #[test]
    fn separable_matvec_matches_dense_within_rounding() {
        let gx = grid(-1.5, 2.0, 7);
        let gy = grid(0.0, 1.0, 5);
        let n = gx.len() * gy.len();
        let v: Vec<f64> = (0..n)
            .map(|i| 0.1 + ((i * 13) % 17) as f64 / 17.0)
            .collect();
        for eps in [0.05, 0.3, 1.7] {
            let dense = dense_of_grid(&gx, &gy, eps);
            let sep = KernelRep::separable_grid2d(&gx, &gy, eps);
            assert_eq!(sep.len(), n);
            assert!(sep.work_cells() < dense.work_cells());
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            dense.matvec(&v, &mut a, &mut scratch, 1);
            sep.matvec(&v, &mut b, &mut scratch, 1);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-12 * x.abs().max(y.abs()).max(1e-300),
                    "eps = {eps}, cell {i}: dense {x} vs separable {y}"
                );
            }
        }
    }

    #[test]
    fn separable_matvec_bit_identical_across_thread_counts() {
        let gx = grid(-2.0, 2.0, 9);
        let gy = grid(-1.0, 3.0, 6);
        let n = gx.len() * gy.len();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let kernel = KernelRep::separable_grid2d(&gx, &gy, 0.2);
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            kernel.matvec(&v, &mut out, &mut scratch, threads);
            let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "threads = {threads}"),
            }
        }
    }

    /// Dense kernel over a flattened d-axis product grid (last axis
    /// fastest), for comparison.
    fn dense_of_grid_nd(axes: &[&[f64]], eps: f64) -> KernelRep {
        let n: usize = axes.iter().map(|g| g.len()).product();
        KernelRep::dense_square(n, eps, 1, |i, j| {
            let (mut ri, mut rj) = (i, j);
            let mut acc = 0.0;
            for g in axes.iter().rev() {
                let d = g[ri % g.len()] - g[rj % g.len()];
                acc += d * d;
                ri /= g.len();
                rj /= g.len();
            }
            acc
        })
    }

    #[test]
    fn separable_nd_matvec_matches_dense_within_rounding() {
        let g1 = grid(-1.5, 2.0, 5);
        let g2 = grid(0.0, 1.0, 4);
        let g3 = grid(-0.5, 0.5, 3);
        let g4 = grid(0.2, 2.2, 2);
        let cases: Vec<Vec<&[f64]>> = vec![
            vec![&g1, &g2],
            vec![&g1, &g2, &g3],
            vec![&g1, &g2, &g3, &g4],
        ];
        for axes in &cases {
            let n: usize = axes.iter().map(|g| g.len()).product();
            let v: Vec<f64> = (0..n)
                .map(|i| 0.1 + ((i * 13) % 17) as f64 / 17.0)
                .collect();
            for eps in [0.05, 0.3, 1.7] {
                let dense = dense_of_grid_nd(axes, eps);
                let sep = KernelRep::separable_grid_nd(axes, eps);
                assert_eq!(sep.len(), n);
                assert!(sep.work_cells() < dense.work_cells());
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                let mut scratch = vec![0.0; n];
                dense.matvec(&v, &mut a, &mut scratch, 1);
                sep.matvec(&v, &mut b, &mut scratch, 1);
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-300),
                        "d = {}, eps = {eps}, cell {i}: dense {x} vs separable {y}",
                        axes.len()
                    );
                }
            }
        }
    }

    #[test]
    fn separable_nd_d2_bitwise_matches_legacy_separable() {
        let gx = grid(-2.0, 2.0, 9);
        let gy = grid(-1.0, 3.0, 6);
        let n = gx.len() * gy.len();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        for eps in [0.05, 0.2, 1.3] {
            let legacy = KernelRep::separable_grid2d(&gx, &gy, eps);
            let nd = KernelRep::separable_grid_nd(&[&gx, &gy], eps);
            for threads in [1usize, 2, 7] {
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                let mut scratch = vec![0.0; n];
                legacy.matvec(&v, &mut a, &mut scratch, threads);
                nd.matvec(&v, &mut b, &mut scratch, threads);
                let bits_a: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
                let bits_b: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "eps = {eps}, threads = {threads}");
            }
        }
    }

    #[test]
    fn separable_nd_matvec_bit_identical_across_thread_counts() {
        let g1 = grid(-2.0, 2.0, 5);
        let g2 = grid(-1.0, 3.0, 4);
        let g3 = grid(0.0, 1.0, 3);
        let kernel = KernelRep::separable_grid_nd(&[&g1, &g2, &g3], 0.2);
        let n = kernel.len();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            kernel.matvec(&v, &mut out, &mut scratch, threads);
            let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn separable_nd_work_cells_scale_linearly() {
        let g = grid(0.0, 1.0, 16);
        let axes: Vec<&[f64]> = vec![&g, &g, &g];
        let kernel = KernelRep::separable_grid_nd(&axes, 0.1);
        let n = 16usize.pow(3);
        assert_eq!(kernel.len(), n);
        assert_eq!(kernel.work_cells(), n * 48);
        // The dense kernel at this size would be n² ≈ 1.7e7 cells —
        // the separable representation is ~85x lighter per matvec.
        assert!(kernel.work_cells() * 64 < n * n);
    }

    #[test]
    fn choice_parses_displays_and_defaults() {
        assert_eq!("auto".parse::<KernelChoice>().unwrap(), KernelChoice::Auto);
        assert_eq!(
            "dense".parse::<KernelChoice>().unwrap(),
            KernelChoice::Dense
        );
        assert_eq!(
            "separable".parse::<KernelChoice>().unwrap(),
            KernelChoice::Separable
        );
        assert!("kronecker".parse::<KernelChoice>().is_err());
        assert_eq!(KernelChoice::default(), KernelChoice::Auto);
        for c in [
            KernelChoice::Auto,
            KernelChoice::Dense,
            KernelChoice::Separable,
        ] {
            assert_eq!(c.to_string().parse::<KernelChoice>().unwrap(), c);
        }
    }

    #[test]
    fn explicit_choices_resolve_without_the_environment() {
        // Explicit settings never consult OTR_KERNEL, so these are safe
        // to assert whatever the ambient environment says.
        assert!(!KernelChoice::Dense.resolve(true));
        assert!(!KernelChoice::Dense.resolve(false));
        assert!(KernelChoice::Separable.resolve(true));
        // An unavailable preference degrades to dense, never errors.
        assert!(!KernelChoice::Separable.resolve(false));
        // Auto on a non-separable cost is dense regardless of the env.
        assert!(!KernelChoice::Auto.resolve(false));
    }

    #[test]
    fn serde_round_trips() {
        for c in [
            KernelChoice::Auto,
            KernelChoice::Dense,
            KernelChoice::Separable,
        ] {
            let json = serde_json::to_string(&c).unwrap();
            let back: KernelChoice = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
        }
        assert_eq!(
            serde_json::to_string(&KernelChoice::Auto).unwrap(),
            "\"Auto\""
        );
    }
}
