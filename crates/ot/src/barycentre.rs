//! Wasserstein-2 barycentres — the repair target `ν_t` of Equation (7).
//!
//! Two constructions:
//!
//! 1. [`quantile_barycentre`] — the **exact 1-D geodesic** point: in one
//!    dimension the `W₂` geodesic between `µ₀` and `µ₁` is quantile
//!    interpolation (McCann's displacement interpolation),
//!    `F_{ν_t}⁻¹ = (1−t) F₀⁻¹ + t F₁⁻¹`. We sample that quantile curve and
//!    re-bin the mass onto a caller-fixed support with linear mass
//!    splitting, which is what Algorithm 1 needs (`ν` must live on the
//!    same interpolated support `Q` as the marginals).
//! 2. [`entropic_barycentre`] — the **fixed-support iterative-Bregman**
//!    barycentre (Benamou et al. 2015) for regularized OT, usable with
//!    more than two marginals and in higher dimensions; property-tested to
//!    agree with (1) at small `ε`.

use crate::discrete::DiscreteDistribution;
use crate::error::{OtError, Result};
use crate::kernel::{KernelChoice, KernelRep};
use crate::solvers::sinkhorn::EpsSchedule;

/// Exact 1-D `W₂` barycentre `ν_t` of `(1−t)·µ₀ ⊕ t·µ₁` projected onto
/// `support` (strictly increasing, typically the shared grid `Q`).
///
/// The quantile curve is sampled at `resolution` equi-probability points
/// (defaults to a generous multiple of the support size when `None`), and
/// each sample's mass is split linearly between its two neighbouring
/// support points, preserving total mass and (to first order) the mean.
///
/// # Errors
/// * `t` must lie in `[0, 1]`; the support must be strictly increasing.
pub fn quantile_barycentre(
    mu0: &DiscreteDistribution,
    mu1: &DiscreteDistribution,
    t: f64,
    support: &[f64],
    resolution: Option<usize>,
) -> Result<DiscreteDistribution> {
    if !(0.0..=1.0).contains(&t) || t.is_nan() {
        return Err(OtError::InvalidParameter {
            name: "t",
            reason: format!("must be in [0,1], got {t}"),
        });
    }
    if support.is_empty() {
        return Err(OtError::EmptyInput("barycentre support"));
    }
    for w in support.windows(2) {
        if !(w[0] < w[1]) {
            return Err(OtError::UnsortedSupport("barycentre support"));
        }
    }
    let n_samples = resolution.unwrap_or_else(|| (support.len() * 16).max(1024));

    let q0 = pmf_quantile(mu0);
    let q1 = pmf_quantile(mu1);

    let mut masses = vec![0.0f64; support.len()];
    let w = 1.0 / n_samples as f64;
    for k in 0..n_samples {
        // Midpoint rule on the probability axis.
        let p = (k as f64 + 0.5) * w;
        let x = (1.0 - t) * q0(p) + t * q1(p);
        deposit_linear(support, &mut masses, x, w);
    }
    DiscreteDistribution::new(support.to_vec(), masses)
}

/// Split mass `w` at location `x` linearly between the two neighbouring
/// support points (clamping outside the range to the boundary point).
fn deposit_linear(support: &[f64], masses: &mut [f64], x: f64, w: f64) {
    let n = support.len();
    if x <= support[0] {
        masses[0] += w;
        return;
    }
    if x >= support[n - 1] {
        masses[n - 1] += w;
        return;
    }
    // Binary search for the cell containing x.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if support[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (x - support[lo]) / (support[hi] - support[lo]);
    masses[lo] += w * (1.0 - frac);
    masses[hi] += w * frac;
}

/// Continuous quantile function of a discrete distribution using the
/// **mass-midpoint convention** (see [`crate::interp::MidpointCdf`]):
/// mean-preserving to second order in the grid spacing, which keeps the
/// reconstructed geodesic endpoints on top of the original marginals.
fn pmf_quantile(d: &DiscreteDistribution) -> impl Fn(f64) -> f64 {
    let interp = crate::interp::MidpointCdf::new(d);
    move |p: f64| interp.quantile(p)
}

/// Configuration of the iterative-Bregman entropic barycentre
/// ([`entropic_barycentre_with`] / [`entropic_barycentre_points2d`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarycentreConfig {
    /// Entropic regularization `ε > 0` of the Gibbs kernel (squared
    /// ground-distance units). Smaller sharpens the barycentre at the
    /// cost of more iterations.
    pub eps: f64,
    /// Iteration budget.
    pub max_iters: usize,
    /// Convergence threshold on the L1 change of the barycentre between
    /// consecutive iterations.
    pub tol: f64,
    /// Optional ε-annealing schedule ending at [`eps`](Self::eps): each
    /// stage rebuilds the Gibbs kernel at its own ε and warm-starts the
    /// Bregman scaling vectors from the previous stage (rescaled by the
    /// ε-ratio in log space, since `u = exp(φ/ε)` for ε-free potentials
    /// `φ`). The stage list is a pure function of this config, so
    /// scheduling preserves the bit-identical-across-threads contract.
    pub eps_scaling: Option<EpsSchedule>,
    /// Worker threads for the kernel matvecs (`0` = auto: `OTR_THREADS`
    /// env or available parallelism). Runtime policy; never affects the
    /// returned masses' bytes.
    pub threads: usize,
    /// Minimum kernel size (cells) before the matvecs chunk across
    /// threads; `None` = auto (`OTR_KERNEL_CELLS` env or
    /// [`otr_par::KERNEL_CELLS_DEFAULT`]).
    pub parallel_min_cells: Option<usize>,
    /// Gibbs-kernel representation on separable (product-grid) costs —
    /// honored by [`entropic_barycentre_grid2d`], where `Auto` (the
    /// default) factorizes the kernel as `Kx ⊗ Ky` unless the
    /// `OTR_KERNEL` environment variable says otherwise. The 1-D and
    /// arbitrary-point entry points have no separable structure and
    /// always solve dense. Part of the solve's definition (separable
    /// and dense group the matvec sums differently, so their outputs
    /// agree to ~1e-12 relative but not bitwise), like
    /// [`eps_scaling`](Self::eps_scaling).
    pub kernel: KernelChoice,
}

impl Default for BarycentreConfig {
    fn default() -> Self {
        Self {
            eps: 1e-2,
            max_iters: 5_000,
            tol: 1e-10,
            eps_scaling: None,
            threads: 0,
            parallel_min_cells: None,
            kernel: KernelChoice::Auto,
        }
    }
}

impl BarycentreConfig {
    /// Config with the given regularization and budget, default
    /// tolerance and auto parallelism.
    pub fn new(eps: f64, max_iters: usize) -> Self {
        Self {
            eps,
            max_iters,
            ..Self::default()
        }
    }
}

/// Convergence record of a Bregman barycentre solve — the state that
/// used to be swallowed when the iteration silently hit `max_iters`.
#[derive(Debug, Clone, PartialEq)]
pub struct BarycentreDiagnostics {
    /// Iterations actually run, summed across all ε-schedule stages
    /// (`≤ max_iters` when no schedule is configured).
    pub iterations: usize,
    /// L1 change of the barycentre over the final iteration (the
    /// converged value is `< tol`).
    pub final_delta: f64,
    /// `(ε, iterations)` per annealing stage, in solve order; a single
    /// entry when no [`BarycentreConfig::eps_scaling`] is configured.
    pub stages: Vec<(f64, usize)>,
}

/// Fixed-support entropic Wasserstein barycentre of `k ≥ 2` marginals with
/// weights `lambda` (iterative Bregman projections, Benamou et al. 2015).
///
/// All marginals and the output live on the same `support`.
/// Convenience wrapper over [`entropic_barycentre_with`] that drops the
/// diagnostics; prefer the full form when you need the iteration
/// count or want a non-default tolerance / thread setting.
///
/// # Errors
/// Validation failures, or [`OtError::NoConvergence`] if the fixed-point
/// iteration does not stabilize (the error's `residual` reports the
/// final L1 delta, its `iterations` the exhausted budget).
pub fn entropic_barycentre(
    marginals: &[&DiscreteDistribution],
    lambda: &[f64],
    support: &[f64],
    eps: f64,
    max_iters: usize,
) -> Result<DiscreteDistribution> {
    entropic_barycentre_with(
        marginals,
        lambda,
        support,
        &BarycentreConfig::new(eps, max_iters),
    )
    .map(|(bary, _)| bary)
}

/// [`entropic_barycentre`] with an explicit [`BarycentreConfig`],
/// returning the barycentre **and** its [`BarycentreDiagnostics`].
///
/// The contract: on `Ok`, `diagnostics.final_delta < config.tol` and
/// `diagnostics.iterations` is the number of Bregman iterations spent;
/// a budget exhausted before stabilizing is an
/// [`OtError::NoConvergence`] carrying the final delta — never a
/// silently unconverged distribution. Output bytes are identical for
/// every `config.threads` setting.
///
/// # Errors
/// As [`entropic_barycentre`].
pub fn entropic_barycentre_with(
    marginals: &[&DiscreteDistribution],
    lambda: &[f64],
    support: &[f64],
    config: &BarycentreConfig,
) -> Result<(DiscreteDistribution, BarycentreDiagnostics)> {
    let n = support.len();
    if n == 0 {
        return Err(OtError::EmptyInput("barycentre support"));
    }
    for m in marginals {
        if m.len() != n || m.support() != support {
            return Err(OtError::InvalidParameter {
                name: "marginals",
                reason: "all marginals must share the barycentre support".into(),
            });
        }
    }
    // Validate eps/lambda/marginal-count before the O(n²) kernel build.
    let lambda = validated_lambda(marginals.len(), lambda, config)?;
    let pmfs: Vec<&[f64]> = marginals.iter().map(|m| m.masses()).collect();
    // Ground metric (q_i - q_j)² on the shared support; the staged core
    // builds the Gibbs kernel exp(-d²/ε) per schedule stage.
    let (masses, diag) = bregman_barycentre(&pmfs, &lambda, n, config, n * n, |eps, threads| {
        KernelRep::dense_square(n, eps, threads, |i, j| {
            let d = support[i] - support[j];
            d * d
        })
    })?;
    Ok((DiscreteDistribution::new(support.to_vec(), masses)?, diag))
}

/// Entropic barycentre of pmfs on an arbitrary fixed support in `ℝ²`
/// (the joint-repair setting: `support` is the flattened product grid).
/// Same iteration, contract, and determinism guarantee as
/// [`entropic_barycentre_with`], with the squared-Euclidean ground
/// distance taken in the plane.
///
/// # Errors
/// As [`entropic_barycentre_with`]; every marginal must have one mass
/// per support point.
pub fn entropic_barycentre_points2d(
    marginals: &[&[f64]],
    lambda: &[f64],
    points: &[(f64, f64)],
    config: &BarycentreConfig,
) -> Result<(Vec<f64>, BarycentreDiagnostics)> {
    let n = points.len();
    if n == 0 {
        return Err(OtError::EmptyInput("barycentre support"));
    }
    for m in marginals {
        if m.len() != n {
            return Err(OtError::LengthMismatch {
                what: "marginal vs product support",
                left: m.len(),
                right: n,
            });
        }
    }
    // Validate eps/lambda/marginal-count before the O(n²) kernel build.
    let lambda = validated_lambda(marginals.len(), lambda, config)?;
    bregman_barycentre(marginals, &lambda, n, config, n * n, |eps, threads| {
        KernelRep::dense_square(n, eps, threads, |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            dx * dx + dy * dy
        })
    })
}

/// Entropic barycentre of pmfs on the **self-product grid** `gx × gy`
/// (flattened row-major, `y` fastest) under squared-Euclidean cost —
/// the joint-repair hot path. Functionally
/// [`entropic_barycentre_points2d`] over the flattened grid points (and
/// bitwise-equal to it when [`BarycentreConfig::kernel`] resolves to
/// dense), but on this support the Gibbs kernel factorizes as
/// `Kx ⊗ Ky`, so the default `Auto` choice runs every matvec as two
/// `O(nQ³)` axis passes instead of one `O(nQ⁴)` dense sweep — the
/// `~nQ/2`-fold saving that makes coarse joint design practical.
/// Either representation is bit-identical for any
/// [`BarycentreConfig::threads`] setting.
///
/// # Errors
/// As [`entropic_barycentre_points2d`]; every marginal must have one
/// mass per product-grid cell.
pub fn entropic_barycentre_grid2d(
    marginals: &[&[f64]],
    lambda: &[f64],
    gx: &[f64],
    gy: &[f64],
    config: &BarycentreConfig,
) -> Result<(Vec<f64>, BarycentreDiagnostics)> {
    entropic_barycentre_grid_nd(marginals, lambda, &[gx, gy], config)
}

/// Entropic barycentre of pmfs on the **d-axis self-product grid**
/// `axes[0] × … × axes[d−1]` (flattened row-major, last axis fastest)
/// under squared-Euclidean cost — the ≥3-feature joint-repair hot path.
/// On this support the Gibbs kernel factorizes as `K₁ ⊗ … ⊗ K_d`, so
/// the default `Auto` choice runs every matvec as d `O(n·nᵢ)` axis
/// passes instead of one `O(n²)` dense sweep; at d = 3 the dense kernel
/// (`nQ⁶` cells) is infeasible beyond toy sizes, so the separable
/// representation is what makes deeper joint design possible at all.
/// Either representation is bit-identical for any
/// [`BarycentreConfig::threads`] setting; the d = 2 call (what
/// [`entropic_barycentre_grid2d`] now delegates to) is bitwise-equal to
/// the original two-axis implementation under both kernels.
///
/// # Errors
/// As [`entropic_barycentre_points2d`]; every marginal must have one
/// mass per product-grid cell.
pub fn entropic_barycentre_grid_nd(
    marginals: &[&[f64]],
    lambda: &[f64],
    axes: &[&[f64]],
    config: &BarycentreConfig,
) -> Result<(Vec<f64>, BarycentreDiagnostics)> {
    if axes.is_empty() || axes.iter().any(|g| g.is_empty()) {
        return Err(OtError::EmptyInput("barycentre grid axis"));
    }
    let n: usize = axes.iter().map(|g| g.len()).product();
    for m in marginals {
        if m.len() != n {
            return Err(OtError::LengthMismatch {
                what: "marginal vs product support",
                left: m.len(),
                right: n,
            });
        }
    }
    let lambda = validated_lambda(marginals.len(), lambda, config)?;
    if config.kernel.resolve(true) {
        let work = n * axes.iter().map(|g| g.len()).sum::<usize>();
        return bregman_barycentre(marginals, &lambda, n, config, work, |eps, _| {
            KernelRep::separable_grid_nd(axes, eps)
        });
    }
    // Dense fallback: decode the flattened multi-indices once and feed
    // the axis-ordered squared distance (at d = 2 this is the exact
    // `dx² + dy²` of the points2d build, bitwise — pinned by
    // `grid2d_dense_path_bitwise_matches_points2d`).
    let d = axes.len();
    let mut coords = vec![0.0f64; n * d];
    for i in 0..n {
        let mut r = i;
        for a in (0..d).rev() {
            let na = axes[a].len();
            coords[i * d + a] = axes[a][r % na];
            r /= na;
        }
    }
    bregman_barycentre(marginals, &lambda, n, config, n * n, |eps, threads| {
        KernelRep::dense_square(n, eps, threads, |i, j| {
            let ci = &coords[i * d..(i + 1) * d];
            let cj = &coords[j * d..(j + 1) * d];
            let mut acc = 0.0;
            for (x, y) in ci.iter().zip(cj) {
                let dd = x - y;
                acc += dd * dd;
            }
            acc
        })
    })
}

/// Effective matvec thread count: configured threads once the kernel
/// crosses the size threshold, else 1 (sequential, no spawn overhead).
fn kernel_threads(config: &BarycentreConfig, cells: usize) -> usize {
    if cells >= otr_par::kernel_cells(config.parallel_min_cells) {
        config.threads
    } else {
        1
    }
}

/// Validate the barycentre inputs that gate the `O(n²)` kernel build —
/// marginal count, `ε`, and the weight vector — and return the
/// normalized weights. Shared by both public entry points so invalid
/// calls are rejected before any expensive work.
fn validated_lambda(k: usize, lambda: &[f64], config: &BarycentreConfig) -> Result<Vec<f64>> {
    if k < 2 {
        return Err(OtError::EmptyInput("barycentre marginals (need >= 2)"));
    }
    if k != lambda.len() {
        return Err(OtError::LengthMismatch {
            what: "marginals vs lambda",
            left: k,
            right: lambda.len(),
        });
    }
    if !(config.eps > 0.0) || !config.eps.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "eps",
            reason: format!("must be positive, got {}", config.eps),
        });
    }
    if let Some(schedule) = &config.eps_scaling {
        schedule.validate()?;
    }
    let lam_total: f64 = lambda.iter().sum();
    if lambda.iter().any(|&l| l < 0.0) || lam_total <= 0.0 {
        return Err(OtError::InvalidMass("lambda weights".into()));
    }
    Ok(lambda.iter().map(|l| l / lam_total).collect())
}

/// The shared iterative-Bregman core: `k ≥ 2` flat pmfs against a
/// symmetric Gibbs [`KernelRep`] (built per ε-stage by `build_kernel`),
/// with `lambda` already validated and normalized
/// ([`validated_lambda`]). When the config carries an [`EpsSchedule`],
/// the fixed point is approached through a decreasing ε sequence, each
/// stage rebuilding the kernel and warm-starting the scaling vectors
/// from the previous stage (`u ← u^(ε_prev/ε)`, the log-space rescaling
/// of ε-free potentials); intermediate stages run under the schedule's
/// loose budget and only the final stage enforces `config.tol` /
/// `config.max_iters`.
///
/// `work_cells` is the matrix cells one matvec touches (`n²` dense,
/// `n·(nx+ny)` separable) — what the in-kernel parallelism threshold
/// compares against. The kernel matvecs are chunk-parallel over output
/// rows; every `O(n)` reduction (barycentre normalization, convergence
/// delta) is summed sequentially on the calling thread, keeping the
/// output bit-identical for any thread count.
fn bregman_barycentre(
    marginals: &[&[f64]],
    lambda: &[f64],
    n: usize,
    config: &BarycentreConfig,
    work_cells: usize,
    build_kernel: impl Fn(f64, usize) -> KernelRep,
) -> Result<(Vec<f64>, BarycentreDiagnostics)> {
    let threads = kernel_threads(config, work_cells);
    let k = marginals.len();
    let mut u = vec![vec![1.0f64; n]; k];
    let mut v = vec![vec![1.0f64; n]; k];
    // K v_s, cached across the two uses per iteration (the barycentre
    // geometric mean and the u update) — one matvec saved per marginal.
    let mut kv = vec![vec![0.0f64; n]; k];
    let mut bary = vec![1.0 / n as f64; n];
    let mut tmp = vec![0.0f64; n];
    let mut scratch = vec![0.0f64; n];
    const FLOOR: f64 = 1e-300;

    let stages = match &config.eps_scaling {
        Some(schedule) => schedule.stages(config.eps),
        None => vec![config.eps],
    };
    let mut stage_log: Vec<(f64, usize)> = Vec::with_capacity(stages.len());
    let mut total_iterations = 0;
    let mut delta = f64::INFINITY;
    let mut prev_eps: Option<f64> = None;
    for (si, &eps) in stages.iter().enumerate() {
        let last = si + 1 == stages.len();
        let (max_iters, tol) = match (&config.eps_scaling, last) {
            (Some(s), false) => (s.effective_stage_iters(), s.effective_stage_tol()),
            _ => (config.max_iters, config.tol),
        };
        // Warm-start across the ε change: u = exp(φ/ε) for ε-free
        // potentials φ, so the previous stage's vectors carry over as
        // u^(ε_prev/ε) (floored against underflow of the power).
        if let Some(pe) = prev_eps {
            let ratio = pe / eps;
            for us in u.iter_mut() {
                for x in us.iter_mut() {
                    *x = x.powf(ratio).max(FLOOR);
                }
            }
        }
        prev_eps = Some(eps);
        // out = K v through the representation seam: dense rows or two
        // separable axis passes, either way chunked so each output
        // element is written by one thread in a fixed accumulation
        // order (bytes never depend on the chunking).
        let kernel = build_kernel(eps, threads);

        let mut iterations = 0;
        delta = f64::INFINITY;
        while iterations < max_iters {
            iterations += 1;
            let prev = bary.clone();
            // v_s <- a_s / K^T u_s  (kernel symmetric => K^T = K).
            for s in 0..k {
                kernel.matvec(&u[s], &mut tmp, &mut scratch, threads);
                for i in 0..n {
                    v[s][i] = marginals[s][i] / tmp[i].max(FLOOR);
                }
                kernel.matvec(&v[s], &mut kv[s], &mut scratch, threads);
            }
            // bary <- prod_s (u_s * K v_s)^{lambda_s}, computed in logs.
            let mut log_b = vec![0.0f64; n];
            for s in 0..k {
                for i in 0..n {
                    log_b[i] += lambda[s] * (u[s][i].max(FLOOR) * kv[s][i].max(FLOOR)).ln();
                }
            }
            let mx = log_b.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut total = 0.0;
            for i in 0..n {
                bary[i] = (log_b[i] - mx).exp();
                total += bary[i];
            }
            for b in &mut bary {
                *b /= total;
            }
            // u_s <- bary / K v_s.
            for s in 0..k {
                for i in 0..n {
                    u[s][i] = bary[i] / kv[s][i].max(FLOOR);
                }
            }
            delta = bary.iter().zip(&prev).map(|(a, b)| (a - b).abs()).sum();
            if delta < tol {
                break;
            }
        }
        total_iterations += iterations;
        stage_log.push((eps, iterations));
        // Only the final stage must actually converge; intermediate
        // stages exist to warm the scaling vectors.
        if last && delta >= tol {
            return Err(OtError::NoConvergence {
                solver: "entropic barycentre",
                iterations: total_iterations,
                residual: delta,
            });
        }
    }
    Ok((
        bary,
        BarycentreDiagnostics {
            iterations: total_iterations,
            final_delta: delta,
            stages: stage_log,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn gaussian_on(support: &[f64], mean: f64, sd: f64) -> DiscreteDistribution {
        let masses: Vec<f64> = support
            .iter()
            .map(|&x| (-0.5 * ((x - mean) / sd).powi(2)).exp())
            .collect();
        DiscreteDistribution::new(support.to_vec(), masses).unwrap()
    }

    #[test]
    fn endpoints_recover_marginals() {
        let q = grid(-4.0, 4.0, 81);
        let mu0 = gaussian_on(&q, -1.0, 0.6);
        let mu1 = gaussian_on(&q, 1.5, 0.6);
        let b0 = quantile_barycentre(&mu0, &mu1, 0.0, &q, None).unwrap();
        let b1 = quantile_barycentre(&mu0, &mu1, 1.0, &q, None).unwrap();
        assert!((b0.mean() - mu0.mean()).abs() < 0.02, "t=0 mean");
        assert!((b1.mean() - mu1.mean()).abs() < 0.02, "t=1 mean");
    }

    #[test]
    fn midpoint_mean_is_average_of_means() {
        // For W2 geodesics between distributions, mean(nu_t) =
        // (1-t) mean(mu0) + t mean(mu1).
        let q = grid(-5.0, 5.0, 101);
        let mu0 = gaussian_on(&q, -2.0, 0.5);
        let mu1 = gaussian_on(&q, 2.0, 1.0);
        let b = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        assert!(b.mean().abs() < 0.02, "mean = {}", b.mean());
    }

    #[test]
    fn midpoint_is_equidistant_in_w2() {
        let q = grid(-5.0, 5.0, 201);
        let mu0 = gaussian_on(&q, -1.5, 0.7);
        let mu1 = gaussian_on(&q, 1.5, 0.7);
        let b = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        let d0 = crate::wasserstein::w2(&mu0, &b).unwrap();
        let d1 = crate::wasserstein::w2(&mu1, &b).unwrap();
        assert!((d0 - d1).abs() < 0.05, "W2 to each marginal: {d0} vs {d1}");
    }

    #[test]
    fn same_marginal_barycentre_is_identity() {
        let q = grid(0.0, 1.0, 21);
        let mu = gaussian_on(&q, 0.5, 0.2);
        let b = quantile_barycentre(&mu, &mu, 0.5, &q, None).unwrap();
        let d = crate::wasserstein::w2(&mu, &b).unwrap();
        assert!(d < 0.03, "self barycentre moved by {d}");
    }

    #[test]
    fn rejects_invalid_t_and_support() {
        let q = grid(0.0, 1.0, 5);
        let mu = gaussian_on(&q, 0.5, 0.3);
        assert!(quantile_barycentre(&mu, &mu, -0.1, &q, None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 1.1, &q, None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 0.5, &[], None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 0.5, &[1.0, 1.0], None).is_err());
    }

    #[test]
    fn mass_is_preserved() {
        let q = grid(-3.0, 3.0, 61);
        let mu0 = gaussian_on(&q, -1.0, 0.4);
        let mu1 = gaussian_on(&q, 1.0, 0.8);
        let b = quantile_barycentre(&mu0, &mu1, 0.3, &q, None).unwrap();
        let total: f64 = b.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entropic_agrees_with_quantile_at_small_eps() {
        let q = grid(-4.0, 4.0, 61);
        let mu0 = gaussian_on(&q, -1.0, 0.7);
        let mu1 = gaussian_on(&q, 1.0, 0.7);
        let exact = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        let ent = entropic_barycentre(&[&mu0, &mu1], &[0.5, 0.5], &q, 0.05, 5_000).unwrap();
        // Compare means and W2 between the two barycentres.
        assert!(
            (exact.mean() - ent.mean()).abs() < 0.1,
            "means {} vs {}",
            exact.mean(),
            ent.mean()
        );
        let d = crate::wasserstein::w2(&exact, &ent).unwrap();
        assert!(d < 0.25, "W2 between constructions = {d}");
    }

    #[test]
    fn entropic_rejects_mismatched_support() {
        let q1 = grid(0.0, 1.0, 11);
        let q2 = grid(0.0, 2.0, 11);
        let a = gaussian_on(&q1, 0.5, 0.2);
        let b = gaussian_on(&q2, 1.0, 0.3);
        assert!(entropic_barycentre(&[&a, &b], &[0.5, 0.5], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a], &[1.0], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a, &a], &[0.5], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a, &a], &[0.5, 0.5], &q1, 0.0, 100).is_err());
    }

    #[test]
    fn entropic_diagnostics_surface_convergence_state() {
        let q = grid(-3.0, 3.0, 41);
        let mu0 = gaussian_on(&q, -1.0, 0.6);
        let mu1 = gaussian_on(&q, 1.0, 0.6);
        let cfg = BarycentreConfig::new(0.1, 5_000);
        let (bary, diag) = entropic_barycentre_with(&[&mu0, &mu1], &[0.5, 0.5], &q, &cfg).unwrap();
        assert!(diag.iterations > 0 && diag.iterations <= cfg.max_iters);
        assert!(
            diag.final_delta < cfg.tol,
            "converged delta {} vs tol {}",
            diag.final_delta,
            cfg.tol
        );
        assert_eq!(bary.len(), q.len());
        // An exhausted budget is a NoConvergence carrying the real final
        // delta — never NaN, never a silently unconverged distribution.
        let starved = BarycentreConfig::new(0.1, 2);
        match entropic_barycentre_with(&[&mu0, &mu1], &[0.5, 0.5], &q, &starved) {
            Err(OtError::NoConvergence {
                iterations,
                residual,
                ..
            }) => {
                assert_eq!(iterations, 2);
                assert!(residual.is_finite() && residual >= starved.tol);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn entropic_parallel_bit_identical_to_sequential() {
        // In-kernel determinism: chunked matvecs return the exact bytes
        // of the sequential solve (min_cells = 1 forces chunking here).
        let q = grid(-2.0, 2.0, 35);
        let mu0 = gaussian_on(&q, -0.8, 0.5);
        let mu1 = gaussian_on(&q, 0.9, 0.4);
        let seq_cfg = BarycentreConfig {
            threads: 1,
            ..BarycentreConfig::new(0.08, 5_000)
        };
        let (seq, seq_diag) =
            entropic_barycentre_with(&[&mu0, &mu1], &[0.4, 0.6], &q, &seq_cfg).unwrap();
        for threads in [2usize, 3, 7] {
            let cfg = BarycentreConfig {
                threads,
                parallel_min_cells: Some(1),
                ..seq_cfg
            };
            let (par, diag) =
                entropic_barycentre_with(&[&mu0, &mu1], &[0.4, 0.6], &q, &cfg).unwrap();
            assert_eq!(diag, seq_diag, "threads = {threads}");
            for (a, b) in par.masses().iter().zip(seq.masses()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn eps_scheduled_barycentre_agrees_with_cold_start() {
        // The annealed solve converges to the same fixed point as the
        // cold start at the final ε — and its diagnostics expose one
        // (ε, iterations) entry per stage, with the warm-started final
        // stage needing far fewer iterations than the cold solve.
        let q = grid(-3.0, 3.0, 41);
        let mu0 = gaussian_on(&q, -1.0, 0.6);
        let mu1 = gaussian_on(&q, 1.0, 0.6);
        let cold_cfg = BarycentreConfig::new(0.05, 20_000);
        let (cold, cold_diag) =
            entropic_barycentre_with(&[&mu0, &mu1], &[0.5, 0.5], &q, &cold_cfg).unwrap();
        assert_eq!(cold_diag.stages.len(), 1);
        let sched_cfg = BarycentreConfig {
            eps_scaling: Some(EpsSchedule::geometric(0.8, 0.25)),
            ..cold_cfg
        };
        let (sched, diag) =
            entropic_barycentre_with(&[&mu0, &mu1], &[0.5, 0.5], &q, &sched_cfg).unwrap();
        assert_eq!(
            diag.stages.len(),
            EpsSchedule::geometric(0.8, 0.25).stages(0.05).len()
        );
        assert_eq!(
            diag.iterations,
            diag.stages.iter().map(|&(_, i)| i).sum::<usize>()
        );
        assert!((diag.stages.last().unwrap().0 - 0.05).abs() < 1e-15);
        assert!(diag.final_delta < sched_cfg.tol);
        for (a, b) in sched.masses().iter().zip(cold.masses()) {
            assert!((a - b).abs() < 1e-6, "scheduled {a} vs cold {b}");
        }
    }

    #[test]
    fn eps_scheduled_barycentre_parallel_bit_identical() {
        let q = grid(-2.0, 2.0, 35);
        let mu0 = gaussian_on(&q, -0.8, 0.5);
        let mu1 = gaussian_on(&q, 0.9, 0.4);
        let seq_cfg = BarycentreConfig {
            eps_scaling: Some(EpsSchedule::geometric(0.8, 0.3)),
            threads: 1,
            parallel_min_cells: Some(1),
            ..BarycentreConfig::new(0.08, 5_000)
        };
        let (seq, seq_diag) =
            entropic_barycentre_with(&[&mu0, &mu1], &[0.4, 0.6], &q, &seq_cfg).unwrap();
        for threads in [2usize, 3, 7] {
            let cfg = BarycentreConfig { threads, ..seq_cfg };
            let (par, diag) =
                entropic_barycentre_with(&[&mu0, &mu1], &[0.4, 0.6], &q, &cfg).unwrap();
            assert_eq!(diag, seq_diag, "threads = {threads}");
            for (a, b) in par.masses().iter().zip(seq.masses()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn points2d_matches_1d_on_a_line() {
        // Embedding a 1-D support as (x, 0) points must reproduce the
        // 1-D fixed-support barycentre exactly (same kernel, same
        // iteration).
        let q = grid(-1.5, 1.5, 25);
        let mu0 = gaussian_on(&q, -0.5, 0.4);
        let mu1 = gaussian_on(&q, 0.6, 0.5);
        let cfg = BarycentreConfig::new(0.1, 5_000);
        let (line, _) = entropic_barycentre_with(&[&mu0, &mu1], &[0.5, 0.5], &q, &cfg).unwrap();
        let points: Vec<(f64, f64)> = q.iter().map(|&x| (x, 0.0)).collect();
        let (plane, diag) =
            entropic_barycentre_points2d(&[mu0.masses(), mu1.masses()], &[0.5, 0.5], &points, &cfg)
                .unwrap();
        assert!(diag.final_delta < cfg.tol);
        // The 1-D wrapper re-normalizes through DiscreteDistribution;
        // push the flat result through the same constructor before the
        // bitwise comparison.
        let plane = DiscreteDistribution::new(q.clone(), plane).unwrap();
        for (a, b) in plane.masses().iter().zip(line.masses()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Unnormalized 2-D Gaussian pmf on the product grid (row-major,
    /// `y` fastest), floored to strict positivity.
    fn gaussian2d_on(gx: &[f64], gy: &[f64], mx: f64, my: f64, sd: f64) -> Vec<f64> {
        let mut pmf: Vec<f64> = gx
            .iter()
            .flat_map(|&x| {
                gy.iter().map(move |&y| {
                    (-0.5 * (((x - mx) / sd).powi(2) + ((y - my) / sd).powi(2))).exp()
                })
            })
            .collect();
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p = (*p / total).max(1e-14);
        }
        pmf
    }

    #[test]
    fn grid2d_dense_path_bitwise_matches_points2d() {
        // The grid2d entry with the kernel forced dense is the exact
        // points2d computation — a refactor guard at the bit level.
        let gx = grid(-1.5, 1.5, 9);
        let gy = grid(-1.0, 2.0, 7);
        let a = gaussian2d_on(&gx, &gy, -0.5, 0.0, 0.6);
        let b = gaussian2d_on(&gx, &gy, 0.7, 0.8, 0.5);
        let cfg = BarycentreConfig {
            kernel: KernelChoice::Dense,
            ..BarycentreConfig::new(0.15, 5_000)
        };
        let points: Vec<(f64, f64)> = gx
            .iter()
            .flat_map(|&x| gy.iter().map(move |&y| (x, y)))
            .collect();
        let (flat, flat_diag) =
            entropic_barycentre_points2d(&[&a, &b], &[0.5, 0.5], &points, &cfg).unwrap();
        let (grid2d, diag) =
            entropic_barycentre_grid2d(&[&a, &b], &[0.5, 0.5], &gx, &gy, &cfg).unwrap();
        assert_eq!(diag, flat_diag);
        for (x, y) in grid2d.iter().zip(&flat) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn grid2d_separable_agrees_with_dense() {
        // Separable and dense group the matvec sums differently, so the
        // converged barycentres agree to rounding, not bitwise. A tight
        // tolerance pins both iterates close to the common fixed point.
        let gx = grid(-1.5, 1.5, 10);
        let gy = grid(-1.2, 1.8, 8);
        let a = gaussian2d_on(&gx, &gy, -0.5, -0.2, 0.6);
        let b = gaussian2d_on(&gx, &gy, 0.6, 0.9, 0.5);
        let base = BarycentreConfig {
            tol: 1e-12,
            ..BarycentreConfig::new(0.15, 20_000)
        };
        let dense_cfg = BarycentreConfig {
            kernel: KernelChoice::Dense,
            ..base
        };
        let sep_cfg = BarycentreConfig {
            kernel: KernelChoice::Separable,
            ..base
        };
        let (dense, _) =
            entropic_barycentre_grid2d(&[&a, &b], &[0.5, 0.5], &gx, &gy, &dense_cfg).unwrap();
        let (sep, diag) =
            entropic_barycentre_grid2d(&[&a, &b], &[0.5, 0.5], &gx, &gy, &sep_cfg).unwrap();
        assert!(diag.final_delta < base.tol);
        let l1: f64 = dense.iter().zip(&sep).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 < 1e-9, "separable vs dense barycentre L1 = {l1:e}");
    }

    #[test]
    fn grid2d_separable_parallel_bit_identical_to_sequential() {
        let gx = grid(-1.0, 1.0, 8);
        let gy = grid(-0.5, 1.5, 6);
        let a = gaussian2d_on(&gx, &gy, -0.3, 0.1, 0.5);
        let b = gaussian2d_on(&gx, &gy, 0.4, 0.6, 0.4);
        let seq_cfg = BarycentreConfig {
            kernel: KernelChoice::Separable,
            eps_scaling: Some(EpsSchedule::geometric(0.8, 0.3)),
            threads: 1,
            parallel_min_cells: Some(1),
            ..BarycentreConfig::new(0.1, 5_000)
        };
        let (seq, seq_diag) =
            entropic_barycentre_grid2d(&[&a, &b], &[0.4, 0.6], &gx, &gy, &seq_cfg).unwrap();
        for threads in [2usize, 3, 7] {
            let cfg = BarycentreConfig { threads, ..seq_cfg };
            let (par, diag) =
                entropic_barycentre_grid2d(&[&a, &b], &[0.4, 0.6], &gx, &gy, &cfg).unwrap();
            assert_eq!(diag, seq_diag, "threads = {threads}");
            for (x, y) in par.iter().zip(&seq) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads = {threads}");
            }
        }
    }

    /// Unnormalized d-D Gaussian pmf on the product grid (row-major,
    /// last axis fastest), floored to strict positivity.
    fn gaussian_nd_on(axes: &[&[f64]], means: &[f64], sd: f64) -> Vec<f64> {
        let n: usize = axes.iter().map(|g| g.len()).product();
        let d = axes.len();
        let mut pmf = vec![0.0f64; n];
        for (i, p) in pmf.iter_mut().enumerate() {
            let mut r = i;
            let mut e = 0.0;
            for a in (0..d).rev() {
                let g = axes[a];
                e += ((g[r % g.len()] - means[a]) / sd).powi(2);
                r /= g.len();
            }
            *p = (-0.5 * e).exp();
        }
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p = (*p / total).max(1e-14);
        }
        pmf
    }

    #[test]
    fn grid_nd_separable_agrees_with_dense_at_d3() {
        // Tiny 5×4×3 per-axis support, where the dense kernel is still
        // representable — the cross-kernel agreement that pins the
        // d-axis contraction passes to the ground truth.
        let g1 = grid(-1.5, 1.5, 5);
        let g2 = grid(-1.2, 1.8, 4);
        let g3 = grid(-0.8, 0.8, 3);
        let axes: Vec<&[f64]> = vec![&g1, &g2, &g3];
        let a = gaussian_nd_on(&axes, &[-0.5, -0.2, 0.1], 0.6);
        let b = gaussian_nd_on(&axes, &[0.6, 0.9, -0.3], 0.5);
        let base = BarycentreConfig {
            tol: 1e-12,
            ..BarycentreConfig::new(0.15, 20_000)
        };
        let dense_cfg = BarycentreConfig {
            kernel: KernelChoice::Dense,
            ..base
        };
        let sep_cfg = BarycentreConfig {
            kernel: KernelChoice::Separable,
            ..base
        };
        let (dense, _) =
            entropic_barycentre_grid_nd(&[&a, &b], &[0.5, 0.5], &axes, &dense_cfg).unwrap();
        let (sep, diag) =
            entropic_barycentre_grid_nd(&[&a, &b], &[0.5, 0.5], &axes, &sep_cfg).unwrap();
        assert!(diag.final_delta < base.tol);
        let l1: f64 = dense.iter().zip(&sep).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 < 1e-9, "d=3 separable vs dense barycentre L1 = {l1:e}");
    }

    #[test]
    fn grid_nd_separable_parallel_bit_identical_to_sequential() {
        let g1 = grid(-1.0, 1.0, 5);
        let g2 = grid(-0.5, 1.5, 4);
        let g3 = grid(0.0, 1.0, 3);
        let axes: Vec<&[f64]> = vec![&g1, &g2, &g3];
        let a = gaussian_nd_on(&axes, &[-0.3, 0.1, 0.4], 0.5);
        let b = gaussian_nd_on(&axes, &[0.4, 0.6, 0.2], 0.4);
        let seq_cfg = BarycentreConfig {
            kernel: KernelChoice::Separable,
            eps_scaling: Some(EpsSchedule::geometric(0.8, 0.3)),
            threads: 1,
            parallel_min_cells: Some(1),
            ..BarycentreConfig::new(0.1, 5_000)
        };
        let (seq, seq_diag) =
            entropic_barycentre_grid_nd(&[&a, &b], &[0.4, 0.6], &axes, &seq_cfg).unwrap();
        for threads in [2usize, 3, 7] {
            let cfg = BarycentreConfig { threads, ..seq_cfg };
            let (par, diag) =
                entropic_barycentre_grid_nd(&[&a, &b], &[0.4, 0.6], &axes, &cfg).unwrap();
            assert_eq!(diag, seq_diag, "threads = {threads}");
            for (x, y) in par.iter().zip(&seq) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn grid_nd_rejects_bad_shapes() {
        let g1 = grid(0.0, 1.0, 4);
        let g2 = grid(0.0, 1.0, 3);
        let g3 = grid(0.0, 1.0, 2);
        let ok = vec![1.0 / 24.0; 24];
        let short = vec![0.5; 6];
        let cfg = BarycentreConfig::default();
        let axes: Vec<&[f64]> = vec![&g1, &g2, &g3];
        assert!(entropic_barycentre_grid_nd(&[&ok, &short], &[0.5, 0.5], &axes, &cfg).is_err());
        assert!(entropic_barycentre_grid_nd(&[&ok, &ok], &[0.5, 0.5], &[], &cfg).is_err());
        assert!(
            entropic_barycentre_grid_nd(&[&ok, &ok], &[0.5, 0.5], &[&g1, &[], &g3], &cfg).is_err()
        );
        assert!(entropic_barycentre_grid_nd(&[&ok], &[1.0], &axes, &cfg).is_err());
    }

    #[test]
    fn grid2d_rejects_bad_shapes() {
        let gx = grid(0.0, 1.0, 4);
        let gy = grid(0.0, 1.0, 3);
        let ok = vec![1.0 / 12.0; 12];
        let short = vec![0.5; 6];
        let cfg = BarycentreConfig::default();
        assert!(entropic_barycentre_grid2d(&[&ok, &short], &[0.5, 0.5], &gx, &gy, &cfg).is_err());
        assert!(entropic_barycentre_grid2d(&[&ok, &ok], &[0.5, 0.5], &[], &gy, &cfg).is_err());
        assert!(entropic_barycentre_grid2d(&[&ok], &[1.0], &gx, &gy, &cfg).is_err());
    }

    #[test]
    fn entropic_three_marginals() {
        let q = grid(-3.0, 3.0, 41);
        let a = gaussian_on(&q, -1.0, 0.5);
        let b = gaussian_on(&q, 0.0, 0.5);
        let c = gaussian_on(&q, 1.0, 0.5);
        let bary = entropic_barycentre(&[&a, &b, &c], &[1.0, 1.0, 1.0], &q, 0.1, 5_000).unwrap();
        assert!(bary.mean().abs() < 0.05, "mean = {}", bary.mean());
    }
}
