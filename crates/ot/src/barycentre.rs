//! Wasserstein-2 barycentres — the repair target `ν_t` of Equation (7).
//!
//! Two constructions:
//!
//! 1. [`quantile_barycentre`] — the **exact 1-D geodesic** point: in one
//!    dimension the `W₂` geodesic between `µ₀` and `µ₁` is quantile
//!    interpolation (McCann's displacement interpolation),
//!    `F_{ν_t}⁻¹ = (1−t) F₀⁻¹ + t F₁⁻¹`. We sample that quantile curve and
//!    re-bin the mass onto a caller-fixed support with linear mass
//!    splitting, which is what Algorithm 1 needs (`ν` must live on the
//!    same interpolated support `Q` as the marginals).
//! 2. [`entropic_barycentre`] — the **fixed-support iterative-Bregman**
//!    barycentre (Benamou et al. 2015) for regularized OT, usable with
//!    more than two marginals and in higher dimensions; property-tested to
//!    agree with (1) at small `ε`.

use crate::discrete::DiscreteDistribution;
use crate::error::{OtError, Result};

/// Exact 1-D `W₂` barycentre `ν_t` of `(1−t)·µ₀ ⊕ t·µ₁` projected onto
/// `support` (strictly increasing, typically the shared grid `Q`).
///
/// The quantile curve is sampled at `resolution` equi-probability points
/// (defaults to a generous multiple of the support size when `None`), and
/// each sample's mass is split linearly between its two neighbouring
/// support points, preserving total mass and (to first order) the mean.
///
/// # Errors
/// * `t` must lie in `[0, 1]`; the support must be strictly increasing.
pub fn quantile_barycentre(
    mu0: &DiscreteDistribution,
    mu1: &DiscreteDistribution,
    t: f64,
    support: &[f64],
    resolution: Option<usize>,
) -> Result<DiscreteDistribution> {
    if !(0.0..=1.0).contains(&t) || t.is_nan() {
        return Err(OtError::InvalidParameter {
            name: "t",
            reason: format!("must be in [0,1], got {t}"),
        });
    }
    if support.is_empty() {
        return Err(OtError::EmptyInput("barycentre support"));
    }
    for w in support.windows(2) {
        if !(w[0] < w[1]) {
            return Err(OtError::UnsortedSupport("barycentre support"));
        }
    }
    let n_samples = resolution.unwrap_or_else(|| (support.len() * 16).max(1024));

    let q0 = pmf_quantile(mu0);
    let q1 = pmf_quantile(mu1);

    let mut masses = vec![0.0f64; support.len()];
    let w = 1.0 / n_samples as f64;
    for k in 0..n_samples {
        // Midpoint rule on the probability axis.
        let p = (k as f64 + 0.5) * w;
        let x = (1.0 - t) * q0(p) + t * q1(p);
        deposit_linear(support, &mut masses, x, w);
    }
    DiscreteDistribution::new(support.to_vec(), masses)
}

/// Split mass `w` at location `x` linearly between the two neighbouring
/// support points (clamping outside the range to the boundary point).
fn deposit_linear(support: &[f64], masses: &mut [f64], x: f64, w: f64) {
    let n = support.len();
    if x <= support[0] {
        masses[0] += w;
        return;
    }
    if x >= support[n - 1] {
        masses[n - 1] += w;
        return;
    }
    // Binary search for the cell containing x.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if support[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (x - support[lo]) / (support[hi] - support[lo]);
    masses[lo] += w * (1.0 - frac);
    masses[hi] += w * frac;
}

/// Continuous quantile function of a discrete distribution using the
/// **mass-midpoint convention** (see [`crate::interp::MidpointCdf`]):
/// mean-preserving to second order in the grid spacing, which keeps the
/// reconstructed geodesic endpoints on top of the original marginals.
fn pmf_quantile(d: &DiscreteDistribution) -> impl Fn(f64) -> f64 {
    let interp = crate::interp::MidpointCdf::new(d);
    move |p: f64| interp.quantile(p)
}

/// Fixed-support entropic Wasserstein barycentre of `k ≥ 2` marginals with
/// weights `lambda` (iterative Bregman projections, Benamou et al. 2015).
///
/// All marginals and the output live on the same `support`. Smaller `eps`
/// sharpens the barycentre at the cost of more iterations.
///
/// # Errors
/// Validation failures, or [`OtError::NoConvergence`] if the fixed-point
/// iteration does not stabilize.
pub fn entropic_barycentre(
    marginals: &[&DiscreteDistribution],
    lambda: &[f64],
    support: &[f64],
    eps: f64,
    max_iters: usize,
) -> Result<DiscreteDistribution> {
    if marginals.len() < 2 {
        return Err(OtError::EmptyInput("barycentre marginals (need >= 2)"));
    }
    if marginals.len() != lambda.len() {
        return Err(OtError::LengthMismatch {
            what: "marginals vs lambda",
            left: marginals.len(),
            right: lambda.len(),
        });
    }
    if !(eps > 0.0) || !eps.is_finite() {
        return Err(OtError::InvalidParameter {
            name: "eps",
            reason: format!("must be positive, got {eps}"),
        });
    }
    let lam_total: f64 = lambda.iter().sum();
    if lambda.iter().any(|&l| l < 0.0) || lam_total <= 0.0 {
        return Err(OtError::InvalidMass("lambda weights".into()));
    }
    let lambda: Vec<f64> = lambda.iter().map(|l| l / lam_total).collect();
    let n = support.len();
    if n == 0 {
        return Err(OtError::EmptyInput("barycentre support"));
    }
    for m in marginals {
        if m.len() != n || m.support() != support {
            return Err(OtError::InvalidParameter {
                name: "marginals",
                reason: "all marginals must share the barycentre support".into(),
            });
        }
    }

    // Gibbs kernel K_ij = exp(-C_ij/eps) on the shared support.
    let mut kernel = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let d = support[i] - support[j];
            kernel[i * n + j] = (-(d * d) / eps).exp();
        }
    }
    let kmatvec = |v: &[f64], out: &mut [f64]| {
        for i in 0..n {
            let mut acc = 0.0;
            let row = &kernel[i * n..(i + 1) * n];
            for (kij, vj) in row.iter().zip(v) {
                acc += kij * vj;
            }
            out[i] = acc;
        }
    };

    let k = marginals.len();
    let mut u = vec![vec![1.0f64; n]; k];
    let mut v = vec![vec![1.0f64; n]; k];
    let mut bary = vec![1.0 / n as f64; n];
    let mut tmp = vec![0.0f64; n];
    const FLOOR: f64 = 1e-300;

    let mut converged = false;
    for _ in 0..max_iters {
        let prev = bary.clone();
        // v_k <- a_k / K^T u_k  (kernel symmetric => K^T = K).
        for s in 0..k {
            kmatvec(&u[s], &mut tmp);
            for i in 0..n {
                v[s][i] = marginals[s].masses()[i] / tmp[i].max(FLOOR);
            }
        }
        // bary <- prod_s (u_s * K v_s)^{lambda_s}, computed in logs.
        let mut log_b = vec![0.0f64; n];
        for s in 0..k {
            kmatvec(&v[s], &mut tmp);
            for i in 0..n {
                log_b[i] += lambda[s] * (u[s][i].max(FLOOR) * tmp[i].max(FLOOR)).ln();
            }
        }
        let mx = log_b.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for i in 0..n {
            bary[i] = (log_b[i] - mx).exp();
            total += bary[i];
        }
        for b in &mut bary {
            *b /= total;
        }
        // u_k <- bary / K v_k.
        for s in 0..k {
            kmatvec(&v[s], &mut tmp);
            for i in 0..n {
                u[s][i] = bary[i] / tmp[i].max(FLOOR);
            }
        }
        let delta: f64 = bary.iter().zip(&prev).map(|(a, b)| (a - b).abs()).sum();
        if delta < 1e-10 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(OtError::NoConvergence {
            solver: "entropic barycentre",
            iterations: max_iters,
            residual: f64::NAN,
        });
    }
    DiscreteDistribution::new(support.to_vec(), bary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn gaussian_on(support: &[f64], mean: f64, sd: f64) -> DiscreteDistribution {
        let masses: Vec<f64> = support
            .iter()
            .map(|&x| (-0.5 * ((x - mean) / sd).powi(2)).exp())
            .collect();
        DiscreteDistribution::new(support.to_vec(), masses).unwrap()
    }

    #[test]
    fn endpoints_recover_marginals() {
        let q = grid(-4.0, 4.0, 81);
        let mu0 = gaussian_on(&q, -1.0, 0.6);
        let mu1 = gaussian_on(&q, 1.5, 0.6);
        let b0 = quantile_barycentre(&mu0, &mu1, 0.0, &q, None).unwrap();
        let b1 = quantile_barycentre(&mu0, &mu1, 1.0, &q, None).unwrap();
        assert!((b0.mean() - mu0.mean()).abs() < 0.02, "t=0 mean");
        assert!((b1.mean() - mu1.mean()).abs() < 0.02, "t=1 mean");
    }

    #[test]
    fn midpoint_mean_is_average_of_means() {
        // For W2 geodesics between distributions, mean(nu_t) =
        // (1-t) mean(mu0) + t mean(mu1).
        let q = grid(-5.0, 5.0, 101);
        let mu0 = gaussian_on(&q, -2.0, 0.5);
        let mu1 = gaussian_on(&q, 2.0, 1.0);
        let b = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        assert!(b.mean().abs() < 0.02, "mean = {}", b.mean());
    }

    #[test]
    fn midpoint_is_equidistant_in_w2() {
        let q = grid(-5.0, 5.0, 201);
        let mu0 = gaussian_on(&q, -1.5, 0.7);
        let mu1 = gaussian_on(&q, 1.5, 0.7);
        let b = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        let d0 = crate::wasserstein::w2(&mu0, &b).unwrap();
        let d1 = crate::wasserstein::w2(&mu1, &b).unwrap();
        assert!((d0 - d1).abs() < 0.05, "W2 to each marginal: {d0} vs {d1}");
    }

    #[test]
    fn same_marginal_barycentre_is_identity() {
        let q = grid(0.0, 1.0, 21);
        let mu = gaussian_on(&q, 0.5, 0.2);
        let b = quantile_barycentre(&mu, &mu, 0.5, &q, None).unwrap();
        let d = crate::wasserstein::w2(&mu, &b).unwrap();
        assert!(d < 0.03, "self barycentre moved by {d}");
    }

    #[test]
    fn rejects_invalid_t_and_support() {
        let q = grid(0.0, 1.0, 5);
        let mu = gaussian_on(&q, 0.5, 0.3);
        assert!(quantile_barycentre(&mu, &mu, -0.1, &q, None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 1.1, &q, None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 0.5, &[], None).is_err());
        assert!(quantile_barycentre(&mu, &mu, 0.5, &[1.0, 1.0], None).is_err());
    }

    #[test]
    fn mass_is_preserved() {
        let q = grid(-3.0, 3.0, 61);
        let mu0 = gaussian_on(&q, -1.0, 0.4);
        let mu1 = gaussian_on(&q, 1.0, 0.8);
        let b = quantile_barycentre(&mu0, &mu1, 0.3, &q, None).unwrap();
        let total: f64 = b.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entropic_agrees_with_quantile_at_small_eps() {
        let q = grid(-4.0, 4.0, 61);
        let mu0 = gaussian_on(&q, -1.0, 0.7);
        let mu1 = gaussian_on(&q, 1.0, 0.7);
        let exact = quantile_barycentre(&mu0, &mu1, 0.5, &q, None).unwrap();
        let ent = entropic_barycentre(&[&mu0, &mu1], &[0.5, 0.5], &q, 0.05, 5_000).unwrap();
        // Compare means and W2 between the two barycentres.
        assert!(
            (exact.mean() - ent.mean()).abs() < 0.1,
            "means {} vs {}",
            exact.mean(),
            ent.mean()
        );
        let d = crate::wasserstein::w2(&exact, &ent).unwrap();
        assert!(d < 0.25, "W2 between constructions = {d}");
    }

    #[test]
    fn entropic_rejects_mismatched_support() {
        let q1 = grid(0.0, 1.0, 11);
        let q2 = grid(0.0, 2.0, 11);
        let a = gaussian_on(&q1, 0.5, 0.2);
        let b = gaussian_on(&q2, 1.0, 0.3);
        assert!(entropic_barycentre(&[&a, &b], &[0.5, 0.5], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a], &[1.0], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a, &a], &[0.5], &q1, 0.1, 100).is_err());
        assert!(entropic_barycentre(&[&a, &a], &[0.5, 0.5], &q1, 0.0, 100).is_err());
    }

    #[test]
    fn entropic_three_marginals() {
        let q = grid(-3.0, 3.0, 41);
        let a = gaussian_on(&q, -1.0, 0.5);
        let b = gaussian_on(&q, 0.0, 0.5);
        let c = gaussian_on(&q, 1.0, 0.5);
        let bary = entropic_barycentre(&[&a, &b, &c], &[1.0, 1.0, 1.0], &q, 0.1, 5_000).unwrap();
        assert!(bary.mean().abs() < 0.05, "mean = {}", bary.mean());
    }
}
