//! The `otrepaird` wire protocol: length-prefixed binary frames over
//! TCP. The normative specification (framing, message catalogue, error
//! codes, versioning rules, and a hand-decoded example frame) lives in
//! `docs/protocol.md` at the workspace root; this module is its
//! executable form.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! ```text
//! offset 0  4 bytes   magic "OTRP" (0x4F 0x54 0x52 0x50)
//! offset 4  u8        protocol version (currently 3)
//! offset 5  u8        message type
//! offset 6  u16 BE    reserved, must be zero
//! offset 8  u32 BE    payload length N (≤ 1 GiB)
//! offset 12 N bytes   payload
//! ```
//!
//! All multi-byte integers are big-endian ("network byte order");
//! `f64` values travel as their IEEE-754 bit patterns in big-endian
//! `u64`s, so repaired features cross the wire **bit-exactly** — the
//! serving determinism contract (`docs/determinism.md`) is defined at
//! the `f64` bit level and the protocol must not round it away.

use otr_data::ColumnarDataset;

/// Frame magic: the ASCII bytes `OTRP`.
pub const MAGIC: [u8; 4] = *b"OTRP";
/// The protocol version this build speaks. Version 2 extended the
/// `ServerInfo` payload with the hardening counters; version 3 extended
/// it again with the drift-lifecycle counters and added the
/// `Watch`/`DriftStatus`/`Audit` message family (versioning rule V3
/// requires a bump for any schema change to an existing message; see
/// the version history in `docs/protocol.md`).
pub const PROTOCOL_VERSION: u8 = 3;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Maximum payload size (1 GiB): anything larger is a [`ErrorCode::BadFrame`].
pub const MAX_PAYLOAD: usize = 1 << 30;
/// Maximum plan/feature dimension accepted in an archive block.
pub const MAX_DIM: usize = 4096;

/// Request message types (client → server).
pub mod request_type {
    pub const PING: u8 = 0x01;
    pub const LOAD_PLAN: u8 = 0x02;
    pub const LIST_PLANS: u8 = 0x03;
    pub const EVICT_PLAN: u8 = 0x04;
    pub const REPAIR: u8 = 0x05;
    pub const INFO: u8 = 0x06;
    pub const WATCH: u8 = 0x07;
    pub const DRIFT_STATUS: u8 = 0x08;
    pub const AUDIT: u8 = 0x09;
}

/// Response message types (server → client).
pub mod response_type {
    pub const PONG: u8 = 0x81;
    pub const PLAN_LOADED: u8 = 0x82;
    pub const PLAN_LIST: u8 = 0x83;
    pub const PLAN_EVICTED: u8 = 0x84;
    pub const REPAIRED: u8 = 0x85;
    pub const SERVER_INFO: u8 = 0x86;
    pub const WATCHING: u8 = 0x87;
    pub const DRIFT_REPORT: u8 = 0x88;
    pub const AUDIT_RECORDS: u8 = 0x89;
    pub const ERROR: u8 = 0xFF;
}

/// Wire error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Framing is broken (bad magic, nonzero reserved bytes, oversized
    /// payload): the server closes the connection after this error.
    BadFrame = 1,
    /// The frame's version byte names a protocol this server does not
    /// speak. Framing itself was intact, so the connection survives.
    UnsupportedVersion = 2,
    /// Unknown message type (e.g. a newer client's request). The
    /// connection survives — versioning rule V2 in `docs/protocol.md`.
    UnknownType = 3,
    /// The payload did not decode as the message type's schema.
    BadPayload = 4,
    /// No plan registered under the requested name/version.
    UnknownPlan = 5,
    /// The plan failed structural validation (malformed JSON, bad name,
    /// version 0, wrong kind).
    PlanInvalid = 6,
    /// A plan is already registered under that name/version: versions
    /// are immutable once loaded (evict first to replace).
    VersionCollision = 7,
    /// The repair itself failed (e.g. archive/plan dimension mismatch).
    RepairFailed = 8,
    /// The server is at its `--max-conns` connection capacity. Sent as
    /// an immediate polite rejection on a fresh connection, which is
    /// then closed; retry with backoff (the condition is transient).
    Overloaded = 9,
    /// A frame took longer than the server's per-frame deadline to
    /// arrive, or a response write stalled past it (slow-loris
    /// defence). The connection closes after this error.
    DeadlineExceeded = 10,
    /// A request panicked inside the server. The panic is isolated to
    /// this connection (which closes); the daemon and its registry
    /// stay up.
    Internal = 11,
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Parse a wire error code (`None` for codes this build predates).
    pub fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::BadFrame,
            2 => Self::UnsupportedVersion,
            3 => Self::UnknownType,
            4 => Self::BadPayload,
            5 => Self::UnknownPlan,
            6 => Self::PlanInvalid,
            7 => Self::VersionCollision,
            8 => Self::RepairFailed,
            9 => Self::Overloaded,
            10 => Self::DeadlineExceeded,
            11 => Self::Internal,
            _ => return None,
        })
    }
}

/// What kind of plan a registry entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// A per-feature [`otr_core::RepairPlan`] (any dimension).
    Scalar,
    /// A bivariate [`otr_core::JointRepairPlan`] (dimension 2).
    Joint,
}

impl PlanKind {
    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Self::Scalar => 0,
            Self::Joint => 1,
        }
    }

    /// Parse the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Scalar),
            1 => Some(Self::Joint),
            _ => None,
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Joint => "joint",
        })
    }
}

/// One registry entry as listed over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInfo {
    /// Registry name (validated: `[A-Za-z0-9._-]{1,64}`).
    pub name: String,
    /// Version (≥ 1; immutable once loaded).
    pub version: u32,
    /// Scalar or joint.
    pub kind: PlanKind,
    /// Feature dimension the plan repairs.
    pub dim: usize,
    /// Support resolution `nQ` (per dimension for joint plans).
    pub n_q: usize,
}

/// The `Info` response body: a snapshot of server state and policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub protocol_version: u8,
    /// Plans currently registered.
    pub plans: u32,
    /// Requests handled since startup (all types).
    pub requests: u64,
    /// Archive rows repaired since startup.
    pub rows_repaired: u64,
    /// Resolved shard count policy (contiguous row chunks per repair).
    pub shards: u32,
    /// Resolved worker-thread count.
    pub threads: u32,
    /// Connections accepted since startup (including ones later
    /// rejected by the governor).
    pub accepted: u64,
    /// Connections rejected with [`ErrorCode::Overloaded`] because the
    /// server was at `--max-conns` capacity.
    pub rejected_overload: u64,
    /// Connections killed with [`ErrorCode::DeadlineExceeded`] (a
    /// frame that never finished arriving, or a response write that
    /// stalled).
    pub deadline_kills: u64,
    /// Request panics caught and isolated to their connection.
    pub panics_caught: u64,
    /// The governor's connection cap (0 = unlimited).
    pub max_conns: u32,
    /// Drift watches currently armed (protocol v3).
    pub watches: u32,
    /// Drift-triggered hot swaps performed since startup (protocol v3).
    pub swaps: u64,
}

/// One `(u, k)` stratum's latest drift readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStratum {
    /// Unprotected group.
    pub u: u8,
    /// Feature index.
    pub k: u32,
    /// Symmetrized KL of the cumulative archive pmf vs the watched
    /// plan's research marginal, indexed by `s`.
    pub divergence: [f64; 2],
}

/// The `DriftStatus` response body: the watch's monitor state.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Plan version the monitor is armed against.
    pub version: u32,
    /// Archive rows folded into the monitor since it was (re-)armed.
    pub rows_seen: u64,
    /// Checkpoints evaluated.
    pub checks: u64,
    /// Current consecutive over-threshold checkpoint streak.
    pub consecutive: u32,
    /// Whether the monitor is tripped right now (a trip is normally
    /// consumed immediately by a hot swap, so a lasting `true` means
    /// the re-design failed — see `docs/operations.md`).
    pub tripped: bool,
    /// Hot swaps performed on this name so far.
    pub swaps: u64,
    /// Per-stratum divergences at the latest checkpoint.
    pub strata: Vec<DriftStratum>,
}

/// One `(u, k)` stratum's dependence before/after a hot swap: the
/// paper's per-stratum `E` (symmetrized KL between the two
/// `s`-conditional research marginals) under the parent plan's research
/// snapshot vs the re-designed plan's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditStratum {
    /// Unprotected group.
    pub u: u8,
    /// Feature index.
    pub k: u32,
    /// Stratum `E` recorded by the parent plan's marginals.
    pub e_before: f64,
    /// Stratum `E` recorded by the re-designed plan's marginals.
    pub e_after: f64,
}

/// One hot swap in a plan's audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Version the swap registered.
    pub version: u32,
    /// Version the re-design was warm-started from.
    pub parent: u32,
    /// Archive rows the monitor had folded when it tripped (the
    /// re-design's research set).
    pub rows_observed: u64,
    /// The monitor's worst per-stratum divergence at the trip.
    pub trigger_divergence: f64,
    /// Per-stratum `E` before/after.
    pub strata: Vec<AuditStratum>,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Load a plan (JSON artifact) into the registry under
    /// `name@version`.
    LoadPlan {
        kind: PlanKind,
        name: String,
        version: u32,
        json: String,
    },
    /// List registered plans.
    ListPlans,
    /// Evict `name@version` from the registry.
    EvictPlan { name: String, version: u32 },
    /// Repair an archive through `name@version` (`version = 0` means
    /// the highest loaded version) with the given base seed.
    Repair {
        name: String,
        version: u32,
        seed: u64,
        archive: ColumnarDataset,
    },
    /// Server state and policy snapshot.
    Info,
    /// Arm (or re-arm) a drift watch on the latest version of a scalar
    /// plan (protocol v3). Fields mirror `otr_core::DriftConfig`.
    Watch {
        name: String,
        threshold: f64,
        trips: u32,
        check_every: u64,
        min_rows: u64,
    },
    /// Read a watch's monitor state (protocol v3).
    DriftStatus { name: String },
    /// Read a watched plan's hot-swap audit trail (protocol v3).
    Audit { name: String },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    PlanLoaded,
    PlanList(Vec<PlanInfo>),
    PlanEvicted,
    /// Repaired feature columns (labels are unchanged by repair, so
    /// only features travel back) plus the out-of-range feature count
    /// (0 for joint plans, which do not track it).
    Repaired {
        out_of_range: u64,
        columns: Vec<Vec<f64>>,
    },
    Info(ServerInfo),
    /// A watch is armed; the version it monitors (protocol v3).
    Watching {
        version: u32,
    },
    /// A watch's monitor state (protocol v3).
    DriftReport(DriftReport),
    /// A watched plan's audit trail, oldest first (protocol v3).
    AuditRecords(Vec<AuditRecord>),
    Error {
        code: u16,
        message: String,
    },
}

/// A decode failure, split by blast radius.
#[derive(Debug)]
pub enum ProtoError {
    /// Framing is unrecoverable (bad magic / reserved bytes / oversize):
    /// close the connection.
    Frame(ErrorCode, String),
    /// The header was sound but this frame's content was not; later
    /// frames on the same connection are unaffected.
    Payload(ErrorCode, String),
}

impl ProtoError {
    /// The wire error code to report.
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::Frame(code, _) | Self::Payload(code, _) => *code,
        }
    }

    /// Human-readable detail for the error frame.
    pub fn message(&self) -> &str {
        match self {
            Self::Frame(_, m) | Self::Payload(_, m) => m,
        }
    }

    /// True when the connection's framing can no longer be trusted.
    pub fn is_fatal(&self) -> bool {
        matches!(self, Self::Frame(..))
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error {:?}: {}", self.code(), self.message())
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

/// Encode a frame header for `msg_type` with an `n`-byte payload.
///
/// # Panics
/// `n` must respect [`MAX_PAYLOAD`] (callers build payloads, so this is
/// a programming error, not a wire condition).
pub fn encode_header(msg_type: u8, n: usize) -> [u8; HEADER_LEN] {
    assert!(n <= MAX_PAYLOAD, "payload of {n} bytes exceeds MAX_PAYLOAD");
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = PROTOCOL_VERSION;
    h[5] = msg_type;
    // h[6..8] reserved = 0
    h[8..12].copy_from_slice(&(n as u32).to_be_bytes());
    h
}

/// Validate a frame header, returning `(msg_type, payload_len)`.
///
/// # Errors
/// [`ProtoError::Frame`] on bad magic, nonzero reserved bytes, or an
/// oversized payload; [`ProtoError::Payload`] with
/// [`ErrorCode::UnsupportedVersion`] on a version byte this build does
/// not speak (the payload length is still returned so the caller can
/// skip the frame and keep the connection).
pub fn decode_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize), ProtoError> {
    if h[..4] != MAGIC {
        return Err(ProtoError::Frame(
            ErrorCode::BadFrame,
            format!("bad magic {:02x?} (expected \"OTRP\")", &h[..4]),
        ));
    }
    if h[6] != 0 || h[7] != 0 {
        return Err(ProtoError::Frame(
            ErrorCode::BadFrame,
            "reserved header bytes must be zero".into(),
        ));
    }
    let n = u32::from_be_bytes([h[8], h[9], h[10], h[11]]) as usize;
    if n > MAX_PAYLOAD {
        return Err(ProtoError::Frame(
            ErrorCode::BadFrame,
            format!("payload of {n} bytes exceeds the 1 GiB cap"),
        ));
    }
    if h[4] != PROTOCOL_VERSION {
        return Err(ProtoError::Payload(
            ErrorCode::UnsupportedVersion,
            format!(
                "protocol version {} (this server speaks {PROTOCOL_VERSION})",
                h[4]
            ),
        ));
    }
    Ok((h[5], n))
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

fn put_str16(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Sequential big-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bad(what: &str) -> ProtoError {
        ProtoError::Payload(ErrorCode::BadPayload, format!("truncated payload: {what}"))
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or_else(|| Self::bad(what))?;
        if end > self.buf.len() {
            return Err(Self::bad(what));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ProtoError> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str16(&mut self, what: &str) -> Result<String, ProtoError> {
        let n = self.u16(what)? as usize;
        let bytes = self.bytes(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Payload(ErrorCode::BadPayload, format!("{what} is not UTF-8")))
    }

    /// Remaining unread bytes, consuming them.
    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn finish(&self, what: &str) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Payload(
                ErrorCode::BadPayload,
                format!(
                    "{what}: {} trailing bytes after the message body",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn f64_columns_put(out: &mut Vec<u8>, columns: &[Vec<f64>]) {
    for col in columns {
        for &v in col {
            out.extend_from_slice(&v.to_bits().to_be_bytes());
        }
    }
}

fn f64_column_get(r: &mut Reader<'_>, rows: usize, what: &str) -> Result<Vec<f64>, ProtoError> {
    let mut col = Vec::with_capacity(rows);
    for _ in 0..rows {
        col.push(f64::from_bits(r.u64(what)?));
    }
    Ok(col)
}

/// Encode an archive block: `dim u32 | rows u32 | s bytes | u bytes |
/// dim × (rows × f64-bits u64)`.
fn archive_put(out: &mut Vec<u8>, archive: &ColumnarDataset) {
    out.extend_from_slice(&(archive.dim() as u32).to_be_bytes());
    out.extend_from_slice(&(archive.len() as u32).to_be_bytes());
    out.extend_from_slice(archive.s());
    out.extend_from_slice(archive.u());
    f64_columns_put(out, archive.feature_columns());
}

fn archive_get(r: &mut Reader<'_>) -> Result<ColumnarDataset, ProtoError> {
    let dim = r.u32("archive dim")? as usize;
    let rows = r.u32("archive rows")? as usize;
    if dim == 0 || dim > MAX_DIM {
        return Err(ProtoError::Payload(
            ErrorCode::BadPayload,
            format!("archive dimension {dim} outside 1..={MAX_DIM}"),
        ));
    }
    // Reject row counts the remaining payload cannot possibly hold
    // before allocating anything proportional to them.
    let need = rows
        .checked_mul(2 + 8 * dim)
        .ok_or_else(|| Reader::bad("archive size"))?;
    if r.buf.len() - r.pos < need {
        return Err(Reader::bad("archive body"));
    }
    let s = r.bytes(rows, "archive s column")?.to_vec();
    let u = r.bytes(rows, "archive u column")?.to_vec();
    let mut features = Vec::with_capacity(dim);
    for k in 0..dim {
        features.push(f64_column_get(r, rows, &format!("feature column {k}"))?);
    }
    ColumnarDataset::from_columns(features, s, u)
        .map_err(|e| ProtoError::Payload(ErrorCode::BadPayload, format!("invalid archive: {e}")))
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

impl Request {
    /// Encode as `(message type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Self::Ping => (request_type::PING, Vec::new()),
            Self::LoadPlan {
                kind,
                name,
                version,
                json,
            } => {
                let mut p = Vec::with_capacity(json.len() + name.len() + 8);
                p.push(kind.as_u8());
                put_str16(&mut p, name);
                p.extend_from_slice(&version.to_be_bytes());
                p.extend_from_slice(json.as_bytes());
                (request_type::LOAD_PLAN, p)
            }
            Self::ListPlans => (request_type::LIST_PLANS, Vec::new()),
            Self::EvictPlan { name, version } => {
                let mut p = Vec::new();
                put_str16(&mut p, name);
                p.extend_from_slice(&version.to_be_bytes());
                (request_type::EVICT_PLAN, p)
            }
            Self::Repair {
                name,
                version,
                seed,
                archive,
            } => {
                let mut p =
                    Vec::with_capacity(16 + name.len() + archive.len() * (2 + 8 * archive.dim()));
                put_str16(&mut p, name);
                p.extend_from_slice(&version.to_be_bytes());
                p.extend_from_slice(&seed.to_be_bytes());
                archive_put(&mut p, archive);
                (request_type::REPAIR, p)
            }
            Self::Info => (request_type::INFO, Vec::new()),
            Self::Watch {
                name,
                threshold,
                trips,
                check_every,
                min_rows,
            } => {
                let mut p = Vec::with_capacity(26 + name.len());
                put_str16(&mut p, name);
                put_f64(&mut p, *threshold);
                p.extend_from_slice(&trips.to_be_bytes());
                p.extend_from_slice(&check_every.to_be_bytes());
                p.extend_from_slice(&min_rows.to_be_bytes());
                (request_type::WATCH, p)
            }
            Self::DriftStatus { name } => {
                let mut p = Vec::new();
                put_str16(&mut p, name);
                (request_type::DRIFT_STATUS, p)
            }
            Self::Audit { name } => {
                let mut p = Vec::new();
                put_str16(&mut p, name);
                (request_type::AUDIT, p)
            }
        }
    }

    /// Decode a request from its message type and payload.
    ///
    /// # Errors
    /// [`ErrorCode::UnknownType`] for types this build does not know;
    /// [`ErrorCode::BadPayload`] for undecodable bodies.
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let req = match msg_type {
            request_type::PING => Self::Ping,
            request_type::LOAD_PLAN => {
                let kind_byte = r.u8("plan kind")?;
                let kind = PlanKind::from_u8(kind_byte).ok_or_else(|| {
                    ProtoError::Payload(
                        ErrorCode::BadPayload,
                        format!("unknown plan kind {kind_byte}"),
                    )
                })?;
                let name = r.str16("plan name")?;
                let version = r.u32("plan version")?;
                let json = String::from_utf8(r.rest().to_vec()).map_err(|_| {
                    ProtoError::Payload(ErrorCode::BadPayload, "plan JSON is not UTF-8".into())
                })?;
                Self::LoadPlan {
                    kind,
                    name,
                    version,
                    json,
                }
            }
            request_type::LIST_PLANS => Self::ListPlans,
            request_type::EVICT_PLAN => Self::EvictPlan {
                name: r.str16("plan name")?,
                version: r.u32("plan version")?,
            },
            request_type::REPAIR => {
                let name = r.str16("plan name")?;
                let version = r.u32("plan version")?;
                let seed = r.u64("seed")?;
                let archive = archive_get(&mut r)?;
                Self::Repair {
                    name,
                    version,
                    seed,
                    archive,
                }
            }
            request_type::INFO => Self::Info,
            request_type::WATCH => Self::Watch {
                name: r.str16("plan name")?,
                threshold: r.f64("drift threshold")?,
                trips: r.u32("drift trips")?,
                check_every: r.u64("drift check_every")?,
                min_rows: r.u64("drift min_rows")?,
            },
            request_type::DRIFT_STATUS => Self::DriftStatus {
                name: r.str16("plan name")?,
            },
            request_type::AUDIT => Self::Audit {
                name: r.str16("plan name")?,
            },
            other => {
                return Err(ProtoError::Payload(
                    ErrorCode::UnknownType,
                    format!("unknown request type 0x{other:02x}"),
                ))
            }
        };
        r.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Encode as `(message type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Self::Pong => (response_type::PONG, Vec::new()),
            Self::PlanLoaded => (response_type::PLAN_LOADED, Vec::new()),
            Self::PlanList(entries) => {
                let mut p = Vec::new();
                p.extend_from_slice(&(entries.len() as u32).to_be_bytes());
                for e in entries {
                    p.push(e.kind.as_u8());
                    put_str16(&mut p, &e.name);
                    p.extend_from_slice(&e.version.to_be_bytes());
                    p.extend_from_slice(&(e.dim as u32).to_be_bytes());
                    p.extend_from_slice(&(e.n_q as u32).to_be_bytes());
                }
                (response_type::PLAN_LIST, p)
            }
            Self::PlanEvicted => (response_type::PLAN_EVICTED, Vec::new()),
            Self::Repaired {
                out_of_range,
                columns,
            } => {
                let rows = columns.first().map_or(0, Vec::len);
                let mut p = Vec::with_capacity(16 + columns.len() * rows * 8);
                p.extend_from_slice(&out_of_range.to_be_bytes());
                p.extend_from_slice(&(columns.len() as u32).to_be_bytes());
                p.extend_from_slice(&(rows as u32).to_be_bytes());
                f64_columns_put(&mut p, columns);
                (response_type::REPAIRED, p)
            }
            Self::Info(info) => {
                let mut p = Vec::with_capacity(65);
                p.push(info.protocol_version);
                p.extend_from_slice(&info.plans.to_be_bytes());
                p.extend_from_slice(&info.requests.to_be_bytes());
                p.extend_from_slice(&info.rows_repaired.to_be_bytes());
                p.extend_from_slice(&info.shards.to_be_bytes());
                p.extend_from_slice(&info.threads.to_be_bytes());
                p.extend_from_slice(&info.accepted.to_be_bytes());
                p.extend_from_slice(&info.rejected_overload.to_be_bytes());
                p.extend_from_slice(&info.deadline_kills.to_be_bytes());
                p.extend_from_slice(&info.panics_caught.to_be_bytes());
                p.extend_from_slice(&info.max_conns.to_be_bytes());
                p.extend_from_slice(&info.watches.to_be_bytes());
                p.extend_from_slice(&info.swaps.to_be_bytes());
                (response_type::SERVER_INFO, p)
            }
            Self::Watching { version } => (response_type::WATCHING, version.to_be_bytes().to_vec()),
            Self::DriftReport(report) => {
                let mut p = Vec::with_capacity(33 + report.strata.len() * 21);
                p.extend_from_slice(&report.version.to_be_bytes());
                p.extend_from_slice(&report.rows_seen.to_be_bytes());
                p.extend_from_slice(&report.checks.to_be_bytes());
                p.extend_from_slice(&report.consecutive.to_be_bytes());
                p.push(u8::from(report.tripped));
                p.extend_from_slice(&report.swaps.to_be_bytes());
                p.extend_from_slice(&(report.strata.len() as u32).to_be_bytes());
                for st in &report.strata {
                    p.push(st.u);
                    p.extend_from_slice(&st.k.to_be_bytes());
                    put_f64(&mut p, st.divergence[0]);
                    put_f64(&mut p, st.divergence[1]);
                }
                (response_type::DRIFT_REPORT, p)
            }
            Self::AuditRecords(records) => {
                let mut p = Vec::new();
                p.extend_from_slice(&(records.len() as u32).to_be_bytes());
                for rec in records {
                    p.extend_from_slice(&rec.version.to_be_bytes());
                    p.extend_from_slice(&rec.parent.to_be_bytes());
                    p.extend_from_slice(&rec.rows_observed.to_be_bytes());
                    put_f64(&mut p, rec.trigger_divergence);
                    p.extend_from_slice(&(rec.strata.len() as u32).to_be_bytes());
                    for st in &rec.strata {
                        p.push(st.u);
                        p.extend_from_slice(&st.k.to_be_bytes());
                        put_f64(&mut p, st.e_before);
                        put_f64(&mut p, st.e_after);
                    }
                }
                (response_type::AUDIT_RECORDS, p)
            }
            Self::Error { code, message } => {
                let mut p = Vec::with_capacity(2 + message.len());
                p.extend_from_slice(&code.to_be_bytes());
                p.extend_from_slice(message.as_bytes());
                (response_type::ERROR, p)
            }
        }
    }

    /// Decode a response from its message type and payload.
    ///
    /// # Errors
    /// Same taxonomy as [`Request::decode`].
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let resp = match msg_type {
            response_type::PONG => Self::Pong,
            response_type::PLAN_LOADED => Self::PlanLoaded,
            response_type::PLAN_LIST => {
                let count = r.u32("plan count")? as usize;
                let mut entries = Vec::new();
                for _ in 0..count {
                    let kind_byte = r.u8("plan kind")?;
                    let kind = PlanKind::from_u8(kind_byte).ok_or_else(|| {
                        ProtoError::Payload(
                            ErrorCode::BadPayload,
                            format!("unknown plan kind {kind_byte}"),
                        )
                    })?;
                    entries.push(PlanInfo {
                        kind,
                        name: r.str16("plan name")?,
                        version: r.u32("plan version")?,
                        dim: r.u32("plan dim")? as usize,
                        n_q: r.u32("plan n_q")? as usize,
                    });
                }
                Self::PlanList(entries)
            }
            response_type::PLAN_EVICTED => Self::PlanEvicted,
            response_type::REPAIRED => {
                let out_of_range = r.u64("out-of-range count")?;
                let dim = r.u32("repaired dim")? as usize;
                let rows = r.u32("repaired rows")? as usize;
                if dim > MAX_DIM {
                    return Err(ProtoError::Payload(
                        ErrorCode::BadPayload,
                        format!("repaired dimension {dim} exceeds {MAX_DIM}"),
                    ));
                }
                let need = rows
                    .checked_mul(8 * dim)
                    .ok_or_else(|| Reader::bad("repaired size"))?;
                if r.buf.len() - r.pos < need {
                    return Err(Reader::bad("repaired body"));
                }
                let mut columns = Vec::with_capacity(dim);
                for k in 0..dim {
                    columns.push(f64_column_get(
                        &mut r,
                        rows,
                        &format!("repaired column {k}"),
                    )?);
                }
                Self::Repaired {
                    out_of_range,
                    columns,
                }
            }
            response_type::SERVER_INFO => Self::Info(ServerInfo {
                protocol_version: r.u8("protocol version")?,
                plans: r.u32("plan count")?,
                requests: r.u64("request count")?,
                rows_repaired: r.u64("rows repaired")?,
                shards: r.u32("shards")?,
                threads: r.u32("threads")?,
                accepted: r.u64("accepted count")?,
                rejected_overload: r.u64("overload rejections")?,
                deadline_kills: r.u64("deadline kills")?,
                panics_caught: r.u64("panics caught")?,
                max_conns: r.u32("max conns")?,
                watches: r.u32("watch count")?,
                swaps: r.u64("swap count")?,
            }),
            response_type::WATCHING => Self::Watching {
                version: r.u32("watched version")?,
            },
            response_type::DRIFT_REPORT => {
                let version = r.u32("watched version")?;
                let rows_seen = r.u64("rows seen")?;
                let checks = r.u64("checkpoint count")?;
                let consecutive = r.u32("streak")?;
                let tripped = r.u8("tripped flag")? != 0;
                let swaps = r.u64("swap count")?;
                let count = r.u32("stratum count")? as usize;
                if count > 2 * MAX_DIM {
                    return Err(ProtoError::Payload(
                        ErrorCode::BadPayload,
                        format!("drift stratum count {count} exceeds {}", 2 * MAX_DIM),
                    ));
                }
                let mut strata = Vec::with_capacity(count);
                for _ in 0..count {
                    strata.push(DriftStratum {
                        u: r.u8("stratum u")?,
                        k: r.u32("stratum k")?,
                        divergence: [r.f64("divergence s=0")?, r.f64("divergence s=1")?],
                    });
                }
                Self::DriftReport(DriftReport {
                    version,
                    rows_seen,
                    checks,
                    consecutive,
                    tripped,
                    swaps,
                    strata,
                })
            }
            response_type::AUDIT_RECORDS => {
                let count = r.u32("audit record count")? as usize;
                let mut records = Vec::new();
                for _ in 0..count {
                    let version = r.u32("audit version")?;
                    let parent = r.u32("audit parent")?;
                    let rows_observed = r.u64("audit rows")?;
                    let trigger_divergence = r.f64("audit trigger")?;
                    let n = r.u32("audit stratum count")? as usize;
                    if n > 2 * MAX_DIM {
                        return Err(ProtoError::Payload(
                            ErrorCode::BadPayload,
                            format!("audit stratum count {n} exceeds {}", 2 * MAX_DIM),
                        ));
                    }
                    let mut strata = Vec::with_capacity(n);
                    for _ in 0..n {
                        strata.push(AuditStratum {
                            u: r.u8("stratum u")?,
                            k: r.u32("stratum k")?,
                            e_before: r.f64("e before")?,
                            e_after: r.f64("e after")?,
                        });
                    }
                    records.push(AuditRecord {
                        version,
                        parent,
                        rows_observed,
                        trigger_divergence,
                        strata,
                    });
                }
                Self::AuditRecords(records)
            }
            response_type::ERROR => Self::Error {
                code: r.u16("error code")?,
                message: String::from_utf8_lossy(r.rest()).into_owned(),
            },
            other => {
                return Err(ProtoError::Payload(
                    ErrorCode::UnknownType,
                    format!("unknown response type 0x{other:02x}"),
                ))
            }
        };
        r.finish("response")?;
        Ok(resp)
    }
}

/// Write one complete frame.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_frame<W: std::io::Write>(
    w: &mut W,
    msg_type: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&encode_header(msg_type, payload.len()))?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::Dataset;
    use otr_data::LabelledPoint;

    fn archive() -> ColumnarDataset {
        let pts = vec![
            LabelledPoint {
                x: vec![0.25, -1.5],
                s: 0,
                u: 1,
            },
            LabelledPoint {
                x: vec![1e-300, 4.0],
                s: 1,
                u: 0,
            },
            LabelledPoint {
                x: vec![-0.0, 3.75],
                s: 1,
                u: 1,
            },
        ];
        ColumnarDataset::from_dataset(&Dataset::from_points(pts).unwrap())
    }

    fn round_trip_request(req: Request) -> Request {
        let (t, p) = req.encode();
        Request::decode(t, &p).unwrap()
    }

    fn round_trip_response(resp: Response) -> Response {
        let (t, p) = resp.encode();
        Response::decode(t, &p).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::ListPlans,
            Request::Info,
            Request::LoadPlan {
                kind: PlanKind::Joint,
                name: "adult@prod".into(),
                version: 3,
                json: "{\"x\": [1, 2]}".into(),
            },
            Request::EvictPlan {
                name: "n".into(),
                version: 1,
            },
            Request::Repair {
                name: "plan-a".into(),
                version: 0,
                seed: u64::MAX,
                archive: archive(),
            },
            Request::Watch {
                name: "census".into(),
                threshold: 0.5,
                trips: 2,
                check_every: 256,
                min_rows: 512,
            },
            Request::DriftStatus {
                name: "census".into(),
            },
            Request::Audit {
                name: "census".into(),
            },
        ] {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::PlanLoaded,
            Response::PlanEvicted,
            Response::PlanList(vec![
                PlanInfo {
                    name: "a".into(),
                    version: 1,
                    kind: PlanKind::Scalar,
                    dim: 2,
                    n_q: 50,
                },
                PlanInfo {
                    name: "b".into(),
                    version: 7,
                    kind: PlanKind::Joint,
                    dim: 2,
                    n_q: 24,
                },
            ]),
            Response::Repaired {
                out_of_range: 9,
                columns: vec![vec![1.5, -0.0, f64::MIN_POSITIVE], vec![0.0, 2.0, 3.0]],
            },
            Response::Info(ServerInfo {
                protocol_version: PROTOCOL_VERSION,
                plans: 2,
                requests: 100,
                rows_repaired: 12345,
                shards: 4,
                threads: 8,
                accepted: 17,
                rejected_overload: 3,
                deadline_kills: 2,
                panics_caught: 1,
                max_conns: 256,
                watches: 1,
                swaps: 4,
            }),
            Response::Watching { version: 7 },
            Response::DriftReport(DriftReport {
                version: 7,
                rows_seen: 4096,
                checks: 16,
                consecutive: 1,
                tripped: false,
                swaps: 2,
                strata: vec![
                    DriftStratum {
                        u: 0,
                        k: 0,
                        divergence: [0.125, 0.75],
                    },
                    DriftStratum {
                        u: 1,
                        k: 1,
                        divergence: [0.0, 1e-9],
                    },
                ],
            }),
            Response::AuditRecords(vec![AuditRecord {
                version: 8,
                parent: 7,
                rows_observed: 4096,
                trigger_divergence: 1.5,
                strata: vec![AuditStratum {
                    u: 1,
                    k: 0,
                    e_before: 2.25,
                    e_after: 0.0625,
                }],
            }]),
            Response::Error {
                code: ErrorCode::UnknownPlan.as_u16(),
                message: "no plan x@1".into(),
            },
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn floats_cross_the_wire_bit_exactly() {
        // -0.0 vs 0.0, subnormals, and a signalling-NaN-adjacent pattern
        // all survive: the contract is at the bit level.
        let cols = vec![vec![-0.0, f64::MIN_POSITIVE / 2.0, 1e308]];
        let resp = Response::Repaired {
            out_of_range: 0,
            columns: cols.clone(),
        };
        let Response::Repaired { columns, .. } = round_trip_response(resp) else {
            panic!("wrong variant");
        };
        for (a, b) in cols[0].iter().zip(&columns[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let h = encode_header(request_type::PING, 5);
        assert_eq!(decode_header(&h).unwrap(), (request_type::PING, 5));

        let mut bad_magic = h;
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_header(&bad_magic),
            Err(ProtoError::Frame(ErrorCode::BadFrame, _))
        ));

        let mut bad_reserved = h;
        bad_reserved[6] = 1;
        assert!(decode_header(&bad_reserved).is_err());

        let mut bad_version = h;
        bad_version[4] = 9;
        let err = decode_header(&bad_version).unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnsupportedVersion);
        assert!(!err.is_fatal(), "version mismatch must not kill framing");

        let mut oversized = h;
        oversized[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_header(&oversized).unwrap_err().is_fatal());
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let (t, p) = Request::Repair {
            name: "x".into(),
            version: 1,
            seed: 7,
            archive: archive(),
        }
        .encode();
        // Any strict prefix fails cleanly as BadPayload.
        for cut in [0usize, 3, p.len() / 2, p.len() - 1] {
            let err = Request::decode(t, &p[..cut]).unwrap_err();
            assert_eq!(err.code(), ErrorCode::BadPayload, "cut at {cut}");
            assert!(!err.is_fatal());
        }
        // Trailing garbage is an error, not silently ignored.
        let mut long = p.clone();
        long.push(0);
        assert!(Request::decode(t, &long).is_err());
        // Unknown request type is recoverable.
        let err = Request::decode(0x7E, &[]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnknownType);
        assert!(!err.is_fatal());
    }

    #[test]
    fn archive_with_bad_labels_rejected() {
        let good = archive();
        let (t, p) = Request::Repair {
            name: "x".into(),
            version: 1,
            seed: 7,
            archive: good.clone(),
        }
        .encode();
        // Corrupt the first s label (offset: name str16 (3) + version
        // (4) + seed (8) + dim (4) + rows (4) = 23).
        let mut bad = p;
        bad[23] = 9;
        let err = Request::decode(t, &bad).unwrap_err();
        assert_eq!(err.code(), ErrorCode::BadPayload);
    }

    #[test]
    fn error_code_round_trip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownType,
            ErrorCode::BadPayload,
            ErrorCode::UnknownPlan,
            ErrorCode::PlanInvalid,
            ErrorCode::VersionCollision,
            ErrorCode::RepairFailed,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(999), None);
    }
}
