//! A blocking `otrepaird` client: one frame out, one frame back, in
//! order. This is the client the CLI's `otrepair client` subcommands
//! wrap and the integration suite drives; any other implementation of
//! `docs/protocol.md` is equally valid.

use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};

use otr_data::ColumnarDataset;

use crate::protocol::{
    decode_header, write_frame, ErrorCode, PlanInfo, PlanKind, ProtoError, Request, Response,
    ServerInfo, HEADER_LEN,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol frame.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server { code: u16, message: String },
    /// The server answered with the wrong (but well-formed) response
    /// type for the request.
    Unexpected(String),
}

impl ClientError {
    /// The server-reported error code, when that's what this is.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            Self::Server { code, .. } => ErrorCode::from_u16(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Proto(e) => write!(f, "protocol: {e}"),
            Self::Server { code, message } => match ErrorCode::from_u16(*code) {
                Some(known) => write!(f, "server error {known:?}: {message}"),
                None => write!(f, "server error code {code}: {message}"),
            },
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

/// A repaired archive as returned by [`Client::repair`].
#[derive(Debug, Clone)]
pub struct Repaired {
    /// Out-of-range feature count (0 for joint plans).
    pub out_of_range: u64,
    /// Repaired feature columns, bit-exact, in archive row order.
    pub columns: Vec<Vec<f64>>,
}

/// One connection to an `otrepaird` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Send one request and read the matching response frame.
    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (t, p) = req.encode();
        write_frame(&mut self.stream, t, &p)?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (msg_type, payload_len) = decode_header(&header)?;
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok(Response::decode(msg_type, &payload)?)
    }

    /// Like [`Self::round_trip`], but error frames become
    /// [`ClientError::Server`].
    fn expect(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.round_trip(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to Ping"))),
        }
    }

    /// Load a plan artifact into the server's registry as
    /// `name@version`.
    ///
    /// # Errors
    /// Transport, protocol, or server errors (e.g.
    /// [`ErrorCode::PlanInvalid`], [`ErrorCode::VersionCollision`]).
    pub fn load_plan(
        &mut self,
        kind: PlanKind,
        name: &str,
        version: u32,
        json: &str,
    ) -> Result<(), ClientError> {
        let req = Request::LoadPlan {
            kind,
            name: name.into(),
            version,
            json: json.into(),
        };
        match self.expect(&req)? {
            Response::PlanLoaded => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to LoadPlan"))),
        }
    }

    /// List the server's registered plans (name-then-version order).
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn list_plans(&mut self) -> Result<Vec<PlanInfo>, ClientError> {
        match self.expect(&Request::ListPlans)? {
            Response::PlanList(entries) => Ok(entries),
            other => Err(ClientError::Unexpected(format!("{other:?} to ListPlans"))),
        }
    }

    /// Evict `name@version` from the server's registry.
    ///
    /// # Errors
    /// Transport, protocol, or server errors
    /// ([`ErrorCode::UnknownPlan`] when absent).
    pub fn evict_plan(&mut self, name: &str, version: u32) -> Result<(), ClientError> {
        let req = Request::EvictPlan {
            name: name.into(),
            version,
        };
        match self.expect(&req)? {
            Response::PlanEvicted => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to EvictPlan"))),
        }
    }

    /// Repair an archive through `name@version` (`version = 0` = the
    /// server's latest) with the given base seed. The returned columns
    /// are byte-identical to an offline `otrepair apply` with the same
    /// plan and seed, whatever the server's shard/thread policy.
    ///
    /// # Errors
    /// Transport, protocol, or server errors
    /// ([`ErrorCode::RepairFailed`] on e.g. dimension mismatch).
    pub fn repair(
        &mut self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<Repaired, ClientError> {
        let req = Request::Repair {
            name: name.into(),
            version,
            seed,
            archive: archive.clone(),
        };
        match self.expect(&req)? {
            Response::Repaired {
                out_of_range,
                columns,
            } => {
                if columns.len() != archive.dim()
                    || columns.iter().any(|c| c.len() != archive.len())
                {
                    return Err(ClientError::Unexpected(
                        "repaired shape disagrees with the submitted archive".into(),
                    ));
                }
                Ok(Repaired {
                    out_of_range,
                    columns,
                })
            }
            other => Err(ClientError::Unexpected(format!("{other:?} to Repair"))),
        }
    }

    /// Repair and rebuild the full archive (labels from the submitted
    /// archive, features from the server).
    ///
    /// # Errors
    /// Same as [`Self::repair`].
    pub fn repair_archive(
        &mut self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<ColumnarDataset, ClientError> {
        let repaired = self.repair(name, version, seed, archive)?;
        archive
            .with_feature_columns(repaired.columns)
            .map_err(|e| ClientError::Unexpected(format!("repaired columns rejected: {e}")))
    }

    /// Fetch the server's state/policy snapshot.
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.expect(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(ClientError::Unexpected(format!("{other:?} to Info"))),
        }
    }
}
