//! A blocking `otrepaird` client: one frame out, one frame back, in
//! order. This is the client the CLI's `otrepair client` subcommands
//! wrap and the integration suite drives; any other implementation of
//! `docs/protocol.md` is equally valid.
//!
//! Two layers: [`Client`] is one connection with no policy, and
//! [`RetryingClient`] wraps it with transient-error classification
//! ([`ClientError::is_transient`]), bounded exponential backoff with
//! deterministic jitter, and an overall per-call deadline. Retrying is
//! safe *because* serving is deterministic: re-sending `(plan, seed,
//! archive)` can only ever produce the same bytes, so a repair retried
//! after a mid-frame disconnect is indistinguishable from one that
//! succeeded the first time.

use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use otr_data::ColumnarDataset;
use otr_par::splitmix_seed;

use crate::protocol::{
    decode_header, write_frame, AuditRecord, DriftReport, ErrorCode, PlanInfo, PlanKind,
    ProtoError, Request, Response, ServerInfo, HEADER_LEN,
};

use otr_core::DriftConfig;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol frame.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server { code: u16, message: String },
    /// The server answered with the wrong (but well-formed) response
    /// type for the request.
    Unexpected(String),
}

impl ClientError {
    /// The server-reported error code, when that's what this is.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            Self::Server { code, .. } => ErrorCode::from_u16(*code),
            _ => None,
        }
    }

    /// Whether retrying the same call on a fresh connection could
    /// plausibly succeed.
    ///
    /// Transport failures are transient (the daemon may have restarted,
    /// the connection may have been deadline-killed mid-response), as
    /// are the server's explicit back-off signals
    /// ([`ErrorCode::Overloaded`], [`ErrorCode::DeadlineExceeded`]).
    /// Everything else — malformed frames, unknown plans, shape
    /// mismatches, panics reported as [`ErrorCode::Internal`] — is
    /// permanent: the same request would fail the same way.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Io(_) => true,
            Self::Server { .. } => matches!(
                self.server_code(),
                Some(ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
            ),
            Self::Proto(_) | Self::Unexpected(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Proto(e) => write!(f, "protocol: {e}"),
            Self::Server { code, message } => match ErrorCode::from_u16(*code) {
                Some(known) => write!(f, "server error {known:?}: {message}"),
                None => write!(f, "server error code {code}: {message}"),
            },
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

/// A repaired archive as returned by [`Client::repair`].
#[derive(Debug, Clone)]
pub struct Repaired {
    /// Out-of-range feature count (0 for joint plans).
    pub out_of_range: u64,
    /// Repaired feature columns, bit-exact, in archive row order.
    pub columns: Vec<Vec<f64>>,
}

/// One connection to an `otrepaird` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bound every socket read and write by `timeout` (`None` = block
    /// forever, the default). [`RetryingClient`] uses this to keep a
    /// single stalled round trip from eating its whole call deadline.
    ///
    /// # Errors
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and read the matching response frame.
    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (t, p) = req.encode();
        write_frame(&mut self.stream, t, &p)?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (msg_type, payload_len) = decode_header(&header)?;
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok(Response::decode(msg_type, &payload)?)
    }

    /// Like [`Self::round_trip`], but error frames become
    /// [`ClientError::Server`].
    fn expect(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.round_trip(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to Ping"))),
        }
    }

    /// Load a plan artifact into the server's registry as
    /// `name@version`.
    ///
    /// # Errors
    /// Transport, protocol, or server errors (e.g.
    /// [`ErrorCode::PlanInvalid`], [`ErrorCode::VersionCollision`]).
    pub fn load_plan(
        &mut self,
        kind: PlanKind,
        name: &str,
        version: u32,
        json: &str,
    ) -> Result<(), ClientError> {
        let req = Request::LoadPlan {
            kind,
            name: name.into(),
            version,
            json: json.into(),
        };
        match self.expect(&req)? {
            Response::PlanLoaded => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to LoadPlan"))),
        }
    }

    /// List the server's registered plans (name-then-version order).
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn list_plans(&mut self) -> Result<Vec<PlanInfo>, ClientError> {
        match self.expect(&Request::ListPlans)? {
            Response::PlanList(entries) => Ok(entries),
            other => Err(ClientError::Unexpected(format!("{other:?} to ListPlans"))),
        }
    }

    /// Evict `name@version` from the server's registry.
    ///
    /// # Errors
    /// Transport, protocol, or server errors
    /// ([`ErrorCode::UnknownPlan`] when absent).
    pub fn evict_plan(&mut self, name: &str, version: u32) -> Result<(), ClientError> {
        let req = Request::EvictPlan {
            name: name.into(),
            version,
        };
        match self.expect(&req)? {
            Response::PlanEvicted => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to EvictPlan"))),
        }
    }

    /// Repair an archive through `name@version` (`version = 0` = the
    /// server's latest) with the given base seed. The returned columns
    /// are byte-identical to an offline `otrepair apply` with the same
    /// plan and seed, whatever the server's shard/thread policy.
    ///
    /// # Errors
    /// Transport, protocol, or server errors
    /// ([`ErrorCode::RepairFailed`] on e.g. dimension mismatch).
    pub fn repair(
        &mut self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<Repaired, ClientError> {
        let req = Request::Repair {
            name: name.into(),
            version,
            seed,
            archive: archive.clone(),
        };
        match self.expect(&req)? {
            Response::Repaired {
                out_of_range,
                columns,
            } => {
                if columns.len() != archive.dim()
                    || columns.iter().any(|c| c.len() != archive.len())
                {
                    return Err(ClientError::Unexpected(
                        "repaired shape disagrees with the submitted archive".into(),
                    ));
                }
                Ok(Repaired {
                    out_of_range,
                    columns,
                })
            }
            other => Err(ClientError::Unexpected(format!("{other:?} to Repair"))),
        }
    }

    /// Repair and rebuild the full archive (labels from the submitted
    /// archive, features from the server).
    ///
    /// # Errors
    /// Same as [`Self::repair`].
    pub fn repair_archive(
        &mut self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<ColumnarDataset, ClientError> {
        let repaired = self.repair(name, version, seed, archive)?;
        archive
            .with_feature_columns(repaired.columns)
            .map_err(|e| ClientError::Unexpected(format!("repaired columns rejected: {e}")))
    }

    /// Fetch the server's state/policy snapshot.
    ///
    /// # Errors
    /// Transport, protocol, or server errors.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.expect(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(ClientError::Unexpected(format!("{other:?} to Info"))),
        }
    }

    /// Arm (or re-arm) a drift watch on the latest version of `name`,
    /// returning the version the monitor is now armed against.
    ///
    /// # Errors
    /// Transport, protocol, or server errors ([`ErrorCode::UnknownPlan`]
    /// for unloaded names, [`ErrorCode::PlanInvalid`] for joint plans).
    pub fn watch(&mut self, name: &str, config: &DriftConfig) -> Result<u32, ClientError> {
        let req = Request::Watch {
            name: name.into(),
            threshold: config.threshold,
            trips: config.trips,
            check_every: config.check_every,
            min_rows: config.min_rows,
        };
        match self.expect(&req)? {
            Response::Watching { version } => Ok(version),
            other => Err(ClientError::Unexpected(format!("{other:?} to Watch"))),
        }
    }

    /// Fetch the drift watch's live state for `name`.
    ///
    /// # Errors
    /// Transport, protocol, or server errors ([`ErrorCode::UnknownPlan`]
    /// when no watch is armed on `name`).
    pub fn drift_status(&mut self, name: &str) -> Result<DriftReport, ClientError> {
        let req = Request::DriftStatus { name: name.into() };
        match self.expect(&req)? {
            Response::DriftReport(report) => Ok(report),
            other => Err(ClientError::Unexpected(format!("{other:?} to DriftStatus"))),
        }
    }

    /// Fetch the hot-swap audit trail for `name` (oldest first).
    ///
    /// # Errors
    /// Transport, protocol, or server errors ([`ErrorCode::UnknownPlan`]
    /// when no watch is armed on `name`).
    pub fn audit(&mut self, name: &str) -> Result<Vec<AuditRecord>, ClientError> {
        let req = Request::Audit { name: name.into() };
        match self.expect(&req)? {
            Response::AuditRecords(records) => Ok(records),
            other => Err(ClientError::Unexpected(format!("{other:?} to Audit"))),
        }
    }
}

/// Retry policy for [`RetryingClient`]: bounded attempts, capped
/// exponential backoff with deterministic jitter, optional per-call
/// deadline.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (`0` = single attempt;
    /// default 3 ⇒ up to 4 attempts).
    pub retries: u32,
    /// Base backoff before the first retry; attempt `k` waits
    /// `base × 2^k` (capped at [`RetryPolicy::backoff_max`]) ± jitter.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter stream. Jitter for retry `k`
    /// is drawn from `splitmix_seed(jitter_seed, k)` — same seed, same
    /// sleep schedule, so chaos tests replay exactly. Deployments
    /// wanting decorrelated clients pick distinct seeds.
    pub jitter_seed: u64,
    /// Overall wall-clock budget for one logical call, spanning every
    /// attempt and backoff sleep (`None` = unbounded). Also caps each
    /// attempt's socket I/O timeout at the remaining budget.
    pub call_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 3,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0,
            call_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based): capped exponential
    /// plus deterministic jitter in `[0, backoff/2)`.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_max);
        let half_ms = (exp.as_millis() / 2) as u64;
        let jitter_ms = if half_ms == 0 {
            0
        } else {
            splitmix_seed(self.jitter_seed, u64::from(attempt)) % half_ms
        };
        exp + Duration::from_millis(jitter_ms)
    }
}

/// A reconnecting, retrying `otrepaird` client.
///
/// Each call connects fresh, so a connection killed mid-frame (by a
/// fault, a deadline, or a daemon restart) costs one attempt, not the
/// client. Only [`ClientError::is_transient`] failures are retried;
/// permanent errors and exhausted budgets surface the *last* underlying
/// error unchanged.
///
/// One idempotency wrinkle: a `LoadPlan` whose response was lost may
/// have registered server-side, so a retry can answer
/// [`ErrorCode::VersionCollision`] for a plan this call just loaded.
/// [`RetryingClient::load_plan`] treats that collision *after a
/// transient failure on the same call* as success — the registry
/// rejects same-name re-registration, so the name@version in place is
/// the one this call sent.
#[derive(Debug, Clone)]
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
}

impl RetryingClient {
    /// A retrying client for `addr` under `policy`. No connection is
    /// made until the first call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self {
            addr: addr.into(),
            policy,
        }
    }

    /// Run `op` against a fresh connection per attempt, retrying
    /// transient failures within the policy's attempt and deadline
    /// budgets.
    fn with_retry<T>(
        &self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = self.attempt_once(started, &mut op);
            let err = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let out_of_attempts = attempt >= self.policy.retries;
            if out_of_attempts || !err.is_transient() {
                return Err(err);
            }
            let sleep = self.policy.backoff(attempt);
            if let Some(deadline) = self.policy.call_deadline {
                // Sleeping past the deadline cannot help: the next
                // attempt would have no I/O budget left.
                if started.elapsed() + sleep >= deadline {
                    return Err(err);
                }
            }
            std::thread::sleep(sleep);
            attempt += 1;
        }
    }

    /// One attempt: connect, cap socket I/O at the remaining call
    /// budget, run `op`.
    fn attempt_once<T>(
        &self,
        started: Instant,
        op: &mut impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let io_timeout = match self.policy.call_deadline {
            None => None,
            Some(deadline) => {
                let remaining = deadline.saturating_sub(started.elapsed());
                if remaining.is_zero() {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "call deadline exhausted before the attempt could start",
                    )));
                }
                Some(remaining)
            }
        };
        let mut client = Client::connect(&self.addr)?;
        client.set_io_timeout(io_timeout)?;
        op(&mut client)
    }

    /// Retrying [`Client::ping`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.with_retry(|c| c.ping())
    }

    /// Retrying [`Client::load_plan`], with lost-response idempotency:
    /// a [`ErrorCode::VersionCollision`] on a retry *after* a transient
    /// failure counts as success (the earlier attempt's load landed).
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn load_plan(
        &self,
        kind: PlanKind,
        name: &str,
        version: u32,
        json: &str,
    ) -> Result<(), ClientError> {
        let mut earlier_transient_failure = false;
        self.with_retry(|c| match c.load_plan(kind, name, version, json) {
            Ok(()) => Ok(()),
            Err(e)
                if e.server_code() == Some(ErrorCode::VersionCollision)
                    && earlier_transient_failure =>
            {
                Ok(())
            }
            Err(e) => {
                earlier_transient_failure |= e.is_transient();
                Err(e)
            }
        })
    }

    /// Retrying [`Client::list_plans`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn list_plans(&self) -> Result<Vec<PlanInfo>, ClientError> {
        self.with_retry(|c| c.list_plans())
    }

    /// Retrying [`Client::evict_plan`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn evict_plan(&self, name: &str, version: u32) -> Result<(), ClientError> {
        self.with_retry(|c| c.evict_plan(name, version))
    }

    /// Retrying [`Client::repair`]. Safe to retry unconditionally:
    /// repair is read-only on the server and bit-deterministic in
    /// `(plan, seed, archive)`, so every attempt computes the same
    /// bytes.
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn repair(
        &self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<Repaired, ClientError> {
        self.with_retry(|c| c.repair(name, version, seed, archive))
    }

    /// Retrying [`Client::repair_archive`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn repair_archive(
        &self,
        name: &str,
        version: u32,
        seed: u64,
        archive: &ColumnarDataset,
    ) -> Result<ColumnarDataset, ClientError> {
        self.with_retry(|c| c.repair_archive(name, version, seed, archive))
    }

    /// Retrying [`Client::info`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn info(&self) -> Result<ServerInfo, ClientError> {
        self.with_retry(|c| c.info())
    }

    /// Retrying [`Client::watch`]. Safe to retry: re-arming a watch is
    /// idempotent (audit trail and swap count are preserved).
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn watch(&self, name: &str, config: &DriftConfig) -> Result<u32, ClientError> {
        self.with_retry(|c| c.watch(name, config))
    }

    /// Retrying [`Client::drift_status`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn drift_status(&self, name: &str) -> Result<DriftReport, ClientError> {
        self.with_retry(|c| c.drift_status(name))
    }

    /// Retrying [`Client::audit`].
    ///
    /// # Errors
    /// The last underlying error once retries or the deadline run out.
    pub fn audit(&self, name: &str) -> Result<Vec<AuditRecord>, ClientError> {
        self.with_retry(|c| c.audit(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let io = ClientError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "x"));
        assert!(io.is_transient());
        for (code, transient) in [
            (ErrorCode::Overloaded, true),
            (ErrorCode::DeadlineExceeded, true),
            (ErrorCode::Internal, false),
            (ErrorCode::UnknownPlan, false),
            (ErrorCode::BadFrame, false),
        ] {
            let err = ClientError::Server {
                code: code.as_u16(),
                message: String::new(),
            };
            assert_eq!(err.is_transient(), transient, "{code:?}");
        }
        assert!(!ClientError::Unexpected("x".into()).is_transient());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            jitter_seed: 42,
            ..RetryPolicy::default()
        };
        let twin = policy.clone();
        for k in 0..8 {
            // Same seed ⇒ same schedule.
            assert_eq!(policy.backoff(k), twin.backoff(k));
            // Exponential base, capped, jitter < half the base term.
            let exp = policy
                .backoff_base
                .saturating_mul(1 << k.min(16))
                .min(policy.backoff_max);
            let b = policy.backoff(k);
            assert!(
                b >= exp && b < exp + exp / 2 + Duration::from_millis(1),
                "k={k}"
            );
        }
        // A different seed changes at least one sleep.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..RetryPolicy::default()
        };
        assert!((0..8).any(|k| other.backoff(k) != policy.backoff(k)));
    }
}
